//! Integration tests for the real-atomics substrate: correctness under
//! genuine hardware concurrency, and the appendix measurements'
//! plumbing.

use practically_wait_free::hardware::fai_counter::FaiCounter;
use practically_wait_free::hardware::msqueue::MsQueue;
use practically_wait_free::hardware::recorder::record_with_tickets;
use practically_wait_free::hardware::schedule_stats::{
    conditional_next_step, step_share, uniformity_deviation,
};
use practically_wait_free::hardware::treiber::TreiberStack;
use std::collections::HashSet;

#[test]
fn mixed_stack_and_queue_traffic_preserves_all_values() {
    // Producers feed the queue; movers shuttle queue→stack; drainers
    // pop the stack. Every value injected must come out exactly once.
    let producers = 2usize;
    let movers = 2usize;
    let per_producer = 20_000u64;
    let total = producers as u64 * per_producer;

    let queue = MsQueue::with_capacity(4096);
    let stack = TreiberStack::with_capacity(total as usize + 16);
    let moved = std::sync::atomic::AtomicU64::new(0);
    let mut drained: Vec<u64> = Vec::new();

    std::thread::scope(|scope| {
        for p in 0..producers {
            let queue = &queue;
            scope.spawn(move || {
                for i in 0..per_producer {
                    let v = ((p as u64) << 32) | i;
                    while queue.enqueue(v).is_err() {
                        std::hint::spin_loop();
                    }
                }
            });
        }
        for _ in 0..movers {
            let queue = &queue;
            let stack = &stack;
            let moved = &moved;
            scope.spawn(move || loop {
                if moved.load(std::sync::atomic::Ordering::Relaxed) >= total {
                    break;
                }
                if let Some(v) = queue.dequeue() {
                    stack.push(v).expect("stack sized for everything");
                    moved.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                } else {
                    std::hint::spin_loop();
                }
            });
        }
    });

    while let Some(v) = stack.pop() {
        drained.push(v);
    }
    assert_eq!(drained.len() as u64, total);
    let unique: HashSet<u64> = drained.iter().copied().collect();
    assert_eq!(unique.len() as u64, total, "values lost or duplicated");
}

#[test]
fn counter_and_recorder_agree_on_total_steps() {
    // The ticket recorder *is* a fetch-and-increment counter; its
    // trace length equals threads × ops exactly.
    let trace = record_with_tickets(4, 5_000);
    assert_eq!(trace.len(), 20_000);
    let share = step_share(&trace);
    assert!((share.iter().sum::<f64>() - 1.0).abs() < 1e-12);
}

#[test]
fn figure_3_and_4_statistics_are_sane_on_this_machine() {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(2)
        .clamp(2, 8);
    let trace = record_with_tickets(threads, 20_000);
    // Step shares are exactly fair by construction (fixed ops).
    assert!(uniformity_deviation(&step_share(&trace)) < 1e-9);
    // Conditional distributions exist for every thread and sum to 1.
    for t in 0..threads {
        let d = conditional_next_step(&trace, t as u32).expect("thread appears");
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}

#[test]
fn fai_counter_completion_rate_bounded_by_half() {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(2)
        .clamp(2, 8);
    let report = FaiCounter::measure(threads, 50_000);
    assert_eq!(report.final_value, (threads as u64) * 50_000);
    let rate = report.completion_rate();
    assert!(rate > 0.0 && rate <= 0.5, "rate {rate}");
}

#[test]
fn stack_survives_repeated_fill_drain_cycles() {
    let stack = TreiberStack::with_capacity(64);
    for round in 0..50u64 {
        for i in 0..64 {
            stack.push(round * 100 + i).unwrap();
        }
        let mut popped = Vec::new();
        while let Some(v) = stack.pop() {
            popped.push(v);
        }
        assert_eq!(popped.len(), 64, "round {round}");
        // LIFO within a quiescent round.
        let expected: Vec<u64> = (0..64).rev().map(|i| round * 100 + i).collect();
        assert_eq!(popped, expected, "round {round}");
    }
}
