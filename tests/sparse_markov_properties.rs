//! Property-based tests for the sparse-first Markov engine: the
//! iterative CSR solvers must agree with the dense direct-solve
//! oracle on arbitrary ergodic chains, and the CSR representation
//! must round-trip builder input exactly.

// Proptest is an external crate gated behind `heavy-deps` so the
// default workspace builds with zero crates.io dependencies; enable
// the feature to run this suite.
#![cfg(feature = "heavy-deps")]

use practically_wait_free::markov::chain::{ChainBuilder, MarkovChain};
use practically_wait_free::markov::linalg::Matrix;
use practically_wait_free::markov::solve::PowerOptions;
use practically_wait_free::markov::sparse::SparseChainBuilder;
use practically_wait_free::markov::stationary::stationary_distribution;
use proptest::prelude::*;

/// Strategy: a random irreducible row-stochastic matrix of size n,
/// built by mixing a random non-negative matrix with a cycle (which
/// guarantees strong connectivity) and a touch of self-loop (which
/// guarantees aperiodicity).
fn random_ergodic_chain(n: usize) -> impl Strategy<Value = MarkovChain<usize>> {
    prop::collection::vec(0.01f64..1.0, n * n).prop_map(move |raw| {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            let row = &raw[i * n..(i + 1) * n];
            let sum: f64 = row.iter().sum();
            for j in 0..n {
                // 80% random mass, 10% cycle edge, 10% self loop.
                let mut p = 0.8 * row[j] / sum;
                if j == (i + 1) % n {
                    p += 0.1;
                }
                if j == i {
                    p += 0.1;
                }
                m[(i, j)] = p;
            }
        }
        MarkovChain::from_matrix((0..n).collect(), m).expect("constructed stochastic")
    })
}

/// Strategy: a sparse ergodic chain on a ring with random extra
/// chords — the regime the CSR solvers are built for, at sizes the
/// dense oracle can still check.
fn random_sparse_ergodic_chain(n: usize) -> impl Strategy<Value = MarkovChain<usize>> {
    let chords = prop::collection::vec((0..n, 0..n, 0.05f64..1.0), 1..2 * n + 1);
    chords.prop_map(move |extra| {
        let mut m = Matrix::zeros(n, n);
        // Guaranteed skeleton: half self-loop, half cycle edge.
        for i in 0..n {
            m[(i, i)] += 0.5;
            m[(i, (i + 1) % n)] += 0.5;
        }
        // Random chords, folded in and renormalized row by row.
        for &(i, j, w) in &extra {
            m[(i, j)] += w;
        }
        for i in 0..n {
            let sum: f64 = (0..n).map(|j| m[(i, j)]).sum();
            for j in 0..n {
                m[(i, j)] /= sum;
            }
        }
        MarkovChain::from_matrix((0..n).collect(), m).expect("constructed stochastic")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The adaptive sparse power iteration agrees with dense Gaussian
    /// elimination on dense random chains up to n = 64.
    #[test]
    fn sparse_iterative_matches_dense_direct(
        chain in (2usize..65).prop_flat_map(random_ergodic_chain)
    ) {
        let dense_pi = stationary_distribution(&chain).unwrap();
        let sparse = chain.to_sparse();
        let solve = sparse
            .stationary_with(&PowerOptions::new(500_000, 1e-12), None)
            .unwrap();
        for (i, (&d, &s)) in dense_pi.iter().zip(&solve.pi).enumerate() {
            prop_assert!((d - s).abs() < 1e-8,
                "state {}: dense {} vs sparse {}", i, d, s);
        }
    }

    /// Same agreement in the genuinely sparse regime (ring + chords).
    #[test]
    fn sparse_iterative_matches_dense_on_sparse_chains(
        chain in (3usize..49).prop_flat_map(random_sparse_ergodic_chain)
    ) {
        let dense_pi = stationary_distribution(&chain).unwrap();
        let solve = chain
            .to_sparse()
            .stationary_with(&PowerOptions::new(500_000, 1e-12), None)
            .unwrap();
        for (&d, &s) in dense_pi.iter().zip(&solve.pi) {
            prop_assert!((d - s).abs() < 1e-8);
        }
    }

    /// CSR round-trips builder input: the same states and transitions
    /// fed to the dense and sparse builders produce identical state
    /// order and entry-for-entry equal probabilities, and converting
    /// back to dense recovers the dense chain exactly.
    #[test]
    fn csr_round_trips_builder_input(
        entries in prop::collection::vec((0usize..6, 0usize..6, 0.05f64..1.0), 6..30)
    ) {
        // Make every row stochastic: normalize per-source mass.
        let mut row_sum = [0.0f64; 6];
        for &(i, _, w) in &entries {
            row_sum[i] += w;
        }
        let mut dense = ChainBuilder::new();
        let mut sparse = SparseChainBuilder::new();
        for s in 0..6usize {
            dense = dense.state(s);
            sparse.state(s);
        }
        for &(i, j, w) in &entries {
            let p = w / row_sum[i];
            dense = dense.transition(i, j, p);
            sparse.transition(i, j, p);
        }
        // Sources with no entries get a self loop in both builders.
        for s in 0..6usize {
            if row_sum[s] == 0.0 {
                dense = dense.transition(s, s, 1.0);
                sparse.transition(s, s, 1.0);
            }
        }
        let dense = dense.build().unwrap();
        let sparse = sparse.build().unwrap();
        prop_assert_eq!(dense.states(), sparse.states());
        for i in 0..dense.len() {
            for j in 0..dense.len() {
                prop_assert!((dense.prob(i, j) - sparse.prob(i, j)).abs() < 1e-15,
                    "({}, {}): dense {} vs sparse {}", i, j,
                    dense.prob(i, j), sparse.prob(i, j));
            }
        }
        let back = sparse.to_dense().unwrap();
        prop_assert_eq!(back.states(), dense.states());
        for i in 0..dense.len() {
            for j in 0..dense.len() {
                prop_assert!((back.prob(i, j) - dense.prob(i, j)).abs() < 1e-15);
            }
        }
    }
}
