//! Cross-validation: the same quantity computed by independent layers
//! of the workspace must agree — exact chain vs simulator vs
//! balls-into-bins game vs closed forms.

use practically_wait_free::algorithms::chains::{fai, parallel, scu};
use practically_wait_free::ballsbins::game::mean_phase_length;
use practically_wait_free::core::chain_analysis::{analyze, ChainFamily};
use practically_wait_free::core::{AlgorithmSpec, SimExperiment};
use practically_wait_free::theory::ramanujan::z_worst;
use pwf_rng::rngs::StdRng;
use pwf_rng::SeedableRng;

fn sim_system_latency(spec: AlgorithmSpec, n: usize, steps: u64, seed: u64) -> f64 {
    SimExperiment::new(spec, n, steps)
        .seed(seed)
        .run()
        .expect("crash-free")
        .system_latency
        .expect("completions")
}

#[test]
fn scu01_simulation_matches_exact_chain() {
    for n in [2usize, 4, 8, 16] {
        let exact = scu::exact_system_latency(n).unwrap();
        let sim = sim_system_latency(AlgorithmSpec::Scu { q: 0, s: 1 }, n, 600_000, 101);
        assert!(
            (sim - exact).abs() / exact < 0.03,
            "n={n}: sim {sim} vs exact {exact}"
        );
    }
}

#[test]
fn ballsbins_game_matches_exact_chain() {
    let mut rng = StdRng::seed_from_u64(202);
    for n in [4usize, 16, 64] {
        let exact = scu::exact_system_latency(n).unwrap();
        let game = mean_phase_length(n, 1_000, 60_000, &mut rng);
        assert!(
            (game - exact).abs() / exact < 0.03,
            "n={n}: game {game} vs exact {exact}"
        );
    }
}

#[test]
fn fai_simulation_matches_global_chain() {
    for n in [2usize, 4, 8, 16, 32] {
        let exact = fai::exact_system_latency(n).unwrap();
        let sim = sim_system_latency(AlgorithmSpec::FetchAndInc, n, 600_000, 103);
        assert!(
            (sim - exact).abs() / exact < 0.03,
            "n={n}: sim {sim} vs exact {exact}"
        );
    }
}

#[test]
fn fai_chain_return_time_consistent_with_z_recurrence() {
    // Three routes to the same number: stationary success rate,
    // hitting-time solve, and (as an upper bound) the Z recurrence.
    for n in [3usize, 8, 20, 50] {
        let w_rate = fai::exact_system_latency(n).unwrap();
        let w_hit = fai::return_time_of_win_state(n).unwrap();
        assert!((w_rate - w_hit).abs() < 1e-7, "n={n}");
        assert!(
            w_rate <= z_worst(n) + 1e-9,
            "stationary W below worst-state Z"
        );
    }
}

#[test]
fn parallel_code_three_way_agreement() {
    for (n, q) in [(3usize, 4usize), (5, 2)] {
        let exact = parallel::exact_system_latency(n, q).unwrap();
        assert!((exact - q as f64).abs() < 1e-8, "Lemma 11 exact");
        let sim = sim_system_latency(AlgorithmSpec::Parallel { q }, n, 400_000, 104);
        let rel = (sim - q as f64).abs() / q as f64;
        assert!(rel < 0.03, "sim {sim} vs q={q}");
    }
}

#[test]
fn individual_latency_is_n_times_system_in_simulation() {
    // Theorem 4's fairness claim, measured (not just the chain
    // identity): mean individual latency ≈ n · system latency.
    for (spec, n) in [
        (AlgorithmSpec::Scu { q: 0, s: 1 }, 8usize),
        (AlgorithmSpec::FetchAndInc, 8),
        (AlgorithmSpec::Parallel { q: 3 }, 6),
    ] {
        let report = SimExperiment::new(spec.clone(), n, 600_000)
            .seed(105)
            .run()
            .unwrap();
        let w = report.system_latency.unwrap();
        let wi = report.mean_individual_latency().unwrap();
        assert!(
            (wi / (n as f64 * w) - 1.0).abs() < 0.1,
            "{}: Wi={wi}, n*W={}",
            spec.name(),
            n as f64 * w
        );
    }
}

#[test]
fn exact_analysis_agrees_across_chain_families() {
    // ChainReport's fairness identity holds for every family (the
    // lifting lemmas 7, 11, 14 in one sweep).
    for (family, n) in [
        (ChainFamily::Scu01, 5usize),
        (ChainFamily::Parallel { q: 3 }, 4),
        (ChainFamily::FetchAndInc, 7),
    ] {
        let r = analyze(family, n).unwrap();
        assert!((r.fairness_identity() - 1.0).abs() < 1e-7, "{family:?}");
        assert!(r.lifting_flow_residual < 1e-8, "{family:?}");
        assert!(r.lifting_stationary_residual < 1e-8, "{family:?}");
    }
}

#[test]
fn scu_qs_preamble_bound_brackets_latency() {
    // Theorem 4 gives the UPPER bound W(q, s) ≤ q + α·s·√n. The naive
    // additive guess q + W(0, s) over-counts: while processes sit in
    // the preamble they do not contend in the loop, so the measured
    // W(q, s) lands strictly between q + s + 1 (zero contention) and
    // q + W(0, s) (full contention).
    let n = 8;
    let w0 = sim_system_latency(AlgorithmSpec::Scu { q: 0, s: 1 }, n, 600_000, 106);
    let w10 = sim_system_latency(AlgorithmSpec::Scu { q: 10, s: 1 }, n, 600_000, 106);
    assert!(
        w10 > 10.0 + 2.0 - 0.1,
        "W(10,1)={w10} below the contention-free floor"
    );
    assert!(
        w10 <= 10.0 + w0 + 0.1,
        "W(10,1)={w10} exceeds the additive upper bound {}",
        10.0 + w0
    );
    // And the preamble dominates for large q: latency grew by most of
    // q (the rest is absorbed by the reduced loop contention).
    assert!(
        w10 - w0 > 6.0,
        "preamble barely moved the latency: {w0} -> {w10}"
    );
}
