//! Property-based tests on the observability layer: histogram merge
//! is a commutative monoid, quantile bounds really bound ranks, and
//! latency summaries never panic on adversarial timestamp streams.

// Proptest is an external crate gated behind `heavy-deps` so the
// default workspace builds with zero crates.io dependencies; enable
// the feature to run this suite.
#![cfg(feature = "heavy-deps")]

use practically_wait_free::obs::{Histogram, LatencySummary};
use proptest::prelude::*;

/// Samples spanning every magnitude (including the extremes), not
/// just the small integers a naive `0..N` range would produce.
fn arb_sample() -> impl Strategy<Value = u64> {
    prop_oneof![
        (0u64..64, 0u64..u64::MAX).prop_map(|(shift, raw)| raw >> shift),
        Just(u64::MAX),
        Just(0u64),
    ]
}

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_is_commutative_and_associative(
        a in prop::collection::vec(arb_sample(), 0..40),
        b in prop::collection::vec(arb_sample(), 0..40),
        c in prop::collection::vec(arb_sample(), 0..40),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));

        // Commutativity: a ⊕ b == b ⊕ a.
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);

        // Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
        let mut ab_c = ab;
        ab_c.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        // Both equal recording every sample into one histogram — the
        // property that makes per-thread recording safe.
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&ab_c, &hist_of(&all));
    }

    #[test]
    fn quantile_bounds_cover_their_rank(
        values in prop::collection::vec(arb_sample(), 1..80),
        q_permille in 1u32..1001,
    ) {
        let h = hist_of(&values);
        let q = q_permille as f64 / 1000.0;
        let bound = h.quantile_upper_bound(q);

        // Rank guarantee: at least ceil(q * n) samples are <= bound.
        let target = (q * values.len() as f64).ceil() as usize;
        let covered = values.iter().filter(|&&v| v <= bound).count();
        prop_assert!(
            covered >= target,
            "bound {} covers {}/{} samples, needed {}",
            bound, covered, values.len(), target
        );

        // Monotone in q, and q = 1 covers the maximum.
        prop_assert!(bound <= h.quantile_upper_bound(1.0));
        prop_assert!(h.quantile_upper_bound(1.0) >= h.max_value());
    }

    #[test]
    fn summaries_survive_non_monotonic_time_streams(
        times in prop::collection::vec(arb_sample(), 0..60),
    ) {
        // Timestamps from real clocks can go backwards (migration
        // between cores, NTP steps); from_times must saturate, never
        // underflow or panic.
        match LatencySummary::from_times(&times) {
            None => prop_assert!(times.len() < 2),
            Some(s) => {
                prop_assert_eq!(s.count, times.len() as u64 - 1);
                prop_assert!(s.min <= s.max);
                prop_assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.p999);
                prop_assert!(s.mean >= 0.0);
            }
        }
    }
}
