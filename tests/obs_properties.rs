//! Property-based tests on the observability layer: histogram merge
//! is a commutative monoid, quantile bounds really bound ranks (to
//! sub-octave precision), flight dumps round-trip through their JSON
//! schema, and latency summaries never panic on adversarial timestamp
//! streams.

// Proptest is an external crate gated behind `heavy-deps` so the
// default workspace builds with zero crates.io dependencies; enable
// the feature to run this suite.
#![cfg(feature = "heavy-deps")]

use practically_wait_free::obs::{
    Event, EventKind, FlightDump, Histogram, LatencySummary, Watchdog, DEFAULT_KEEP_PER_THREAD,
    DEFAULT_MAX_OFFENDERS,
};
use proptest::prelude::*;
use pwf_runner::json::Json;

/// Samples spanning every magnitude (including the extremes), not
/// just the small integers a naive `0..N` range would produce.
fn arb_sample() -> impl Strategy<Value = u64> {
    prop_oneof![
        (0u64..64, 0u64..u64::MAX).prop_map(|(shift, raw)| raw >> shift),
        Just(u64::MAX),
        Just(0u64),
    ]
}

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_is_commutative_and_associative(
        a in prop::collection::vec(arb_sample(), 0..40),
        b in prop::collection::vec(arb_sample(), 0..40),
        c in prop::collection::vec(arb_sample(), 0..40),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));

        // Commutativity: a ⊕ b == b ⊕ a.
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);

        // Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
        let mut ab_c = ab;
        ab_c.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        // Both equal recording every sample into one histogram — the
        // property that makes per-thread recording safe.
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&ab_c, &hist_of(&all));
    }

    #[test]
    fn quantile_bounds_cover_their_rank(
        values in prop::collection::vec(arb_sample(), 1..80),
        q_permille in 1u32..1001,
    ) {
        let h = hist_of(&values);
        let q = q_permille as f64 / 1000.0;
        let bound = h.quantile_upper_bound(q);

        // Rank guarantee: at least ceil(q * n) samples are <= bound.
        let target = (q * values.len() as f64).ceil() as usize;
        let covered = values.iter().filter(|&&v| v <= bound).count();
        prop_assert!(
            covered >= target,
            "bound {} covers {}/{} samples, needed {}",
            bound, covered, values.len(), target
        );

        // Monotone in q, and q = 1 covers the maximum.
        prop_assert!(bound <= h.quantile_upper_bound(1.0));
        prop_assert!(h.quantile_upper_bound(1.0) >= h.max_value());
    }

    #[test]
    fn quantile_bounds_are_sub_octave_tight(
        values in prop::collection::vec(arb_sample(), 1..80),
        q_permille in 1u32..1001,
    ) {
        let h = hist_of(&values);
        let q = q_permille as f64 / 1000.0;
        let bound = h.quantile_upper_bound(q);

        let mut sorted = values.clone();
        sorted.sort_unstable();
        let target = ((q * values.len() as f64).ceil() as usize).max(1);
        let exact = sorted[target - 1];

        // The log-linear layout guarantees the bound lands in the
        // rank-quantile sample's own sub-bucket: at most 1/16 relative
        // overshoot (one sub-bucket) plus the integer rounding unit —
        // the bound a plain log2 histogram misses by a whole octave.
        prop_assert!(bound >= exact, "bound {} under exact {}", bound, exact);
        prop_assert!(
            bound <= exact.saturating_add(exact >> 4).saturating_add(1),
            "bound {} overshoots exact rank quantile {} by more than a sub-bucket",
            bound, exact
        );
    }

    #[test]
    fn merged_quantiles_match_global_recording(
        a in prop::collection::vec(arb_sample(), 1..40),
        b in prop::collection::vec(arb_sample(), 0..40),
        q_permille in 1u32..1001,
    ) {
        // Structural merge equality (above) implies this, but the
        // quantile path is what consumers actually read — pin the
        // behavioural contract directly.
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        let all: Vec<u64> = a.iter().chain(&b).copied().collect();
        let q = q_permille as f64 / 1000.0;
        prop_assert_eq!(
            merged.quantile_upper_bound(q),
            hist_of(&all).quantile_upper_bound(q)
        );
    }

    #[test]
    fn flight_dumps_round_trip_through_json(
        raw in prop::collection::vec(
            (arb_sample(), 0u32..8, 0usize..10, arb_sample()),
            0..40,
        ),
        breaches in 1u64..20,
    ) {
        const KINDS: [EventKind; 10] = [
            EventKind::OpStart,
            EventKind::OpEnd,
            EventKind::Complete,
            EventKind::CasAttempt,
            EventKind::CasFail,
            EventKind::Backoff,
            EventKind::SchedulerPick,
            EventKind::PhaseBegin,
            EventKind::PhaseEnd,
            EventKind::Crash,
        ];
        let events: Vec<Event> = raw
            .iter()
            .enumerate()
            .map(|(i, &(tick, thread, kind, arg))| Event {
                ticket: i as u64,
                tick,
                thread,
                kind: KINDS[kind],
                arg,
            })
            .collect();
        let w = Watchdog::armed(10, 0);
        for i in 0..breaches {
            w.observe((i % 4) as u32, i, 100 + i);
        }
        let dump = FlightDump::capture(
            "tail exceedance",
            &w.report(),
            &events,
            DEFAULT_KEEP_PER_THREAD,
            None,
            1.0,
        );

        let doc = Json::parse(&dump.to_json()).expect("dump JSON parses");
        prop_assert_eq!(doc.get("reason").and_then(Json::as_str), Some("tail exceedance"));
        prop_assert_eq!(doc.get("threshold").and_then(Json::as_u64), Some(10));
        prop_assert_eq!(doc.get("observed").and_then(Json::as_u64), Some(breaches));
        prop_assert_eq!(doc.get("exceeded").and_then(Json::as_u64), Some(breaches));

        // Every event survives the trip to JSON and back, in order.
        let evs = doc.get("events").and_then(Json::as_array).expect("events array");
        prop_assert_eq!(evs.len(), events.len());
        for (e, j) in events.iter().zip(evs) {
            prop_assert_eq!(j.get("ticket").and_then(Json::as_u64), Some(e.ticket));
            prop_assert_eq!(j.get("tick").and_then(Json::as_u64), Some(e.tick));
            prop_assert_eq!(j.get("thread").and_then(Json::as_u64), Some(e.thread as u64));
            prop_assert_eq!(j.get("kind").and_then(Json::as_str), Some(e.kind.name()));
            prop_assert_eq!(j.get("arg").and_then(Json::as_u64), Some(e.arg));
        }

        // The watchdog's offender list is named, capped at the keep
        // limit, worst first.
        let offs = doc.get("offenders").and_then(Json::as_array).expect("offenders array");
        prop_assert_eq!(offs.len() as u64, breaches.min(DEFAULT_MAX_OFFENDERS as u64));
        let values: Vec<u64> = offs
            .iter()
            .map(|o| o.get("value").and_then(Json::as_u64).expect("offender value"))
            .collect();
        prop_assert!(values.windows(2).all(|w| w[0] >= w[1]));

        // The embedded Perfetto trace is exactly the standalone
        // export: cutting the `trace` field out of a dump yields a
        // document Perfetto loads as-is.
        let embedded = doc.get("trace").expect("embedded trace").clone();
        let standalone = Json::parse(&dump.perfetto_json()).expect("perfetto JSON parses");
        prop_assert_eq!(embedded, standalone);
    }

    #[test]
    fn summaries_survive_non_monotonic_time_streams(
        times in prop::collection::vec(arb_sample(), 0..60),
    ) {
        // Timestamps from real clocks can go backwards (migration
        // between cores, NTP steps); from_times must saturate, never
        // underflow or panic.
        match LatencySummary::from_times(&times) {
            None => prop_assert!(times.len() < 2),
            Some(s) => {
                prop_assert_eq!(s.count, times.len() as u64 - 1);
                prop_assert!(s.min <= s.max);
                prop_assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.p999);
                prop_assert!(s.mean >= 0.0);
            }
        }
    }
}

#[test]
fn same_octave_values_get_distinct_quantiles() {
    // 100 and 120 share the [64, 128) octave: a log2 histogram maps
    // both to the same bucket and reports one value for every
    // quantile between them (the p99 == p999 artifact the log-linear
    // layout exists to fix). Sub-buckets of width 4 resolve them.
    let mut h = Histogram::new();
    for _ in 0..1000 {
        h.record(100);
    }
    h.record(120);
    let p50 = h.quantile_upper_bound(0.5);
    let p9999 = h.quantile_upper_bound(0.9999);
    assert!(
        (100..120).contains(&p50),
        "p50 bound {p50} left the 100-sample sub-bucket"
    );
    assert!(p9999 >= 120, "p9999 bound {p9999} missed the 120 outlier");
    assert!(p50 < p9999, "sub-octave quantiles collapsed");
}
