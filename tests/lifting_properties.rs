//! Property-based tests for the Markov-chain substrate: stationary
//! distributions, hitting times, ergodic flow, and liftings on
//! randomly generated chains.

// Proptest is an external crate gated behind `heavy-deps` so the
// default workspace builds with zero crates.io dependencies; enable
// the feature to run this suite.
#![cfg(feature = "heavy-deps")]

use practically_wait_free::markov::chain::MarkovChain;
use practically_wait_free::markov::flow::ErgodicFlow;
use practically_wait_free::markov::hitting::hitting_times;
use practically_wait_free::markov::lifting::verify_lifting;
use practically_wait_free::markov::linalg::Matrix;
use practically_wait_free::markov::stationary::{balance_residual, stationary_distribution};
use practically_wait_free::markov::structure::is_irreducible;
use proptest::prelude::*;

/// Strategy: a random irreducible row-stochastic matrix of size n,
/// built by mixing a random non-negative matrix with a cycle (which
/// guarantees strong connectivity) and a touch of self-loop (which
/// guarantees aperiodicity).
fn random_ergodic_chain(n: usize) -> impl Strategy<Value = MarkovChain<usize>> {
    prop::collection::vec(0.01f64..1.0, n * n).prop_map(move |raw| {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            let row = &raw[i * n..(i + 1) * n];
            let sum: f64 = row.iter().sum();
            for j in 0..n {
                // 80% random mass, 10% cycle edge, 10% self loop.
                let mut p = 0.8 * row[j] / sum;
                if j == (i + 1) % n {
                    p += 0.1;
                }
                if j == i {
                    p += 0.1;
                }
                m[(i, j)] = p;
            }
        }
        MarkovChain::from_matrix((0..n).collect(), m).expect("constructed stochastic")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stationary_is_a_normalized_fixed_point(chain in (2usize..8).prop_flat_map(random_ergodic_chain)) {
        let pi = stationary_distribution(&chain).unwrap();
        prop_assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(pi.iter().all(|&p| p >= -1e-12));
        prop_assert!(balance_residual(&chain, &pi) < 1e-9);
    }

    #[test]
    fn return_times_match_reciprocal_stationary(chain in (2usize..7).prop_flat_map(random_ergodic_chain)) {
        let pi = stationary_distribution(&chain).unwrap();
        for j in 0..chain.len() {
            let h = hitting_times(&chain, j).unwrap();
            prop_assert!((h[j] - 1.0 / pi[j]).abs() / (1.0 / pi[j]) < 1e-7,
                "state {}: h={} vs 1/pi={}", j, h[j], 1.0 / pi[j]);
        }
    }

    #[test]
    fn ergodic_flow_is_conserved(chain in (2usize..8).prop_flat_map(random_ergodic_chain)) {
        let flow = ErgodicFlow::compute(&chain).unwrap();
        prop_assert!((flow.total() - 1.0).abs() < 1e-9);
        prop_assert!(flow.conservation_residual() < 1e-9);
    }

    #[test]
    fn identity_map_is_always_a_lifting(chain in (2usize..8).prop_flat_map(random_ergodic_chain)) {
        let report = verify_lifting(&chain, &chain, |&s| s, 1e-8).unwrap();
        prop_assert!(report.flow_residual < 1e-10);
        prop_assert!(report.stationary_residual < 1e-10);
    }

    #[test]
    fn random_chains_are_irreducible_by_construction(chain in (2usize..8).prop_flat_map(random_ergodic_chain)) {
        prop_assert!(is_irreducible(&chain));
    }

    #[test]
    fn product_lifting_collapses_correctly(base in (2usize..5).prop_flat_map(random_ergodic_chain)) {
        // Lift the base chain by pairing it with an independent fair
        // coin that flips at every step: states (s, b), transition
        // (s,b) -> (s', 1-b) with probability P[s->s']/1... coin flips
        // to either side with prob 1/2.
        let n = base.len();
        let mut m = Matrix::zeros(2 * n, 2 * n);
        for s in 0..n {
            for b in 0..2 {
                for s2 in 0..n {
                    for b2 in 0..2 {
                        m[(s * 2 + b, s2 * 2 + b2)] = base.prob(s, s2) * 0.5;
                    }
                }
            }
        }
        let lifted = MarkovChain::from_matrix((0..2 * n).collect(), m).unwrap();
        let report = verify_lifting(&lifted, &base, |&x| x / 2, 1e-8).unwrap();
        prop_assert!(report.flow_residual < 1e-9);
        prop_assert!(report.stationary_residual < 1e-9);
    }
}

#[test]
fn paper_liftings_all_verify() {
    use practically_wait_free::algorithms::chains::{fai, parallel, scu};
    // One consolidated sweep of every lifting the paper claims.
    for n in 2..=6 {
        let r = verify_lifting(
            &fai::individual_chain(n).unwrap(),
            &fai::global_chain(n).unwrap(),
            fai::lift,
            1e-8,
        )
        .unwrap();
        assert!(r.flow_residual < 1e-9, "fai n={n}");
    }
    for n in 2..=5 {
        let r = verify_lifting(
            &scu::individual_chain(n).unwrap(),
            &scu::system_chain(n).unwrap(),
            scu::lift,
            1e-8,
        )
        .unwrap();
        assert!(r.flow_residual < 1e-9, "scu n={n}");
    }
    for (n, q) in [(2usize, 4usize), (3, 3), (4, 2)] {
        let r = verify_lifting(
            &parallel::individual_chain(n, q).unwrap(),
            &parallel::system_chain(n, q).unwrap(),
            |s| parallel::lift(s, q),
            1e-8,
        )
        .unwrap();
        assert!(r.flow_residual < 1e-9, "parallel n={n} q={q}");
    }
}
