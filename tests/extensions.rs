//! Integration tests for the workspace's extensions beyond the
//! paper's headline results: the blocking baseline, quantum/priority
//! scheduling, the fine-grained `SCU(0, s)` chain, sparse large-`n`
//! analysis, mixing times, and the α-fit.

use practically_wait_free::algorithms::chains::{scan, scu};
use practically_wait_free::algorithms::lock::predicted_system_latency;
use practically_wait_free::ballsbins::game::mean_phase_length;
use practically_wait_free::core::progress_audit::audit;
use practically_wait_free::core::{AlgorithmSpec, SchedulerSpec, SimExperiment};
use practically_wait_free::markov::mixing::lazy_mixing_time;
use practically_wait_free::theory::fitting::fit_scu_alpha;
use pwf_rng::rngs::StdRng;
use pwf_rng::SeedableRng;

#[test]
fn lock_counter_latency_matches_closed_form() {
    for (n, cs) in [(4usize, 1usize), (8, 2), (16, 3)] {
        let w = SimExperiment::new(AlgorithmSpec::LockCounter { cs_len: cs }, n, 400_000)
            .seed(201)
            .run()
            .unwrap()
            .system_latency
            .unwrap();
        let pred = predicted_system_latency(n, cs);
        assert!(
            (w - pred).abs() / pred < 0.05,
            "n={n}, cs={cs}: W={w} vs {pred}"
        );
    }
}

#[test]
fn lock_free_asymptotically_dominates_lock_based() {
    // The ratio W_lock / W_lockfree grows with n (Θ(n) vs Θ(√n)).
    let ratio = |n: usize| {
        let lock = SimExperiment::new(AlgorithmSpec::LockCounter { cs_len: 2 }, n, 300_000)
            .seed(202)
            .run()
            .unwrap()
            .system_latency
            .unwrap();
        let free = SimExperiment::new(AlgorithmSpec::FetchAndInc, n, 300_000)
            .seed(202)
            .run()
            .unwrap()
            .system_latency
            .unwrap();
        lock / free
    };
    let r4 = ratio(4);
    let r32 = ratio(32);
    assert!(r32 > 1.8 * r4, "ratio at 32 ({r32}) vs at 4 ({r4})");
}

#[test]
fn quantum_scheduler_keeps_wait_freedom_and_cuts_latency() {
    let uniform = audit(
        AlgorithmSpec::Scu { q: 0, s: 1 },
        SchedulerSpec::Uniform,
        8,
        300_000,
        203,
    )
    .unwrap();
    let quantum = audit(
        AlgorithmSpec::Scu { q: 0, s: 1 },
        SchedulerSpec::Quantum(0.1),
        8,
        300_000,
        203,
    )
    .unwrap();
    assert!(uniform.achieved_maximal_progress());
    assert!(quantum.achieved_maximal_progress());

    let w_uniform = SimExperiment::new(AlgorithmSpec::Scu { q: 0, s: 1 }, 8, 300_000)
        .seed(203)
        .run()
        .unwrap()
        .system_latency
        .unwrap();
    let w_quantum = SimExperiment::new(AlgorithmSpec::Scu { q: 0, s: 1 }, 8, 300_000)
        .scheduler(SchedulerSpec::Quantum(0.1))
        .seed(203)
        .run()
        .unwrap()
        .system_latency
        .unwrap();
    assert!(
        w_quantum < w_uniform,
        "quantum {w_quantum} should beat uniform {w_uniform}"
    );
}

#[test]
fn priority_noise_separates_stochastic_from_adversarial() {
    let noisy = audit(
        AlgorithmSpec::Scu { q: 0, s: 1 },
        SchedulerSpec::Priority(0.1),
        4,
        300_000,
        204,
    )
    .unwrap();
    assert!(noisy.theta > 0.0);
    assert!(noisy.achieved_maximal_progress());

    let pure = audit(
        AlgorithmSpec::Scu { q: 0, s: 1 },
        SchedulerSpec::Priority(0.0),
        4,
        100_000,
        204,
    )
    .unwrap();
    assert_eq!(pure.theta, 0.0);
    assert!(!pure.achieved_maximal_progress());
}

#[test]
fn ms_queue_behaves_like_the_scu_class_empirically() {
    // Not in SCU(q,s) strictly (helping), but wait-free in practice
    // under every stochastic scheduler all the same.
    for sched in [
        SchedulerSpec::Uniform,
        SchedulerSpec::Sticky(0.6),
        SchedulerSpec::Quantum(0.2),
    ] {
        let r = audit(AlgorithmSpec::MsQueue, sched.clone(), 4, 300_000, 205).unwrap();
        assert!(
            r.achieved_maximal_progress(),
            "ms-queue starved under {sched:?}"
        );
    }
}

#[test]
fn scan_chain_agrees_with_game_and_paper_chain_at_s1() {
    let mut rng = StdRng::seed_from_u64(206);
    for n in [4usize, 8, 16] {
        let fine = scan::exact_system_latency(n, 1).unwrap();
        let coarse = scu::exact_system_latency(n).unwrap();
        let game = mean_phase_length(n, 500, 40_000, &mut rng);
        assert!((fine - coarse).abs() / coarse < 1e-7);
        assert!((game - coarse).abs() / coarse < 0.03);
    }
}

#[test]
fn sparse_solver_extends_the_dense_frontier() {
    // Dense is capped at MAX_SYSTEM_N; sparse goes beyond and stays on
    // the √n curve.
    let dense64 = scu::exact_system_latency(64).unwrap();
    let sparse64 = scu::large_system_latency(64, 300_000, 1e-12).unwrap();
    assert!((dense64 - sparse64).abs() < 1e-6);
    let sparse256 = scu::large_system_latency(256, 400_000, 1e-11).unwrap();
    let ratio = (sparse256 / dense64) / (256f64 / 64.0).sqrt();
    assert!(
        (ratio - 1.0).abs() < 0.05,
        "√n scaling violated: ratio {ratio}"
    );
}

#[test]
fn alpha_fit_on_exact_latencies_is_tight() {
    // Fit α on exact chain data: W(n) = offset + α√n should fit with
    // small residual and α ≈ 1.8–2.0.
    let obs: Vec<(usize, usize, f64)> = [8usize, 16, 32, 64, 100]
        .iter()
        .map(|&n| (n, 1, scu::exact_system_latency(n).unwrap()))
        .collect();
    let fit = fit_scu_alpha(&obs);
    assert!(
        fit.alpha > 1.5 && fit.alpha < 2.1,
        "fitted alpha {}",
        fit.alpha
    );
    assert!(
        fit.rms_relative_error < 0.02,
        "residual {}",
        fit.rms_relative_error
    );
}

#[test]
fn mixing_time_small_relative_to_run_lengths() {
    // The stationary regime arrives quickly: t_mix(0.01) for n = 32 is
    // far below the run lengths used across this workspace.
    let chain = scu::system_chain(32).unwrap();
    let start = chain.state_index(&(32, 0)).unwrap();
    let report = lazy_mixing_time(&chain, &[start], 0.01, 100_000).unwrap();
    assert!(report.mixing_time.unwrap() < 1_000);
}

#[test]
fn gap_histogram_tail_is_thin_under_uniform_scheduler() {
    use practically_wait_free::algorithms::scu::{ScuObject, ScuProcess};
    use practically_wait_free::sim::executor::{run, RunConfig};
    use practically_wait_free::sim::memory::SharedMemory;
    use practically_wait_free::sim::process::{Process, ProcessId};
    use practically_wait_free::sim::scheduler::UniformScheduler;
    use practically_wait_free::sim::stats::individual_latency_histogram;

    let n = 8;
    let mut mem = SharedMemory::new();
    let obj = ScuObject::alloc(&mut mem, 1);
    let mut ps: Vec<Box<dyn Process>> = (0..n)
        .map(|i| {
            Box::new(ScuProcess::new(ProcessId::new(i), obj.clone(), 0, 1)) as Box<dyn Process>
        })
        .collect();
    let exec = run(
        &mut ps,
        &mut UniformScheduler::new(),
        &mut mem,
        &RunConfig::new(400_000).seed(207),
    );
    let h = individual_latency_histogram(&exec, ProcessId::new(0)).unwrap();
    // Median within ~2× the mean n·W ≈ 8·5.5; p99.9 within ~10×: the
    // lock-free worst case (unbounded) never materializes.
    let median = h.quantile_upper_bound(0.5);
    let tail = h.quantile_upper_bound(0.999);
    assert!(median <= 128, "median bucket {median}");
    assert!(tail <= 1024, "p99.9 bucket {tail}");
    assert!(h.max_gap() < 4_096, "worst observed gap {}", h.max_gap());
}
