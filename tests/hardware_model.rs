//! Property-based model checking of the hardware structures: arbitrary
//! operation sequences executed single-threaded must agree exactly
//! with the obvious sequential models. (Concurrency is covered by the
//! stress tests in `pwf-hardware` and `tests/hardware_integration.rs`;
//! this file pins down sequential semantics, pool accounting, and
//! error behaviour.)

// Proptest is an external crate gated behind `heavy-deps` so the
// default workspace builds with zero crates.io dependencies; enable
// the feature to run this suite.
#![cfg(feature = "heavy-deps")]

use practically_wait_free::hardware::msqueue::{MsQueue, QueueError};
use practically_wait_free::hardware::treiber::{StackError, TreiberStack};
use proptest::prelude::*;
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy)]
enum Op {
    Push(u64),
    Pop,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![(0u64..1000).prop_map(Op::Push), Just(Op::Pop)],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn stack_matches_vec_model(ops in arb_ops(), capacity in 1usize..64) {
        let stack = TreiberStack::with_capacity(capacity);
        let mut model: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                Op::Push(v) => {
                    let result = stack.push(v);
                    if model.len() < capacity {
                        prop_assert_eq!(result, Ok(()));
                        model.push(v);
                    } else {
                        prop_assert_eq!(result, Err(StackError::PoolExhausted));
                    }
                }
                Op::Pop => {
                    prop_assert_eq!(stack.pop(), model.pop());
                }
            }
            prop_assert_eq!(stack.is_empty(), model.is_empty());
        }
        // Drain and compare the remainder in LIFO order.
        while let Some(expected) = model.pop() {
            prop_assert_eq!(stack.pop(), Some(expected));
        }
        prop_assert_eq!(stack.pop(), None);
    }

    #[test]
    fn queue_matches_deque_model(ops in arb_ops(), capacity in 1usize..64) {
        let queue = MsQueue::with_capacity(capacity);
        let mut model: VecDeque<u64> = VecDeque::new();
        for op in ops {
            match op {
                Op::Push(v) => {
                    let result = queue.enqueue(v);
                    if model.len() < capacity {
                        prop_assert_eq!(result, Ok(()));
                        model.push_back(v);
                    } else {
                        prop_assert_eq!(result, Err(QueueError::PoolExhausted));
                    }
                }
                Op::Pop => {
                    prop_assert_eq!(queue.dequeue(), model.pop_front());
                }
            }
            prop_assert_eq!(queue.is_empty(), model.is_empty());
        }
        while let Some(expected) = model.pop_front() {
            prop_assert_eq!(queue.dequeue(), Some(expected));
        }
        prop_assert_eq!(queue.dequeue(), None);
    }

    #[test]
    fn fai_counter_is_a_counter(increments in 1u64..500) {
        use practically_wait_free::hardware::fai_counter::FaiCounter;
        let c = FaiCounter::new();
        for expected in 0..increments {
            let (v, steps) = c.fetch_and_inc();
            prop_assert_eq!(v, expected);
            prop_assert_eq!(steps, 2); // uncontended: read + CAS
        }
        prop_assert_eq!(c.load(), increments);
    }

    #[test]
    fn spinlock_counter_is_a_counter(increments in 1u64..500) {
        use practically_wait_free::hardware::spinlock::SpinlockCounter;
        let c = SpinlockCounter::new();
        for expected in 0..increments {
            let (v, steps) = c.increment();
            prop_assert_eq!(v, expected);
            prop_assert_eq!(steps, 4); // uncontended TAS + read + write + unlock
        }
        prop_assert_eq!(c.load(), increments);
    }
}

#[test]
fn queue_pool_accounting_under_interleaved_exhaustion() {
    // Enqueue to exhaustion, drain halfway, repeat — the dummy-node
    // accounting must never leak slots.
    let capacity = 8;
    let q = MsQueue::with_capacity(capacity);
    for round in 0..50u64 {
        let mut enqueued = 0u64;
        while q.enqueue(round * 1000 + enqueued).is_ok() {
            enqueued += 1;
        }
        assert_eq!(enqueued, capacity as u64, "round {round} lost slots");
        for i in 0..capacity as u64 / 2 {
            assert_eq!(q.dequeue(), Some(round * 1000 + i));
        }
        for i in capacity as u64 / 2..capacity as u64 {
            assert_eq!(q.dequeue(), Some(round * 1000 + i));
        }
        assert_eq!(q.dequeue(), None);
    }
}
