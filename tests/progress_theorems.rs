//! End-to-end checks of the paper's progress results: Theorem 3 (min →
//! max progress under stochastic scheduling), its necessity condition
//! (Lemma 2), and the adversarial converse.

use practically_wait_free::core::progress_audit::audit;
use practically_wait_free::core::{AlgorithmSpec, SchedulerSpec, SimExperiment};

#[test]
fn theorem_3_holds_for_every_bounded_algorithm_and_stochastic_scheduler() {
    let algorithms = [
        AlgorithmSpec::Scu { q: 0, s: 1 },
        AlgorithmSpec::Scu { q: 3, s: 2 },
        AlgorithmSpec::FetchAndInc,
        AlgorithmSpec::Parallel { q: 4 },
        AlgorithmSpec::TreiberStack,
    ];
    let schedulers = [
        SchedulerSpec::Uniform,
        SchedulerSpec::Lottery(vec![4, 1, 1, 1]),
        SchedulerSpec::Sticky(0.7),
    ];
    for algorithm in &algorithms {
        for scheduler in &schedulers {
            let report = audit(algorithm.clone(), scheduler.clone(), 4, 400_000, 55).unwrap();
            assert!(
                report.achieved_maximal_progress(),
                "{} under {scheduler:?} should be wait-free in practice",
                algorithm.name()
            );
        }
    }
}

#[test]
fn lemma_2_unbounded_algorithm_starves_under_stochastic_scheduler() {
    let mut starving_runs = 0;
    for seed in 0..3 {
        let report = audit(
            AlgorithmSpec::Unbounded,
            SchedulerSpec::Uniform,
            8,
            400_000,
            seed,
        )
        .unwrap();
        if !report.achieved_maximal_progress() {
            starving_runs += 1;
        }
    }
    // "with high probability": all three seeds should starve at n=8.
    assert_eq!(
        starving_runs, 3,
        "unbounded algorithm unexpectedly wait-free"
    );
}

#[test]
fn adversary_starves_scu_but_not_parallel_code() {
    // Round-robin starves SCU(0,1) (the classic schedule)…
    let scu = audit(
        AlgorithmSpec::Scu { q: 0, s: 1 },
        SchedulerSpec::Adversarial(vec![0, 1]),
        2,
        100_000,
        1,
    )
    .unwrap();
    assert!(!scu.achieved_maximal_progress());
    assert!(scu.minimal_bound.is_some(), "lock-freedom still holds");

    // …but parallel code is wait-free under ANY fair-ish script — it
    // has no contention to lose.
    let par = audit(
        AlgorithmSpec::Parallel { q: 3 },
        SchedulerSpec::Adversarial(vec![0, 1]),
        2,
        100_000,
        1,
    )
    .unwrap();
    assert!(par.achieved_maximal_progress());
}

#[test]
fn solo_adversary_gives_lock_free_algorithms_maximal_progress_in_some_execution() {
    // Part of the lock-freedom definition: maximal progress in SOME
    // execution. The solo schedule is that execution (for the solo
    // process — the others never take steps, so they are effectively
    // crashed and exempt).
    let report = SimExperiment::new(AlgorithmSpec::Scu { q: 0, s: 1 }, 3, 50_000)
        .scheduler(SchedulerSpec::Adversarial(vec![2]))
        .run()
        .unwrap();
    assert!(report.process_completions[2] > 10_000);
}

#[test]
fn theorem_3_bound_is_finite_and_loose() {
    let report = audit(
        AlgorithmSpec::Scu { q: 0, s: 1 },
        SchedulerSpec::Uniform,
        4,
        400_000,
        9,
    )
    .unwrap();
    let generic = report.theorem_3_bound.expect("theta > 0 and ops completed");
    let observed = report.maximal_bound.expect("wait-free in practice") as f64;
    assert!(
        generic > observed,
        "generic bound {generic} must dominate observation {observed}"
    );
}

#[test]
fn crashes_do_not_block_survivors() {
    // Lock-freedom under crash-failures: survivors keep completing.
    let report = SimExperiment::new(AlgorithmSpec::Scu { q: 0, s: 1 }, 6, 300_000)
        .crash(5_000, 0)
        .crash(10_000, 1)
        .crash(20_000, 2)
        .seed(77)
        .run()
        .unwrap();
    for i in 3..6 {
        assert!(
            report.process_completions[i] > 5_000,
            "survivor {i} stalled: {:?}",
            report.process_completions
        );
    }
}
