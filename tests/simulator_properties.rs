//! Property-based tests on the simulator: executions are well-formed
//! regardless of algorithm, scheduler, seed, or crash pattern.

// Proptest is an external crate gated behind `heavy-deps` so the
// default workspace builds with zero crates.io dependencies; enable
// the feature to run this suite.
#![cfg(feature = "heavy-deps")]

use practically_wait_free::core::{AlgorithmSpec, SchedulerSpec, SimExperiment};
use proptest::prelude::*;

fn arb_algorithm() -> impl Strategy<Value = AlgorithmSpec> {
    prop_oneof![
        (0usize..6, 1usize..4).prop_map(|(q, s)| AlgorithmSpec::Scu { q, s }),
        (1usize..6).prop_map(|q| AlgorithmSpec::Parallel { q }),
        Just(AlgorithmSpec::FetchAndInc),
        Just(AlgorithmSpec::Unbounded),
        Just(AlgorithmSpec::TreiberStack),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn executions_are_well_formed(
        algorithm in arb_algorithm(),
        n in 1usize..6,
        seed in 0u64..1000,
    ) {
        let steps = 5_000u64;
        let report = SimExperiment::new(algorithm, n, steps).seed(seed).run().unwrap();
        // Steps conserved.
        prop_assert_eq!(report.steps, steps);
        // Completions cannot exceed steps.
        prop_assert!(report.total_completions <= steps);
        // Per-process completions sum to the total.
        prop_assert_eq!(
            report.process_completions.iter().sum::<u64>(),
            report.total_completions
        );
        // Completion rate in [0, 1].
        prop_assert!((0.0..=1.0).contains(&report.completion_rate));
    }

    #[test]
    fn any_scheduler_produces_minimal_progress_for_bounded_algorithms(
        n in 2usize..6,
        seed in 0u64..1000,
        sched_seed in 0u64..4,
    ) {
        // SCU is lock-free: under ANY of our schedulers some process
        // keeps completing (minimal progress) — the defining property.
        let scheduler = match sched_seed {
            0 => SchedulerSpec::Uniform,
            1 => SchedulerSpec::Sticky(0.5),
            2 => SchedulerSpec::Lottery((1..=n as u64).collect()),
            _ => SchedulerSpec::Adversarial((0..n).collect()),
        };
        let report = SimExperiment::new(AlgorithmSpec::Scu { q: 0, s: 1 }, n, 20_000)
            .scheduler(scheduler)
            .seed(seed)
            .run()
            .unwrap();
        prop_assert!(report.minimal_progress_bound.is_some());
        // Lock-freedom quantified: some completion every ≤ 3n steps
        // under any schedule (scan + CAS per "round" of interference).
        prop_assert!(report.minimal_progress_bound.unwrap() <= (3 * n) as u64 + 3);
    }

    #[test]
    fn determinism_same_seed_same_report(
        algorithm in arb_algorithm(),
        n in 1usize..5,
        seed in 0u64..100,
    ) {
        let run = |s| {
            let r = SimExperiment::new(algorithm.clone(), n, 3_000).seed(s).run().unwrap();
            (r.total_completions, r.process_completions.clone())
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    #[test]
    fn crashes_never_unblock_more_completions(
        n in 3usize..6,
        seed in 0u64..100,
        crash_time in 100u64..2_000,
    ) {
        // A crashed process takes (almost) no steps after its crash.
        let report = SimExperiment::new(AlgorithmSpec::FetchAndInc, n, 10_000)
            .seed(seed)
            .crash(crash_time, 0)
            .run()
            .unwrap();
        prop_assert!(report.process_completions[0] <= crash_time);
        // Survivors still progress.
        prop_assert!(report.total_completions > 0);
    }

    #[test]
    fn scheduler_specs_respect_theta_semantics(n in 1usize..8, p in 0.0f64..0.9) {
        prop_assert!((SchedulerSpec::Uniform.theta(n) - 1.0 / n as f64).abs() < 1e-12);
        prop_assert!(SchedulerSpec::Sticky(p).theta(n) > 0.0);
        prop_assert_eq!(SchedulerSpec::Adversarial(vec![0]).theta(n), 0.0);
    }
}

#[test]
fn trace_statistics_are_consistent_with_uniform_scheduling() {
    use practically_wait_free::sim::executor::{run, RunConfig};
    use practically_wait_free::sim::memory::SharedMemory;
    use practically_wait_free::sim::process::{Process, ProcessId, TickingProcess};
    use practically_wait_free::sim::scheduler::UniformScheduler;
    use practically_wait_free::sim::stats::{conditional_next_step, step_share};

    let n = 6;
    let mut mem = SharedMemory::new();
    let r = mem.alloc(0);
    let mut ps: Vec<Box<dyn Process>> = (0..n)
        .map(|_| Box::new(TickingProcess::new(r, 3)) as Box<dyn Process>)
        .collect();
    let exec = run(
        &mut ps,
        &mut UniformScheduler::new(),
        &mut mem,
        &RunConfig::new(300_000).seed(5).record_trace(true),
    );
    // Figure 3 analogue: step shares ≈ 1/n.
    for share in step_share(&exec) {
        assert!((share - 1.0 / n as f64).abs() < 0.01, "share {share}");
    }
    // Figure 4 analogue: conditional next-step ≈ uniform.
    let d = conditional_next_step(&exec, ProcessId::new(0)).unwrap();
    for p in d {
        assert!((p - 1.0 / n as f64).abs() < 0.02, "conditional {p}");
    }
}
