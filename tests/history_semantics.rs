//! Cross-checks between the two progress formalisms in the workspace:
//! the completion-gap measures of `pwf_sim::progress` and the
//! history-predicate formulation of `pwf_sim::history` (the paper's
//! Section 2.2 definitions). They must tell the same story on the
//! same executions.

use practically_wait_free::algorithms::scu::{ScuObject, ScuProcess};
use practically_wait_free::sim::executor::{run, RunConfig};
use practically_wait_free::sim::history::History;
use practically_wait_free::sim::memory::SharedMemory;
use practically_wait_free::sim::process::{Process, ProcessId};
use practically_wait_free::sim::progress;
use practically_wait_free::sim::scheduler::{AdversarialScheduler, UniformScheduler};
use practically_wait_free::sim::Scheduler;

fn scu_execution(
    n: usize,
    steps: u64,
    seed: u64,
    scheduler: &mut dyn Scheduler,
) -> practically_wait_free::sim::Execution {
    let mut mem = SharedMemory::new();
    let obj = ScuObject::alloc(&mut mem, 1);
    let mut ps: Vec<Box<dyn Process>> = (0..n)
        .map(|i| {
            Box::new(ScuProcess::new(ProcessId::new(i), obj.clone(), 0, 1)) as Box<dyn Process>
        })
        .collect();
    run(
        &mut ps,
        scheduler,
        &mut mem,
        &RunConfig::new(steps).seed(seed).record_trace(true),
    )
}

#[test]
fn histories_of_scu_runs_are_well_formed() {
    for seed in 0..4 {
        let exec = scu_execution(6, 50_000, seed, &mut UniformScheduler::new());
        let h = History::from_execution(&exec);
        assert!(h.is_well_formed(), "seed {seed}");
        // Invocations = responses + pending (≤ n).
        let (inv, resp) = h.events().iter().fold((0u64, 0u64), |(i, r), e| match e {
            practically_wait_free::sim::history::Event::Invoke { .. } => (i + 1, r),
            practically_wait_free::sim::history::Event::Respond { .. } => (i, r + 1),
        });
        assert_eq!(resp, exec.total_completions());
        assert!(inv >= resp && inv <= resp + 6);
    }
}

#[test]
fn history_minimal_progress_consistent_with_gap_measure() {
    let exec = scu_execution(4, 100_000, 7, &mut UniformScheduler::new());
    let h = History::from_execution(&exec);
    let gap_bound = progress::measure(&exec, &[]).minimal_bound.unwrap();
    // The history's worst no-response wait differs from the completion
    // gap only through invocation boundaries; they agree within the
    // length of one operation's idle prefix.
    let hist_bound = h.worst_response_wait(&[], false).unwrap();
    assert!(
        hist_bound <= gap_bound,
        "history bound {hist_bound} vs gap bound {gap_bound}"
    );
    assert!(h.satisfies_bounded_minimal_progress(gap_bound, &[]));
}

#[test]
fn adversarial_starvation_shows_up_in_the_history() {
    let exec = scu_execution(2, 20_000, 1, &mut AdversarialScheduler::round_robin(2));
    let h = History::from_execution(&exec);
    assert!(h.is_well_formed());
    // The victim's pending invocation never responds: maximal progress
    // fails for every sub-run bound …
    assert!(!h.satisfies_bounded_maximal_progress(10_000, &[]));
    // … unless the victim is exempted.
    assert!(h.satisfies_bounded_maximal_progress(10, &[ProcessId::new(1)]));
    // Minimal progress stays tight (lock-freedom).
    assert!(h.satisfies_bounded_minimal_progress(8, &[]));
}

#[test]
fn operation_spans_bound_individual_latency_from_below() {
    use practically_wait_free::sim::stats::{individual_latency, mean_operation_duration};
    let exec = scu_execution(8, 300_000, 11, &mut UniformScheduler::new());
    for i in 0..8 {
        let p = ProcessId::new(i);
        let duration = mean_operation_duration(&exec, p).unwrap();
        let latency = individual_latency(&exec, p).unwrap().mean;
        // The span excludes the idle wait before the op's first step,
        // so it is at most the full inter-completion latency.
        assert!(
            duration <= latency + 1e-9,
            "p{i}: duration {duration} > latency {latency}"
        );
        // And both are on the n·√n scale, not the worst case.
        assert!(latency < 8.0 * 8.0, "p{i}: latency {latency}");
    }
}
