#!/usr/bin/env sh
# Offline CI gate. Everything here must pass on a machine with no
# network access — the workspace has no registry dependencies.
# Budget: ~2 minutes on a small container.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (offline, -D warnings)"
cargo clippy --workspace --offline -- -D warnings

echo "==> cargo build --release (offline)"
cargo build --release --offline --workspace

echo "==> cargo test (offline)"
cargo test -q --offline --workspace

echo "==> obs zero-cost gate: workspace must build and test with obs off"
cargo build --offline --no-default-features -p pwf-obs -p pwf-sim -p pwf-hardware
cargo test -q --offline --no-default-features -p pwf-obs -p pwf-sim -p pwf-hardware

echo "==> pwf smoke: run --all --jobs 2 --fast"
# --fast without --out is guaranteed not to overwrite results/.
./target/release/pwf run --all --jobs 2 --fast

echo "==> obs smoke: metrics run + Perfetto trace export"
./target/release/pwf run obs_overhead --fast --metrics
obs_trace_dir="$(mktemp -d)"
./target/release/pwf trace exp_latency_hist --fast --out "$obs_trace_dir"
test -s "$obs_trace_dir/exp_latency_hist.trace.json"
rm -rf "$obs_trace_dir"

echo "==> pwf vet: systematic checker smoke + orderings lint"
./target/release/pwf vet --fast
./target/release/pwf vet --orderings

echo "==> markov perf smoke: sparse must beat dense above the crossover"
# exp_markov_bench times the dense direct-solve SCU analysis against
# the sparse iterative pipeline and returns nonzero if sparse is not
# strictly faster at the dense wall; it also refreshes
# BENCH_markov.json. (--fast keeps the dense side at n <= 6.)
./target/release/pwf run exp_markov_bench --fast
grep -q '"speedup"' BENCH_markov.json

echo "==> sim perf smoke: alias sampling must beat the linear scan"
# exp_sim_bench times the linear-scan weighted pick against the O(1)
# alias sampler (and dyn vs monomorphized stepping) and returns
# nonzero if the alias path is not strictly faster at the largest
# size; it also refreshes BENCH_sim.json.
./target/release/pwf run exp_sim_bench --fast
grep -q '"speedup"' BENCH_sim.json

echo "==> checker still drives the retained dyn-dispatch path"
# The model checker replays heterogeneous Box<dyn Process> fleets
# through the same monomorphized core; rerun the smoke after the
# perf-path exercise to confirm both instantiations stay healthy.
./target/release/pwf vet --fast

echo "==> sparse-vs-dense solver property tests (vendored proptest)"
cargo test -q --offline --features heavy-deps --test sparse_markov_properties

echo "==> sampler property tests (vendored proptest)"
cargo test -q --offline -p pwf-sim --features heavy-deps --test sampler_properties

echo "ci.sh: all green"
