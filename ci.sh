#!/usr/bin/env sh
# Offline CI gate. Everything here must pass on a machine with no
# network access — the workspace has no registry dependencies.
# Budget: ~2 minutes on a small container.
set -eu

cd "$(dirname "$0")"

# If anything below fails, archive any flight-recorder dumps (written
# under flight/ when a watchdog trips) so the evidence survives the
# run as a single artifact.
archive_flight() {
    status=$?
    if [ "$status" -ne 0 ] && ls flight/*.json >/dev/null 2>&1; then
        tar -czf flight-dumps.tgz flight/*.json
        echo "ci.sh: FAILED (exit $status) — flight dumps archived in flight-dumps.tgz" >&2
    fi
    exit "$status"
}
trap archive_flight EXIT

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (offline, -D warnings)"
cargo clippy --workspace --offline -- -D warnings

echo "==> cargo build --release (offline)"
cargo build --release --offline --workspace

echo "==> cargo test (offline)"
cargo test -q --offline --workspace

echo "==> obs zero-cost gate: workspace must build and test with obs off"
cargo build --offline --no-default-features -p pwf-obs -p pwf-sim -p pwf-hardware
cargo test -q --offline --no-default-features -p pwf-obs -p pwf-sim -p pwf-hardware

echo "==> pwf report: perf trend gate over the committed BENCH files"
# Gates the committed BENCH_*.json against the last entry recorded in
# results/bench_history.jsonl: a PR committing regressed perf numbers
# without re-recording the history fails here. This runs BEFORE the
# --fast smokes below, which refresh the BENCH files with scaled-down
# workloads whose absolute numbers are not comparable to the recorded
# full-profile baseline. (Developers update the ledger after a full
# regeneration with `pwf run --all && pwf report --check --record`.)
./target/release/pwf report --check

echo "==> pwf smoke: run --all --jobs 2 --fast"
# --fast without --out is guaranteed not to overwrite results/.
./target/release/pwf run --all --jobs 2 --fast

echo "==> obs smoke: metrics run + Perfetto trace export"
./target/release/pwf run obs_overhead --fast --metrics
obs_trace_dir="$(mktemp -d)"
./target/release/pwf trace exp_latency_hist --fast --out "$obs_trace_dir"
test -s "$obs_trace_dir/exp_latency_hist.trace.json"
rm -rf "$obs_trace_dir"

echo "==> pwf vet: systematic checker smoke (parallel drain must match)"
./target/release/pwf vet --fast
# The work-stealing frontier is deterministic by construction: the
# full report must be byte-identical at any --jobs value.
./target/release/pwf vet --fast --jobs 2 > /tmp/pwf_vet_j2.txt
./target/release/pwf vet --fast --jobs 1 | diff - /tmp/pwf_vet_j2.txt
rm -f /tmp/pwf_vet_j2.txt

echo "==> pwf lint: workspace-wide concurrency static analysis"
# Deny-by-default over every crate: any finding without a
# fingerprint-valid lint.allow entry, any stale entry, and any edit to
# an allowed site that was not re-justified fails the build.
./target/release/pwf lint
# The compatibility alias must keep working against the same allow
# file (orderings pass only, pass-aware staleness).
./target/release/pwf vet --orderings
# The JSON surface stays machine-readable and reports a clean tree.
./target/release/pwf lint --json | grep -q '"clean":true}}'

echo "==> pwf lint: mutant corpus + fingerprint + schema gates"
# Both directions: every seeded mutant fixture is flagged with exactly
# its expected rules, clean fixtures and the shipped tree stay
# finding-free, edited-without-re-justify is a hard error, and the
# --json schema pin holds.
cargo test -q --offline -p pwf-lint
cargo test -q --offline -p pwf-runner --test lint_schema

echo "==> markov perf smoke: matrix-free engine vs dense, lifting at n=100"
# exp_markov_bench times the dense direct-solve SCU analysis against
# the matrix-free operator pipeline and returns nonzero if the
# operator path is not strictly faster at the dense wall, if the
# symmetry-reduced lifting check at n >= 100 exceeds a 1e-12 kernel
# residual, if solver throughput is not positive, or if the
# out-of-core spill solve is not bit-identical; it also refreshes
# BENCH_markov.json. (--fast keeps the dense side at n <= 6 but still
# runs the n = 100 matrix-free sweep.)
./target/release/pwf run exp_markov_bench --fast
grep -q '"speedup"' BENCH_markov.json
grep -q '"lifting_verified_n": 100' BENCH_markov.json
grep -q '"states_per_sec"' BENCH_markov.json

echo "==> checker perf smoke: frontier + cache must beat recursive DPOR"
# exp_checker_bench times the recursive single-threaded explorer
# against the work-stealing frontier drain with the shared state
# cache, asserts the cache-off drain walks exactly the recursive tree
# and that results are identical at --jobs 1/2/8, and returns nonzero
# if the frontier is not strictly faster at the largest target; it
# also refreshes BENCH_checker.json.
./target/release/pwf run exp_checker_bench --fast
grep -q '"speedup_at_largest"' BENCH_checker.json
grep -q '"largest_target"' BENCH_checker.json

echo "==> sim perf smoke: alias sampling must beat the linear scan"
# exp_sim_bench times the linear-scan weighted pick against the O(1)
# alias sampler (and dyn vs monomorphized stepping) and returns
# nonzero if the alias path is not strictly faster at the largest
# size; it also refreshes BENCH_sim.json.
./target/release/pwf run exp_sim_bench --fast
grep -q '"speedup"' BENCH_sim.json

echo "==> serve smoke: self-loadgen through a live HTTP server"
# exp_serve_bench boots pwf serve on an ephemeral loopback port and
# drives the built-in loadgen through it: concurrent Zipf-skewed
# /predict requests across the theory/chain/sim layers plus one
# barrier round on a slow key. It returns nonzero on any response
# drift vs direct computation, zero cache hits, zero coalescer joins,
# any transport error, or a p999 blowup vs the previous run; it also
# refreshes BENCH_serve.json.
./target/release/pwf run exp_serve_bench --fast
grep -q '"drift": 0' BENCH_serve.json
grep -q '"coalesced"' BENCH_serve.json

echo "==> watchdog gate: clean fleets silent, crashed lock holder trips"
# exp_obs_watchdog arms the online tail watchdog from the theory
# envelope: the SCU and crash-free lock fleets must stay inside it,
# the crashed-holder fleet must trip it, and the resulting flight
# dump (under flight/) must name the offending gaps.
./target/release/pwf run exp_obs_watchdog --fast
ls flight/tail-exceedance-*.json >/dev/null

echo "==> serve property tests: LRU vs reference model (vendored proptest)"
cargo test -q --offline -p pwf-serve --features heavy-deps --test lru_properties

echo "==> checker still drives the retained dyn-dispatch path"
# The model checker replays heterogeneous Box<dyn Process> fleets
# through the same monomorphized core; rerun the smoke after the
# perf-path exercise to confirm both instantiations stay healthy.
./target/release/pwf vet --fast

echo "==> sparse-vs-dense solver property tests (vendored proptest)"
cargo test -q --offline --features heavy-deps --test sparse_markov_properties

echo "==> operator property tests: implicit vs CSR, spill, dense blocks (vendored proptest)"
cargo test -q --offline -p pwf-markov --features heavy-deps --test operator_properties

echo "==> sampler property tests (vendored proptest)"
cargo test -q --offline -p pwf-sim --features heavy-deps --test sampler_properties

echo "==> obs property tests: histogram monoid + flight round-trip (vendored proptest)"
cargo test -q --offline --features heavy-deps --test obs_properties

echo "ci.sh: all green"
