#!/usr/bin/env sh
# Offline CI gate. Everything here must pass on a machine with no
# network access — the workspace has no registry dependencies.
# Budget: ~2 minutes on a small container.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (offline, -D warnings)"
cargo clippy --workspace --offline -- -D warnings

echo "==> cargo build --release (offline)"
cargo build --release --offline --workspace

echo "==> cargo test (offline)"
cargo test -q --offline --workspace

echo "==> pwf smoke: run --all --jobs 2 --fast"
# --fast without --out is guaranteed not to overwrite results/.
./target/release/pwf run --all --jobs 2 --fast

echo "==> pwf vet: systematic checker smoke + orderings lint"
./target/release/pwf vet --fast
./target/release/pwf vet --orderings

echo "ci.sh: all green"
