//! The paper's key analytical device, made concrete: the system chain
//! is a *lifting* of the individual chain (Figure 1 / Lemma 5).
//!
//! For two processes we print both chains of the scan-validate
//! pattern, the lifting map, and the numerically verified flow
//! homomorphism and stationary collapse; then the same for
//! fetch-and-increment and parallel code.
//!
//! Run with: `cargo run --release --example markov_lifting`

use practically_wait_free::algorithms::chains::scu::{
    individual_chain, lift, system_chain, PState,
};
use practically_wait_free::core::chain_analysis::{analyze, ChainFamily};
use practically_wait_free::markov::stationary::stationary_distribution;

fn pstate(p: &PState) -> &'static str {
    match p {
        PState::Read => "Read",
        PState::CCas => "CCAS",
        PState::OldCas => "OldCAS",
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 2;
    let ind = individual_chain(n)?;
    let sys = system_chain(n)?;

    println!("Figure 1 — the two chains for n = 2 processes.\n");
    println!(
        "Individual chain ({} states): stationary π and lifting image",
        ind.len()
    );
    let pi = stationary_distribution(&ind)?;
    for (i, s) in ind.states().iter().enumerate() {
        let labels: Vec<&str> = s.iter().map(pstate).collect();
        println!(
            "  ({:<6} {:<6}) π = {:.4}  → system state {:?}",
            labels[0],
            labels[1],
            pi[i],
            lift(s)
        );
    }

    println!(
        "\nSystem chain ({} states): transition probabilities",
        sys.len()
    );
    let pi_sys = stationary_distribution(&sys)?;
    for (i, &(a, b)) in sys.states().iter().enumerate() {
        let row: Vec<String> = sys
            .states()
            .iter()
            .enumerate()
            .filter(|&(j, _)| sys.prob(i, j) > 0.0)
            .map(|(j, &(a2, b2))| format!("({a2},{b2}) w.p. {:.2}", sys.prob(i, j)))
            .collect();
        println!("  ({a},{b}) π = {:.4}  →  {}", pi_sys[i], row.join(", "));
    }

    println!("\nLifting verification (flow homomorphism + Lemma 1 collapse):");
    for (family, label) in [
        (ChainFamily::Scu01, "SCU(0,1), n = 5"),
        (ChainFamily::FetchAndInc, "fetch-and-inc, n = 6"),
        (ChainFamily::Parallel { q: 3 }, "parallel code q = 3, n = 4"),
    ] {
        let n = match family {
            ChainFamily::Scu01 => 5,
            ChainFamily::FetchAndInc => 6,
            ChainFamily::Parallel { .. } => 4,
        };
        let r = analyze(family, n)?;
        println!(
            "  {label:<28} {:>6} → {:>3} states   flow residual {:.2e}   π residual {:.2e}   W_i/(nW) = {:.6}",
            r.individual_states,
            r.system_states,
            r.lifting_flow_residual,
            r.lifting_stationary_residual,
            r.fairness_identity()
        );
    }
    println!("\nAll residuals at numerical zero: the collapsed big chain IS the small");
    println!("chain, so system-level latency analysis transfers to every process.");
    Ok(())
}
