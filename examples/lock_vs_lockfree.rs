//! Blocking vs non-blocking, quantified — the contrast the paper's
//! introduction draws between deadlock-free (lock-based) and lock-free
//! code, run on the same simulator with the same step accounting.
//!
//! Run with: `cargo run --release --example lock_vs_lockfree`

use practically_wait_free::algorithms::lock::predicted_system_latency;
use practically_wait_free::core::{AlgorithmSpec, SimExperiment};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Counter throughput under the uniform stochastic scheduler:");
    println!(
        "{:>4} {:>14} {:>14} {:>12}",
        "n", "W lock-based", "W lock-free", "lock penalty"
    );
    for n in [2usize, 4, 8, 16, 32] {
        let lock = SimExperiment::new(AlgorithmSpec::LockCounter { cs_len: 2 }, n, 300_000)
            .seed(44)
            .run()?
            .system_latency
            .unwrap();
        let free = SimExperiment::new(AlgorithmSpec::FetchAndInc, n, 300_000)
            .seed(44)
            .run()?
            .system_latency
            .unwrap();
        println!(
            "{:>4} {:>14.2} {:>14.2} {:>11.1}x",
            n,
            lock,
            free,
            lock / free
        );
    }
    println!(
        "\nThe lock-based counter pays Θ(n) per operation (exact model: 1 + 3n = {}\n\
         at n = 32) because the critical section advances only when the holder is\n\
         scheduled; the lock-free counter pays Θ(√n). Under preemptive scheduling\n\
         the gap grows without bound — and a crashed lock holder deadlocks the\n\
         blocking version outright, while lock-freedom shrugs crashes off\n\
         (Corollary 2). This is the practical content of choosing non-blocking\n\
         algorithms even though they are 'only' lock-free.",
        predicted_system_latency(32, 2)
    );
    Ok(())
}
