//! How the scheduler decides whether lock-free "feels" wait-free.
//!
//! The same `SCU(0, 1)` fleet runs under four schedulers: the uniform
//! stochastic model, a skewed lottery, a locally-correlated (sticky)
//! scheduler, and a round-robin adversary. Stochastic schedulers
//! (θ > 0) yield maximal progress — every process keeps finishing —
//! while the adversary starves all processes but one (Theorem 3 and
//! its converse).
//!
//! Run with: `cargo run --release --example scheduler_comparison`

use practically_wait_free::core::{AlgorithmSpec, SchedulerSpec, SimExperiment};

fn describe(name: &str, spec: SchedulerSpec, n: usize) -> Result<(), Box<dyn std::error::Error>> {
    let report = SimExperiment::new(AlgorithmSpec::Scu { q: 0, s: 1 }, n, 200_000)
        .scheduler(spec.clone())
        .seed(42)
        .run()?;
    let starved = report
        .process_completions
        .iter()
        .filter(|&&c| c == 0)
        .count();
    println!(
        "{:<22} θ={:<8.4} completions/process: min={:<8} max={:<8} starved={} maximal-progress bound: {}",
        name,
        spec.theta(n),
        report.process_completions.iter().min().unwrap(),
        report.process_completions.iter().max().unwrap(),
        starved,
        match report.maximal_progress_bound {
            Some(b) => format!("{b} steps"),
            None => "NONE (not wait-free here)".into(),
        }
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 8;
    println!("SCU(0,1), n = {n}, 200k steps under different schedulers:\n");
    describe("uniform stochastic", SchedulerSpec::Uniform, n)?;
    describe(
        "lottery 8:1 skew",
        SchedulerSpec::Lottery(vec![8, 1, 1, 1, 1, 1, 1, 1]),
        n,
    )?;
    describe("sticky (p = 0.9)", SchedulerSpec::Sticky(0.9), n)?;
    describe(
        "round-robin adversary",
        SchedulerSpec::Adversarial((0..n).collect()),
        n,
    )?;
    println!(
        "\nEvery θ > 0 scheduler delivers maximal progress (wait-free behaviour);\n\
         the θ = 0 adversary keeps the algorithm merely lock-free: one process\n\
         wins every round and the rest starve — yet *some* operation always\n\
         completes (minimal progress), which is the lock-freedom guarantee."
    );
    Ok(())
}
