//! The fetch-and-increment counter of Section 7, end to end:
//! exact global-chain latency, the `Z(n−1)` recurrence and its
//! Ramanujan asymptotics, a simulated run, and a run on the real
//! hardware counter of this machine.
//!
//! Run with: `cargo run --release --example lock_free_counter`

use practically_wait_free::algorithms::chains::fai;
use practically_wait_free::core::{AlgorithmSpec, SimExperiment};
use practically_wait_free::hardware::fai_counter::FaiCounter;
use practically_wait_free::theory::ramanujan::{sqrt_pi_n_over_2, z_worst};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Fetch-and-increment (Algorithm 5): model-side latencies");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12}",
        "n", "W (chain)", "W (sim)", "Z(n−1)", "√(πn/2)"
    );
    for n in [2usize, 4, 8, 16, 32] {
        let w_chain = fai::exact_system_latency(n)?;
        let sim = SimExperiment::new(AlgorithmSpec::FetchAndInc, n, 400_000)
            .seed(7)
            .run()?;
        let w_sim = sim.system_latency.expect("counter always advances");
        println!(
            "{:>6} {:>12.4} {:>12.4} {:>12.4} {:>12.4}",
            n,
            w_chain,
            w_sim,
            z_worst(n),
            sqrt_pi_n_over_2(n)
        );
    }
    println!("\nLemma 12: W ≤ 2√n. In fact W = Z(n−1) exactly — the return time of the");
    println!("win state satisfies the same recurrence — with asymptotics √(πn/2).");

    println!("\nReal hardware (std::sync::atomic, this machine):");
    println!(
        "{:>8} {:>14} {:>16}",
        "threads", "rate (ops/step)", "counter integrity"
    );
    let max_threads = std::thread::available_parallelism()?.get().min(8);
    let mut threads = 1;
    while threads <= max_threads {
        let report = FaiCounter::measure(threads, 200_000);
        let ok = report.final_value == report.total_successes();
        println!(
            "{:>8} {:>14.5} {:>16}",
            threads,
            report.completion_rate(),
            if ok {
                "no lost increments"
            } else {
                "LOST INCREMENTS"
            }
        );
        threads *= 2;
    }
    println!("\nThe rate decays gently (Θ(1/√n) model), far above the 1/n worst case.");
    Ok(())
}
