//! Quickstart: the paper's headline claim in three views.
//!
//! For the scan-validate pattern `SCU(0, 1)` we compute the system
//! latency `W` three independent ways — exact Markov chain, long-run
//! simulation, and the closed-form `Θ(√n)` prediction — and check the
//! fairness identity `W_i = n·W`.
//!
//! Run with: `cargo run --release --example quickstart`

use practically_wait_free::core::chain_analysis::{analyze, ChainFamily};
use practically_wait_free::core::{AlgorithmSpec, SimExperiment};
use practically_wait_free::theory::bounds::ScuPrediction;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("SCU(0,1) under the uniform stochastic scheduler");
    println!(
        "{:>4} {:>12} {:>12} {:>12} {:>10}",
        "n", "W (exact)", "W (sim)", "W (theory)", "W_i/(n·W)"
    );

    for n in [2usize, 3, 4, 5] {
        // Exact: stationary analysis of the system chain, with the
        // individual→system lifting verified along the way.
        let exact = analyze(ChainFamily::Scu01, n)?;

        // Simulated: 400k scheduler steps of the real state machines.
        let sim = SimExperiment::new(AlgorithmSpec::Scu { q: 0, s: 1 }, n, 400_000)
            .seed(1)
            .run()?;
        let w_sim = sim.system_latency.expect("long run always completes ops");

        // Closed form: q + α·s·√n with α calibrated to n = 2.
        let alpha = (analyze(ChainFamily::Scu01, 2)?.system_latency) / (2.0f64).sqrt();
        let theory = ScuPrediction::with_alpha(0, 1, n, alpha).system_latency();

        println!(
            "{:>4} {:>12.4} {:>12.4} {:>12.4} {:>10.4}",
            n,
            exact.system_latency,
            w_sim,
            theory,
            exact.fairness_identity(),
        );
    }

    println!();
    println!("Larger n — exact system chain up to n = 64, then the step-equivalent");
    println!("balls-into-bins game (Section 6.1.3) as a Monte-Carlo estimator:");
    println!("{:>6} {:>12} {:>10} {:>10}", "n", "W", "W/√n", "method");
    for n in [16usize, 64] {
        let w = practically_wait_free::algorithms::chains::scu::exact_system_latency(n)?;
        println!(
            "{:>6} {:>12.4} {:>10.4} {:>10}",
            n,
            w,
            w / (n as f64).sqrt(),
            "chain"
        );
    }
    use pwf_rng::SeedableRng;
    let mut rng = pwf_rng::rngs::StdRng::seed_from_u64(2);
    for n in [256usize, 1024, 4096] {
        let w = practically_wait_free::ballsbins::game::mean_phase_length(n, 200, 5_000, &mut rng);
        println!(
            "{:>6} {:>12.4} {:>10.4} {:>10}",
            n,
            w,
            w / (n as f64).sqrt(),
            "game"
        );
    }
    println!("\nW/√n is flat: system latency is Θ(√n), not Θ(n) — Theorem 5.");
    Ok(())
}
