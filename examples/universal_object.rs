//! The universal construction: ANY sequential object made lock-free
//! with one CAS, priced by the paper's Theorem 4.
//!
//! We wrap a sequential bank account, run it under several schedulers,
//! and check the measured latency against the `SCU(q, 1)` prediction
//! with `q` = the state copy cost.
//!
//! Run with: `cargo run --release --example universal_object`

use practically_wait_free::algorithms::universal::{
    BankAccount, BankOp, UniversalObject, UniversalProcess,
};
use practically_wait_free::sim::executor::{run, RunConfig};
use practically_wait_free::sim::memory::SharedMemory;
use practically_wait_free::sim::process::{Process, ProcessId};
use practically_wait_free::sim::scheduler::UniformScheduler;
use practically_wait_free::sim::stats::system_latency;
use practically_wait_free::theory::bounds::ScuPrediction;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("A sequential bank account made lock-free by copy-modify-CAS");
    println!("(Herlihy's universal construction = SCU(q, 1), Section 5).\n");

    println!(
        "{:>4} {:>12} {:>14} {:>12} {:>12}",
        "n", "ops done", "final balance", "W measured", "W predicted"
    );
    for n in [2usize, 4, 8, 16] {
        let mut mem = SharedMemory::new();
        let obj = UniversalObject::new(&mut mem, BankAccount { balance: 0 });
        let mut ps: Vec<Box<dyn Process>> = (0..n)
            .map(|i| {
                let script = vec![BankOp::Deposit(10), BankOp::Withdraw(10), BankOp::Balance];
                Box::new(UniversalProcess::new(
                    ProcessId::new(i),
                    obj.clone(),
                    script,
                )) as Box<dyn Process>
            })
            .collect();
        let exec = run(
            &mut ps,
            &mut UniformScheduler::new(),
            &mut mem,
            &RunConfig::new(300_000).seed(19),
        );
        let w = system_latency(&exec).unwrap().mean;
        // q = copy cost (2 for BankAccount), α calibrated ≈ 1.9.
        let pred = ScuPrediction::with_alpha(2, 1, n, 1.9).system_latency();
        println!(
            "{:>4} {:>12} {:>14} {:>12.3} {:>12.3}",
            n,
            exec.total_completions(),
            obj.current_state().balance,
            w,
            pred
        );
        assert_eq!(obj.committed_ops(), exec.total_completions());
    }

    println!(
        "\nEvery committed operation was replayed on a sequential shadow object —\n\
         any linearizability violation would have panicked. The measured latency\n\
         tracks q + α√n: the paper's bound prices *every* object built this way,\n\
         which is what 'universal' buys you."
    );
    Ok(())
}
