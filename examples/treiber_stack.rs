//! The Treiber stack two ways: the simulated `SCU`-shaped model with
//! built-in linearizability checking, and the real lock-free stack on
//! this machine's atomics with a per-operation latency histogram —
//! the measurement that motivates the whole paper (most operations
//! are fast; the adversarial worst case never shows up).
//!
//! Run with: `cargo run --release --example treiber_stack`

use practically_wait_free::core::{AlgorithmSpec, SimExperiment};
use practically_wait_free::hardware::latency::measure_stack_op_latency;
use practically_wait_free::hardware::treiber::TreiberStack;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Simulated Treiber stack under the uniform stochastic scheduler:");
    println!(
        "{:>4} {:>14} {:>14} {:>10}",
        "n", "ops completed", "W (sys steps)", "fairness"
    );
    for n in [2usize, 4, 8] {
        let report = SimExperiment::new(AlgorithmSpec::TreiberStack, n, 300_000)
            .seed(5)
            .run()?;
        println!(
            "{:>4} {:>14} {:>14.2} {:>10.3}",
            n,
            report.total_completions,
            report.system_latency.unwrap(),
            report.fairness_ratio()
        );
    }
    println!("(every pop is checked against a sequential shadow stack — a failed");
    println!(" linearizability check would have panicked)");

    println!("\nReal lock-free stack, sanity check:");
    let stack = TreiberStack::with_capacity(1024);
    for v in 0..10u64 {
        stack.push(v)?;
    }
    let mut popped = Vec::new();
    while let Some(v) = stack.pop() {
        popped.push(v);
    }
    println!("pushed 0..10, popped {popped:?} (LIFO)");

    let threads = std::thread::available_parallelism()?.get().min(8);
    println!("\nPer-operation latency histogram ({threads} threads, 50k push/pop pairs each):");
    let h = measure_stack_op_latency(threads, 50_000);
    println!("{:>12} {:>12}", "≥ ns", "count");
    for (lower, count) in h.non_empty_buckets() {
        println!("{:>12} {:>12}", lower, count);
    }
    println!(
        "\nmedian ≤ {} ns, p99.9 ≤ {} ns, max {} ns over {} ops — the heavy-tail\n\
         adversarial executions allowed by lock-freedom are vanishingly rare in\n\
         practice, which is the phenomenon the paper's model explains.",
        h.quantile_upper_bound(0.5),
        h.quantile_upper_bound(0.999),
        h.max_ns(),
        h.count()
    );
    Ok(())
}
