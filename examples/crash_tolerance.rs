//! Crash-failures end to end: Corollary 2 (the latency bounds hold
//! with `k` correct processes in place of `n`), lock-free resilience,
//! and the blocking counterexample.
//!
//! Run with: `cargo run --release --example crash_tolerance`

use practically_wait_free::core::{AlgorithmSpec, SimExperiment};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Corollary 2 — crash n−k of n processes at t = 1000, SCU(0,1):");
    println!(
        "{:>4} {:>4} {:>14} {:>16}",
        "n", "k", "W (with crashes)", "W (k crash-free)"
    );
    for (n, k) in [(8usize, 2usize), (16, 4), (32, 8), (64, 16)] {
        let mut exp = SimExperiment::new(AlgorithmSpec::Scu { q: 0, s: 1 }, n, 500_000).seed(3);
        for p in k..n {
            exp = exp.crash(1_000, p);
        }
        let crashed = exp.run()?.system_latency.unwrap();
        let baseline = SimExperiment::new(AlgorithmSpec::Scu { q: 0, s: 1 }, k, 500_000)
            .seed(3)
            .run()?
            .system_latency
            .unwrap();
        println!("{:>4} {:>4} {:>14.4} {:>16.4}", n, k, crashed, baseline);
    }
    println!("\nAfter the crashes the system behaves exactly like a k-process system:");
    println!("O(q + s·√k), because the stationary regime only sees live processes.\n");

    println!("Resilience comparison — crash one process at t = 1000, n = 4, 100k steps:");
    println!(
        "{:>16} {:>12} {:>30}",
        "algorithm", "total ops", "worst post-crash gap (steps)"
    );
    for spec in [
        AlgorithmSpec::Scu { q: 0, s: 1 },
        AlgorithmSpec::FetchAndInc,
        AlgorithmSpec::TreiberStack,
        AlgorithmSpec::MsQueue,
        AlgorithmSpec::LockCounter { cs_len: 2 },
    ] {
        let name = spec.name();
        let r = SimExperiment::new(spec, 4, 100_000)
            .seed(2) // a seed where the crash catches the lock held
            .crash(1_000, 0)
            .run()?;
        println!(
            "{:>16} {:>12} {:>30}",
            name,
            r.total_completions,
            r.minimal_progress_bound
                .map_or("∞ (deadlock)".to_string(), |b| b.to_string())
        );
    }
    println!(
        "\nEvery non-blocking algorithm keeps a small worst gap between completions\n\
         (minimal progress is unconditional); the lock-based counter deadlocks\n\
         whenever the crash catches the holder inside the critical section."
    );
    Ok(())
}
