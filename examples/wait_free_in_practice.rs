//! Theorem 3 and its necessary hypothesis, executed.
//!
//! 1. Bounded lock-free + stochastic scheduler ⇒ wait-free behaviour
//!    (maximal progress), with the generic `(1/θ)^T` bound shown to be
//!    astronomically loose next to what actually happens.
//! 2. Lemma 2: drop the *bounded* hypothesis (Algorithm 1's growing
//!    backoff) and wait-freedom genuinely fails — one process wins
//!    forever, even under the fair uniform scheduler.
//!
//! Run with: `cargo run --release --example wait_free_in_practice`

use practically_wait_free::core::progress_audit::audit;
use practically_wait_free::core::{AlgorithmSpec, SchedulerSpec, SimExperiment};
use practically_wait_free::theory::bounds::theorem_3_bound;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 8;
    println!("1) Bounded lock-free algorithm (SCU(0,1)), uniform scheduler, n = {n}:");
    let report = audit(
        AlgorithmSpec::Scu { q: 0, s: 1 },
        SchedulerSpec::Uniform,
        n,
        500_000,
        3,
    )?;
    println!(
        "   observed minimal-progress bound T = {:?}",
        report.minimal_bound
    );
    println!(
        "   observed maximal-progress bound   = {:?}",
        report.maximal_bound
    );
    println!(
        "   wait-free in practice? {}",
        if report.achieved_maximal_progress() {
            "YES"
        } else {
            "no"
        }
    );
    if let Some(t) = report.minimal_bound {
        let generic = theorem_3_bound(1.0 / n as f64, t.min(300) as u32);
        println!(
            "   Theorem 3 generic bound (1/θ)^T = {:.2e} steps — correct but useless; the chain analysis gives O(√n)",
            generic
        );
    }

    println!("\n2) Lemma 2: the UNBOUNDED lock-free algorithm (Algorithm 1), same scheduler:");
    let sim = SimExperiment::new(AlgorithmSpec::Unbounded, n, 500_000)
        .seed(9)
        .run()?;
    println!("   per-process completions: {:?}", sim.process_completions);
    let winners = sim.process_completions.iter().filter(|&&c| c > 0).count();
    let max = sim.process_completions.iter().max().unwrap();
    let total: u64 = sim.process_completions.iter().sum();
    println!(
        "   {} of {} processes ever completed; the top process took {:.1}% of wins",
        winners,
        n,
        100.0 * *max as f64 / total as f64
    );
    println!(
        "   minimal progress held (total {} ops) but maximal progress bound = {:?}",
        sim.total_completions, sim.maximal_progress_bound
    );
    println!("\nThe 'bounded' hypothesis in Theorem 3 is necessary, not cosmetic.");
    Ok(())
}
