//! Offline shim for the `criterion` bench harness.
//!
//! Implements the API subset the `pwf-bench` targets use — benchmark
//! groups, `bench_with_input`, throughput annotation — backed by a
//! plain warm-up + timing loop that prints mean and minimum iteration
//! time. No outlier analysis, no HTML reports, no baselines; swap the
//! workspace dependency back to the registry crate for those (see
//! `vendor/README.md`).

use std::fmt;
use std::time::{Duration, Instant};

/// Benchmark identifier, displayed as `group/id`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Just the parameter, for groups benching one function over a
    /// parameter sweep.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Work per iteration, used to report element/byte rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times one benchmark body.
pub struct Bencher {
    samples: usize,
    warm_up: Duration,
    recorded: Vec<Duration>,
}

impl Bencher {
    /// Runs `body` repeatedly: warm-up for the configured time, then
    /// `sample_size` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let warm_up_start = Instant::now();
        while warm_up_start.elapsed() < self.warm_up {
            std::hint::black_box(body());
        }
        self.recorded.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(body());
            self.recorded.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_secs_f64() * 1e9;
    if nanos < 1e3 {
        format!("{nanos:.1} ns")
    } else if nanos < 1e6 {
        format!("{:.2} µs", nanos / 1e3)
    } else if nanos < 1e9 {
        format!("{:.2} ms", nanos / 1e6)
    } else {
        format!("{:.3} s", nanos / 1e9)
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up wall time before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Accepted for API compatibility; the shim's measurement length
    /// is `sample_size` iterations, not a wall-time target.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with per-iteration work.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benches `body` with `input` under `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            warm_up: self.warm_up,
            recorded: Vec::new(),
        };
        body(&mut bencher, input);
        self.report(&id, &bencher.recorded);
        self
    }

    /// Benches `body` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            warm_up: self.warm_up,
            recorded: Vec::new(),
        };
        body(&mut bencher);
        self.report(&id, &bencher.recorded);
        self
    }

    fn report(&self, id: &BenchmarkId, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{id}: no samples recorded", self.name);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = *samples.iter().min().expect("non-empty");
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  ({:.3e} elem/s)", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) => {
                format!("  ({:.3e} B/s)", n as f64 / mean.as_secs_f64())
            }
            None => String::new(),
        };
        println!(
            "{}/{id}: mean {} min {} ({} samples){rate}",
            self.name,
            fmt_duration(mean),
            fmt_duration(min),
            samples.len()
        );
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The bench harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility; the shim has no CLI options.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(200),
            throughput: None,
            _criterion: self,
        }
    }

    /// Benches `body` outside any group.
    pub fn bench_function<F>(&mut self, id: &str, body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = BenchmarkGroup {
            name: String::new(),
            sample_size: 10,
            warm_up: Duration::from_millis(200),
            throughput: None,
            _criterion: self,
        };
        group.name = "bench".into();
        group.bench_function(id, body);
        self
    }

    /// Prints the end-of-run marker.
    pub fn final_summary(&self) {
        println!("criterion-shim: run complete (offline harness, no statistics)");
    }
}

/// Prevents the optimizer from removing a value. Re-exported because
/// criterion users import it from here.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a bench group function that runs each registered bench.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::Criterion::default().configure_from_args().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1));
        group.throughput(Throughput::Elements(10));
        for n in [1u64, 2] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
        }
        group.bench_function("named", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn group_macro_and_timing_loop_run() {
        benches();
        Criterion::default().configure_from_args().final_summary();
    }
}
