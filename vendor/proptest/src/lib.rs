//! Offline shim for the `proptest` property-testing framework.
//!
//! Implements the API subset the suites under `tests/` use: the
//! [`proptest!`] macro, composable [`strategy::Strategy`] values
//! (ranges, tuples, `Just`, `prop_map`, `prop_flat_map`,
//! `prop_oneof!`, `prop::collection::vec`), and the `prop_assert*`
//! macros. Values are generated deterministically per test name and
//! case index from the workspace PRNG (`pwf-rng`), so failures
//! reproduce exactly on re-run.
//!
//! Deliberately missing versus the real crate: shrinking (a failing
//! case is reported as-is, not minimized), failure persistence, and
//! `any::<T>()`. Swap the workspace dependency back to the registry
//! crate for those (see `vendor/README.md`).

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use pwf_rng::Rng;

    /// Generates values of type [`Strategy::Value`] from a seeded RNG.
    ///
    /// Unlike real proptest there is no value tree: generation is
    /// direct and nothing shrinks.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `map`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, map }
        }

        /// Generates a value, then generates from the strategy it
        /// maps to.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, map: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, map }
        }

        /// Type-erases the strategy (used by `prop_oneof!` to unify
        /// heterogeneous arms).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<T: pwf_rng::SampleUniform> Strategy for std::ops::Range<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        map: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.map)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Uniform choice between type-erased arms (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union of the given arms; panics if empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let arm = rng.gen_range(0..self.arms.len());
            self.arms[arm].generate(rng)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A: 0);
    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use pwf_rng::Rng;

    /// Element counts for [`vec`]: an exact `usize` or a
    /// `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Generates `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Case scheduling: per-test deterministic RNG streams.

    /// The RNG handed to strategies.
    pub type TestRng = pwf_rng::rngs::StdRng;

    /// How many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    fn fnv1a(text: &str) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in text.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// The RNG for one case of one property: seeded from the test
    /// name and case index, so every run generates the same inputs.
    pub fn rng_for(test_name: &str, case: u32) -> TestRng {
        use pwf_rng::SeedableRng;
        TestRng::seed_from_u64(
            fnv1a(test_name) ^ (u64::from(case) << 1 | 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` path used by `prop::collection::vec(...)`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests: each `fn` runs `cases` times with inputs
/// drawn from its strategies. No shrinking — a failing case panics
/// with the generated inputs unminimized.
#[macro_export]
macro_rules! proptest {
    (@with ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut prop_rng = $crate::test_runner::rng_for(stringify!($name), case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut prop_rng);)*
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` under a proptest-compatible name (no shrinking, so this
/// is a plain assertion).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between strategies that generate the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Token {
        Num(u64),
        Stop,
    }

    fn arb_tokens() -> impl Strategy<Value = Vec<Token>> {
        collection::vec(
            prop_oneof![(0u64..100).prop_map(Token::Num), Just(Token::Stop)],
            1..10,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -5i64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn tuples_and_maps_compose(pair in (1usize..4, 10u64..20).prop_map(|(a, b)| (a, b + 1))) {
            prop_assert!(pair.0 >= 1 && pair.0 < 4);
            prop_assert!(pair.1 >= 11 && pair.1 < 21);
        }

        #[test]
        fn flat_map_uses_outer_value(v in (2usize..6).prop_flat_map(|n| collection::vec(0u64..10, n))) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn oneof_collections_generate(tokens in arb_tokens()) {
            prop_assert!(!tokens.is_empty() && tokens.len() < 10);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name_and_case() {
        use crate::strategy::Strategy;
        let strat = (1usize..100, 0u64..1_000_000).prop_map(|(a, b)| (a, b));
        let mut a = crate::test_runner::rng_for("some_test", 7);
        let mut b = crate::test_runner::rng_for("some_test", 7);
        let mut c = crate::test_runner::rng_for("other_test", 7);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        let _ = strat.generate(&mut c);
    }
}
