//! # practically-wait-free
//!
//! A full reproduction of **"Are Lock-Free Concurrent Algorithms
//! Practically Wait-Free?"** by Dan Alistarh, Keren Censor-Hillel, and
//! Nir Shavit (STOC 2014; brief announcement at PODC 2014).
//!
//! The paper's thesis: under scheduling conditions approximating real
//! hardware — modelled as a *stochastic scheduler* that picks every
//! live process with probability at least `θ > 0` each step — a large
//! class of lock-free algorithms behaves as if it were wait-free.
//! Concretely, for the class `SCU(q, s)` of single-CAS-universal
//! algorithms (preamble of `q` steps, scan of `s` registers, one CAS):
//!
//! * **Theorem 3**: any algorithm with *bounded* minimal progress is
//!   maximal-progress (wait-free) with probability 1, with a generic
//!   `(1/θ)^T` expected bound;
//! * **Theorems 4–5**: under the uniform stochastic scheduler the
//!   expected *system latency* is `O(q + s·√n)` and every process's
//!   *individual latency* is exactly `n` times that — proven by
//!   lifting the algorithm's Markov chain onto a small system chain;
//! * **Lemma 2**: the bounded-progress hypothesis is necessary — an
//!   unbounded lock-free algorithm exists that is not wait-free w.h.p.
//!
//! This workspace implements every layer from scratch:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`pwf_markov`] | chains, stationary distributions, hitting times, ergodic flow, **lifting verification** |
//! | [`pwf_sim`] | discrete-time shared-memory simulator, Definition 1 schedulers, crash schedules, progress/latency measurement |
//! | [`pwf_algorithms`] | Algorithms 1–5 (`SCU(q,s)`, parallel code, fetch-and-increment, unbounded backoff), simulated Treiber stack and RCU, exact chain constructions |
//! | [`pwf_ballsbins`] | the iterated balls-into-bins game of Section 6.1.3 |
//! | [`pwf_theory`] | Ramanujan Q / `Z(i)` recurrence, birthday bounds, latency and completion-rate predictions |
//! | [`pwf_hardware`] | real-atomics Treiber stack, Michael–Scott queue, FAI counter, schedule recorders (Appendix A/B) |
//! | [`pwf_obs`] | zero-dependency tracing + metrics: ticket-ordered event rings, log2 histograms with quantiles, Perfetto export |
//! | [`pwf_core`] | one-call experiment drivers combining all of the above |
//!
//! # Quickstart
//!
//! ```
//! use practically_wait_free::core::chain_analysis::{analyze, ChainFamily};
//! use practically_wait_free::core::{AlgorithmSpec, SimExperiment};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Exact: Lemma 7's fairness identity W_i = n·W for SCU(0,1), n=4.
//! let exact = analyze(ChainFamily::Scu01, 4)?;
//! assert!((exact.fairness_identity() - 1.0).abs() < 1e-8);
//!
//! // Simulated: the same system latency, measured over a long run.
//! let sim = SimExperiment::new(AlgorithmSpec::Scu { q: 0, s: 1 }, 4, 100_000).run()?;
//! let w = sim.system_latency.expect("many completions");
//! assert!((w - exact.system_latency).abs() / exact.system_latency < 0.05);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pwf_algorithms as algorithms;
pub use pwf_ballsbins as ballsbins;
pub use pwf_core as core;
pub use pwf_hardware as hardware;
pub use pwf_markov as markov;
pub use pwf_obs as obs;
pub use pwf_sim as sim;
pub use pwf_theory as theory;
