//! The structured result of one experiment: an ordered sequence of
//! output blocks plus run metadata.
//!
//! A [`Report`] captures *exactly* what the historical binaries wrote
//! to stdout — commentary, aligned tables, and free-form lines — but
//! as data, so the same run can be rendered as text (byte-compatible
//! with `results/*.txt`), serialized to JSON, or diffed against a
//! golden file.

/// One unit of experiment output, in emission order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Block {
    /// Commentary, rendered as `# `-prefixed lines (one per line of
    /// the contained text; an empty note renders as nothing, matching
    /// the historical helper).
    Note(String),
    /// One row of 12-character right-aligned columns. Headers are
    /// rows whose cells happen to be labels.
    Row(Vec<String>),
    /// A pre-formatted line emitted verbatim (charts, chain dumps).
    Raw(String),
}

/// The structured result of one experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Registered experiment name (`exp_*` / `fig*`).
    pub name: String,
    /// The derived seed the experiment ran with.
    pub seed: u64,
    /// Wall-clock duration of the run, in milliseconds.
    pub wall_time_ms: f64,
    /// Named parameters the run was configured with (profile, counts,
    /// thread budgets, …), in insertion order.
    pub params: Vec<(String, String)>,
    /// The output blocks, in emission order.
    pub blocks: Vec<Block>,
}

impl Report {
    /// An empty report with metadata only.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        Report {
            name: name.into(),
            seed,
            wall_time_ms: 0.0,
            params: Vec::new(),
            blocks: Vec::new(),
        }
    }

    /// The value of a named parameter, if recorded.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Structural equality ignoring wall time — the notion of
    /// "identical result" used by determinism tests and golden
    /// checking (wall time varies run to run by construction).
    pub fn same_output(&self, other: &Report) -> bool {
        self.name == other.name
            && self.seed == other.seed
            && self.params == other.params
            && self.blocks == other.blocks
    }
}

/// Incremental [`Report`] construction; the experiment-facing API.
///
/// The methods mirror the historical printing helpers (`note`, `row`,
/// `header`) so refactoring a binary into an experiment is mostly
/// `note(...)` → `out.note(...)`.
#[derive(Debug)]
pub struct ReportBuilder {
    report: Report,
}

impl ReportBuilder {
    /// Starts a report for the named experiment.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        ReportBuilder {
            report: Report::new(name, seed),
        }
    }

    /// Records a named parameter.
    pub fn param(&mut self, key: impl Into<String>, value: impl ToString) {
        self.report.params.push((key.into(), value.to_string()));
    }

    /// Appends commentary (rendered `# `-prefixed).
    pub fn note(&mut self, text: &str) {
        self.report.blocks.push(Block::Note(text.to_string()));
    }

    /// Appends a row of aligned columns.
    pub fn row(&mut self, cells: &[String]) {
        self.report.blocks.push(Block::Row(cells.to_vec()));
    }

    /// Appends a header row from static labels.
    pub fn header(&mut self, cells: &[&str]) {
        self.report
            .blocks
            .push(Block::Row(cells.iter().map(|s| s.to_string()).collect()));
    }

    /// Appends a pre-formatted line verbatim.
    pub fn raw(&mut self, line: impl Into<String>) {
        self.report.blocks.push(Block::Raw(line.into()));
    }

    /// Appends many pre-formatted lines (e.g. a rendered chart).
    pub fn raw_lines<I: IntoIterator<Item = String>>(&mut self, lines: I) {
        for line in lines {
            self.raw(line);
        }
    }

    /// Finalizes the report, stamping the measured wall time.
    pub fn finish(mut self, wall_time_ms: f64) -> Report {
        self.report.wall_time_ms = wall_time_ms;
        self.report
    }

    /// Read access to the report under construction (tests).
    pub fn report(&self) -> &Report {
        &self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_preserves_emission_order() {
        let mut b = ReportBuilder::new("demo", 7);
        b.note("hello");
        b.header(&["a", "b"]);
        b.row(&["1".into(), "2".into()]);
        b.raw("free line");
        let r = b.finish(1.5);
        assert_eq!(r.name, "demo");
        assert_eq!(r.seed, 7);
        assert_eq!(r.wall_time_ms, 1.5);
        assert_eq!(
            r.blocks,
            vec![
                Block::Note("hello".into()),
                Block::Row(vec!["a".into(), "b".into()]),
                Block::Row(vec!["1".into(), "2".into()]),
                Block::Raw("free line".into()),
            ]
        );
    }

    #[test]
    fn same_output_ignores_wall_time() {
        let mut a = ReportBuilder::new("x", 1);
        a.note("n");
        let mut b = ReportBuilder::new("x", 1);
        b.note("n");
        let (ra, rb) = (a.finish(1.0), b.finish(99.0));
        assert!(ra.same_output(&rb));
        assert_ne!(ra, rb);
    }

    #[test]
    fn params_are_queryable() {
        let mut b = ReportBuilder::new("x", 1);
        b.param("profile", "full");
        b.param("n", 8);
        let r = b.finish(0.0);
        assert_eq!(r.param("profile"), Some("full"));
        assert_eq!(r.param("n"), Some("8"));
        assert_eq!(r.param("missing"), None);
    }
}
