//! The `pwf` command-line front end: `list`, `run`, `check`, `trace`.
//!
//! The binary itself lives in `pwf-bench` (which owns the experiment
//! registrations); it delegates straight here:
//!
//! ```ignore
//! fn main() {
//!     std::process::exit(pwf_runner::cli::main(registry, args));
//! }
//! ```

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use crate::check::check_report;
use crate::json::Json;
use crate::orchestrator::{run_experiments, ExpOutcome, RunOptions, RunSummary};
use crate::registry::Registry;
use crate::text::{fmt, render};
use crate::DEFAULT_MASTER_SEED;

const USAGE: &str = "\
pwf — parallel experiment runner for the practically-wait-free workspace

USAGE:
    pwf list
        List registered experiments (with last-run wall time when a
        BENCH_runner.json trajectory is present).

    pwf run (--all | NAME...) [OPTIONS]
        Run experiments in parallel and record results.
        --jobs N        worker threads (default: available cores);
                        also budgets each experiment's internal
                        size-sweep fan-out
        --seed S        master seed (default the golden-results seed)
        --fast          reduced-iteration smoke profile
        --timeout SECS  per-experiment budget (default 300)
        --out DIR       results directory (default results/)
        --no-write      do not write any files
        --metrics       print per-experiment counters/gauges/quantiles
        --trace DIR     also write Chrome trace-event JSON (Perfetto)

    pwf check [NAME...] [OPTIONS]
        Re-run deterministic experiments under the golden seed and
        diff against recorded results; exits nonzero on drift.
        --jobs N, --timeout SECS, --out DIR as above.

    pwf trace (--all | NAME...) [OPTIONS]
        Run experiments with tracing on and write one Perfetto-loadable
        trace-event JSON file per experiment (default traces/; override
        with --out DIR). Implies --metrics; results files are not
        touched.

    pwf vet [TARGET...] [OPTIONS]
        Systematic concurrency checking: DPOR schedule exploration,
        linearizability, lock-freedom. `pwf vet --orderings` is a
        compatibility alias for the orderings pass of `pwf lint`.
        See `pwf vet --help`.

    pwf lint [OPTIONS]
        Workspace-wide concurrency static analysis: atomics-ordering,
        progress (unbounded spin/retry), condvar-discipline, and
        unsafe-inventory passes over every crate, gated by per-crate
        fingerprinted lint.allow files. See `pwf lint --help`.

    pwf serve [OPTIONS]
        The latency-prediction service: GET /predict answers from the
        theory, chain, or sim layer through request coalescing, an LRU
        result cache, and load shedding; /metrics and /trace expose
        the pwf-obs counters and request spans. `pwf serve --selftest`
        drives the built-in loadgen. See `pwf serve --help`.

    pwf report [OPTIONS]
        Aggregate BENCH_*.json plus the append-only
        results/bench_history.jsonl into a per-metric trend report
        (delta vs last run and vs best-ever, with tolerance bands).
        `pwf report --check` fails on regression beyond tolerance —
        the CI perf gate; `--record` appends the current metrics as
        the next baseline. See `pwf report --help`.
";

/// The default `--jobs`: every available core. Experiments fan their
/// size sweeps out through [`crate::par::parallel_map`], so idle cores
/// are wasted latency, not safety margin.
fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

struct Args {
    command: String,
    names: Vec<String>,
    all: bool,
    jobs: usize,
    seed: u64,
    fast: bool,
    timeout_secs: u64,
    out: PathBuf,
    out_explicit: bool,
    no_write: bool,
    metrics: bool,
    trace: Option<PathBuf>,
}

fn parse_args(mut argv: Vec<String>) -> Result<Args, String> {
    if argv.is_empty() {
        return Err("missing subcommand".into());
    }
    let command = argv.remove(0);
    let mut args = Args {
        command,
        names: Vec::new(),
        all: false,
        jobs: default_jobs(),
        seed: DEFAULT_MASTER_SEED,
        fast: false,
        timeout_secs: 300,
        out: PathBuf::from("results"),
        out_explicit: false,
        no_write: false,
        metrics: false,
        trace: None,
    };
    let mut it = argv.into_iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--all" => args.all = true,
            "--fast" => args.fast = true,
            "--no-write" => args.no_write = true,
            "--metrics" => args.metrics = true,
            "--trace" => {
                args.trace = Some(PathBuf::from(value_of("--trace")?));
            }
            "--jobs" => {
                args.jobs = value_of("--jobs")?
                    .parse()
                    .map_err(|_| "--jobs needs an integer".to_string())?;
            }
            "--seed" => {
                args.seed = value_of("--seed")?
                    .parse()
                    .map_err(|_| "--seed needs a u64".to_string())?;
            }
            "--timeout" => {
                args.timeout_secs = value_of("--timeout")?
                    .parse()
                    .map_err(|_| "--timeout needs seconds".to_string())?;
            }
            "--out" => {
                args.out = PathBuf::from(value_of("--out")?);
                args.out_explicit = true;
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag {flag}"));
            }
            name => args.names.push(name.to_string()),
        }
    }
    Ok(args)
}

/// Entry point. Returns the process exit code: 0 success, 1 failures
/// or drift, 2 usage errors.
pub fn main(registry: Registry, argv: Vec<String>) -> i32 {
    // `vet` and `lint` own their own flag grammars; hand them the raw
    // argv before the experiment-runner flags are parsed.
    if argv.first().map(String::as_str) == Some("vet") {
        return pwf_checker::cli::main(argv[1..].to_vec());
    }
    if argv.first().map(String::as_str) == Some("lint") {
        return pwf_lint::cli::main(argv[1..].to_vec());
    }
    if argv.first().map(String::as_str) == Some("report") {
        return crate::trend::cli_main(argv[1..].to_vec());
    }
    let args = match parse_args(argv) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return 2;
        }
    };
    let registry = Arc::new(registry);
    match args.command.as_str() {
        "list" => cmd_list(&registry),
        "run" => cmd_run(&registry, &args),
        "check" => cmd_check(&registry, &args),
        "trace" => cmd_trace(&registry, &args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            0
        }
        other => {
            eprintln!("error: unknown subcommand {other:?}\n\n{USAGE}");
            2
        }
    }
}

/// Last-run wall time per experiment, read from the trajectory the
/// previous `pwf run` left behind. Missing or malformed files just
/// mean no column.
fn last_run_wall_ms(path: &Path) -> std::collections::BTreeMap<String, f64> {
    let mut map = std::collections::BTreeMap::new();
    let Ok(text) = std::fs::read_to_string(path) else {
        return map;
    };
    let Ok(doc) = Json::parse(&text) else {
        return map;
    };
    if let Some(exps) = doc.get("experiments").and_then(Json::as_array) {
        for e in exps {
            if let (Some(name), Some(wall)) = (
                e.get("name").and_then(Json::as_str),
                e.get("wall_ms").and_then(Json::as_f64),
            ) {
                map.insert(name.to_string(), wall);
            }
        }
    }
    map
}

fn cmd_list(registry: &Registry) -> i32 {
    let last = last_run_wall_ms(Path::new("BENCH_runner.json"));
    for exp in registry.iter() {
        let kind = if exp.deterministic() {
            "deterministic"
        } else {
            "hardware"
        };
        let wall = match last.get(exp.name()) {
            Some(ms) => format!("{}s", fmt(ms / 1e3)),
            None => "-".to_string(),
        };
        let sizes = if exp.sizes().is_empty() {
            "-"
        } else {
            exp.sizes()
        };
        println!(
            "{:<24} {:<14} {:<16} {:>9}  {}",
            exp.name(),
            kind,
            sizes,
            wall,
            exp.description()
        );
    }
    0
}

fn resolve_names(registry: &Registry, args: &Args) -> Result<Vec<String>, String> {
    if args.all {
        if !args.names.is_empty() {
            return Err("pass either --all or names, not both".into());
        }
        return Ok(registry.names());
    }
    if args.names.is_empty() {
        return Err("no experiments selected (use --all or name them)".into());
    }
    for name in &args.names {
        if registry.get(name).is_none() {
            return Err(format!("unknown experiment {name:?} (see `pwf list`)"));
        }
    }
    Ok(args.names.clone())
}

fn run_options(args: &Args) -> RunOptions {
    RunOptions {
        jobs: args.jobs,
        timeout: Duration::from_secs(args.timeout_secs),
        master_seed: args.seed,
        fast: args.fast,
        metrics: args.metrics,
        trace_dir: args.trace.clone(),
    }
}

fn print_summary(summary: &RunSummary) {
    println!(
        "\n{} experiments, {} passed, {} failed; {} jobs, total {}s",
        summary.runs.len(),
        summary.passed(),
        summary.runs.len() - summary.passed(),
        summary.jobs,
        fmt(summary.total_wall_ms / 1e3),
    );
    for run in &summary.runs {
        let detail = match &run.outcome {
            ExpOutcome::Success(_) => String::new(),
            ExpOutcome::Failed(msg) | ExpOutcome::Panicked(msg) => format!("  ({msg})"),
            ExpOutcome::TimedOut => "  (exceeded --timeout)".into(),
            ExpOutcome::Unknown => "  (not registered)".into(),
        };
        println!(
            "  {:<24} {:<9} {:>9}s{detail}",
            run.name,
            run.outcome.label(),
            fmt(run.wall_ms / 1e3),
        );
    }
}

/// Prints the observability harvest of every run that has one.
fn print_metrics(summary: &RunSummary) {
    for run in &summary.runs {
        let Some(obs) = &run.obs else { continue };
        println!("\nmetrics for {}:", run.name);
        if obs.metrics.is_empty() {
            println!("  (nothing recorded)");
        }
        for line in obs.metrics.render() {
            println!("  {line}");
        }
        if obs.events_recorded > 0 {
            println!(
                "  events  {} recorded, {} dropped to ring wraparound",
                obs.events_recorded, obs.events_dropped
            );
        }
    }
}

/// Writes one Chrome trace-event JSON file per traced run; returns
/// how many were written.
fn write_traces(dir: &Path, summary: &RunSummary) -> std::io::Result<usize> {
    std::fs::create_dir_all(dir)?;
    let mut written = 0;
    for run in &summary.runs {
        let Some(trace) = run.obs.as_ref().and_then(|o| o.trace_json.as_ref()) else {
            continue;
        };
        std::fs::write(dir.join(format!("{}.trace.json", run.name)), trace)?;
        written += 1;
    }
    Ok(written)
}

fn cmd_run(registry: &Arc<Registry>, args: &Args) -> i32 {
    let names = match resolve_names(registry, args) {
        Ok(names) => names,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return 2;
        }
    };
    // Never clobber the full-profile golden results with a fast run:
    // fast output goes nowhere unless an explicit --out says where.
    let write = if args.no_write {
        false
    } else if args.fast && !args.out_explicit {
        eprintln!(
            "note: --fast without --out does not overwrite {} (smoke profile)",
            args.out.display()
        );
        false
    } else {
        true
    };

    let summary = run_experiments(registry, &names, &run_options(args));
    print_summary(&summary);
    if args.metrics {
        print_metrics(&summary);
    }
    if let Some(dir) = &args.trace {
        match write_traces(dir, &summary) {
            Ok(written) => println!("wrote {} trace files under {}", written, dir.display()),
            Err(err) => {
                eprintln!("error: writing traces: {err}");
                return 1;
            }
        }
    }

    if write {
        if let Err(err) = write_outputs(&args.out, &summary) {
            eprintln!("error: writing results: {err}");
            return 1;
        }
        println!(
            "wrote {} text + JSON reports under {}",
            summary.passed(),
            args.out.display()
        );
    }
    if let Err(err) = write_trajectory(Path::new("BENCH_runner.json"), &summary) {
        eprintln!("error: writing BENCH_runner.json: {err}");
        return 1;
    }
    i32::from(!summary.all_passed())
}

fn write_outputs(out_dir: &Path, summary: &RunSummary) -> std::io::Result<()> {
    let json_dir = out_dir.join("json");
    std::fs::create_dir_all(&json_dir)?;
    for run in &summary.runs {
        if let ExpOutcome::Success(report) = &run.outcome {
            std::fs::write(out_dir.join(format!("{}.txt", run.name)), render(report))?;
            std::fs::write(
                json_dir.join(format!("{}.json", run.name)),
                report.to_json().render(),
            )?;
        }
    }
    Ok(())
}

/// Writes the timing trajectory of the run — when each experiment
/// started and how long it took, i.e. the realized parallel schedule,
/// plus trace event volumes when observability was on.
fn write_trajectory(path: &Path, summary: &RunSummary) -> std::io::Result<()> {
    let experiments = summary
        .runs
        .iter()
        .map(|run| {
            let mut fields = vec![
                ("name".into(), Json::Str(run.name.clone())),
                ("outcome".into(), Json::Str(run.outcome.label().into())),
                ("started_ms".into(), Json::Num(run.started_ms)),
                ("wall_ms".into(), Json::Num(run.wall_ms)),
            ];
            if let Some(obs) = &run.obs {
                fields.push((
                    "events_recorded".into(),
                    Json::Int(obs.events_recorded as i128),
                ));
                fields.push((
                    "events_dropped".into(),
                    Json::Int(obs.events_dropped as i128),
                ));
            }
            Json::Obj(fields)
        })
        .collect();
    let doc = Json::Obj(vec![
        ("benchmark".into(), Json::Str("pwf-runner".into())),
        ("jobs".into(), Json::Int(summary.jobs as i128)),
        ("master_seed".into(), Json::Int(summary.master_seed as i128)),
        ("total_wall_ms".into(), Json::Num(summary.total_wall_ms)),
        ("experiments".into(), Json::Arr(experiments)),
    ]);
    std::fs::write(path, doc.render())
}

/// `pwf trace`: run with event tracing on and write one Perfetto
/// trace per experiment. A diagnostic run — golden results files are
/// never touched.
fn cmd_trace(registry: &Arc<Registry>, args: &Args) -> i32 {
    let names = match resolve_names(registry, args) {
        Ok(names) => names,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return 2;
        }
    };
    let dir = if args.out_explicit {
        args.out.clone()
    } else {
        PathBuf::from("traces")
    };
    let mut opts = run_options(args);
    opts.metrics = true;
    opts.trace_dir = Some(dir.clone());

    let summary = run_experiments(registry, &names, &opts);
    print_summary(&summary);
    print_metrics(&summary);
    match write_traces(&dir, &summary) {
        Ok(written) => println!(
            "\nwrote {} trace files under {} (load in ui.perfetto.dev or chrome://tracing)",
            written,
            dir.display()
        ),
        Err(err) => {
            eprintln!("error: writing traces: {err}");
            return 1;
        }
    }
    i32::from(!summary.all_passed())
}

fn cmd_check(registry: &Arc<Registry>, args: &Args) -> i32 {
    let requested = if args.all || !args.names.is_empty() {
        match resolve_names(registry, args) {
            Ok(names) => names,
            Err(msg) => {
                eprintln!("error: {msg}\n\n{USAGE}");
                return 2;
            }
        }
    } else {
        registry.names()
    };
    // Only deterministic experiments can be diffed against goldens.
    let (names, skipped): (Vec<_>, Vec<_>) = requested
        .into_iter()
        .partition(|n| registry.get(n).map(|e| e.deterministic()).unwrap_or(false));
    for name in &skipped {
        println!("  {name:<24} skipped   (hardware-dependent output)");
    }

    // Golden results are recorded under the default master seed; an
    // overridden seed would always drift, so check pins it.
    let mut opts = run_options(args);
    opts.master_seed = DEFAULT_MASTER_SEED;
    opts.fast = false;
    let summary = run_experiments(registry, &names, &opts);

    let mut drifted = 0usize;
    for run in &summary.runs {
        match &run.outcome {
            ExpOutcome::Success(report) => {
                let golden_path = args.out.join(format!("{}.txt", run.name));
                let golden = std::fs::read_to_string(&golden_path).ok();
                match check_report(golden.as_deref(), report) {
                    None => println!("  {:<24} ok", run.name),
                    Some(drift) => {
                        drifted += 1;
                        println!("  {:<24} DRIFT     {drift}", run.name);
                    }
                }
            }
            outcome => {
                drifted += 1;
                println!("  {:<24} {}", run.name, outcome.label());
            }
        }
    }
    println!(
        "\nchecked {} experiments against {}: {} drifted, {} skipped",
        summary.runs.len(),
        args.out.display(),
        drifted,
        skipped.len()
    );
    i32::from(drifted > 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_run_flags() {
        let args = parse_args(argv(&[
            "run",
            "--all",
            "--jobs",
            "4",
            "--seed",
            "9",
            "--fast",
            "--timeout",
            "60",
        ]))
        .unwrap();
        assert_eq!(args.command, "run");
        assert!(args.all && args.fast);
        assert_eq!((args.jobs, args.seed, args.timeout_secs), (4, 9, 60));
    }

    #[test]
    fn parse_rejects_unknown_flags_and_missing_values() {
        assert!(parse_args(argv(&["run", "--bogus"])).is_err());
        assert!(parse_args(argv(&["run", "--jobs"])).is_err());
        assert!(parse_args(argv(&["run", "--trace"])).is_err());
        assert!(parse_args(argv(&[])).is_err());
    }

    #[test]
    fn parse_observability_flags() {
        let args = parse_args(argv(&["run", "--all", "--metrics", "--trace", "tr"])).unwrap();
        assert!(args.metrics);
        assert_eq!(args.trace, Some(PathBuf::from("tr")));
        let args = parse_args(argv(&["trace", "exp_a"])).unwrap();
        assert_eq!(args.command, "trace");
        assert_eq!(args.names, vec!["exp_a"]);
    }

    #[test]
    fn jobs_defaults_to_available_parallelism() {
        let args = parse_args(argv(&["run", "--all"])).unwrap();
        assert_eq!(args.jobs, default_jobs());
        assert!(args.jobs >= 1);
    }

    #[test]
    fn names_are_positional() {
        let args = parse_args(argv(&["check", "exp_a", "exp_b"])).unwrap();
        assert_eq!(args.names, vec!["exp_a", "exp_b"]);
    }
}
