//! The aligned-text renderer — the one formatting path shared by the
//! refactored binaries, the `pwf` CLI, and golden-file checking.
//!
//! The format is the workspace's historical stdout convention:
//! `# `-prefixed commentary lines, rows of 12-character right-aligned
//! columns joined by single spaces, and verbatim free-form lines.
//! [`render`] reproduces a [`Report`]'s blocks byte-for-byte as the
//! old binaries printed them, which is what makes `results/*.txt`
//! diffable against fresh runs.
//!
//! The printing helpers ([`note`], [`row`], [`header`]) and the float
//! formatter [`fmt`] moved here from `pwf-bench`'s crate root and are
//! re-exported there unchanged.

use crate::report::{Block, Report};

/// Formats a float for tabular output: `0` for zero, scientific for
/// magnitudes outside `[1e-3, 1e4)`, else four decimals.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1e4 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

/// Renders one row of 12-character right-aligned columns.
pub fn row_line(cells: &[String]) -> String {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>12}")).collect();
    line.join(" ")
}

/// Renders commentary: one `# `-prefixed line per line of `text`
/// (empty text renders no lines, matching the historical helper).
pub fn note_lines(text: &str) -> Vec<String> {
    text.lines().map(|line| format!("# {line}")).collect()
}

/// Prints a commentary line (prefixed `# `) so tabular output stays
/// machine-separable.
pub fn note(text: &str) {
    for line in note_lines(text) {
        println!("{line}");
    }
}

/// Prints one row of aligned columns (12 chars each).
pub fn row(cells: &[String]) {
    println!("{}", row_line(cells));
}

/// Convenience: a header row from static labels.
pub fn header(cells: &[&str]) {
    row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>());
}

/// Renders a report's blocks as the historical stdout text (trailing
/// newline included; metadata is *not* rendered — it lives in the JSON
/// side so the text stays byte-compatible with recorded results).
pub fn render(report: &Report) -> String {
    let mut out = String::new();
    for block in &report.blocks {
        match block {
            Block::Note(text) => {
                for line in note_lines(text) {
                    out.push_str(&line);
                    out.push('\n');
                }
            }
            Block::Row(cells) => {
                out.push_str(&row_line(cells));
                out.push('\n');
            }
            Block::Raw(line) => {
                out.push_str(line);
                out.push('\n');
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ReportBuilder;

    #[test]
    fn fmt_switches_notation() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1.5), "1.5000");
        assert_eq!(fmt(123456.0), "1.235e5");
        assert_eq!(fmt(0.0001), "1.000e-4");
    }

    #[test]
    fn render_matches_historical_format() {
        let mut b = ReportBuilder::new("demo", 1);
        b.note("E0 / a demo.");
        b.header(&["n", "W"]);
        b.row(&["4".into(), fmt(1.5)]);
        b.note("");
        b.raw("  custom line");
        let text = render(&b.finish(0.0));
        assert_eq!(
            text,
            "# E0 / a demo.\n\
             \x20          n            W\n\
             \x20          4       1.5000\n\
             \x20 custom line\n"
        );
    }

    #[test]
    fn empty_note_renders_nothing_multiline_note_prefixes_each() {
        assert!(note_lines("").is_empty());
        assert_eq!(note_lines("a\nb"), vec!["# a", "# b"]);
    }
}
