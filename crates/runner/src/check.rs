//! Golden-file regression checking: a fresh report rendered to text
//! and diffed line-by-line against the recorded `results/*.txt`.

use crate::report::Report;
use crate::text::render;

/// The first divergence between a fresh run and its golden file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Drift {
    /// No golden file is recorded for this experiment.
    MissingGolden,
    /// Line `line` (1-based) differs.
    Line {
        /// 1-based line number of the first difference.
        line: usize,
        /// The golden file's line (`None` if the fresh output is
        /// longer).
        expected: Option<String>,
        /// The fresh run's line (`None` if the golden file is
        /// longer).
        actual: Option<String>,
    },
}

impl std::fmt::Display for Drift {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Drift::MissingGolden => write!(f, "no golden file recorded"),
            Drift::Line {
                line,
                expected,
                actual,
            } => {
                let show = |s: &Option<String>| match s {
                    Some(s) => format!("{s:?}"),
                    None => "<end of output>".to_string(),
                };
                write!(
                    f,
                    "line {line}: golden {} vs fresh {}",
                    show(expected),
                    show(actual)
                )
            }
        }
    }
}

/// Compares fresh text against golden text; `None` means identical.
pub fn check_text(golden: &str, fresh: &str) -> Option<Drift> {
    if golden == fresh {
        return None;
    }
    let mut golden_lines = golden.lines();
    let mut fresh_lines = fresh.lines();
    let mut line = 0usize;
    loop {
        line += 1;
        match (golden_lines.next(), fresh_lines.next()) {
            (None, None) => {
                // Same lines but unequal strings: trailing-newline or
                // line-ending drift. Report it at the end.
                return Some(Drift::Line {
                    line,
                    expected: None,
                    actual: Some("<line-ending difference>".into()),
                });
            }
            (g, a) => {
                if g != a {
                    return Some(Drift::Line {
                        line,
                        expected: g.map(String::from),
                        actual: a.map(String::from),
                    });
                }
            }
        }
    }
}

/// Renders `report` and compares it against the golden text.
pub fn check_report(golden: Option<&str>, report: &Report) -> Option<Drift> {
    match golden {
        None => Some(Drift::MissingGolden),
        Some(golden) => check_text(golden, &render(report)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ReportBuilder;

    #[test]
    fn identical_text_passes() {
        assert_eq!(check_text("a\nb\n", "a\nb\n"), None);
    }

    #[test]
    fn single_cell_drift_is_located() {
        let golden = "# head\n  a  b\n  c  d\n";
        let fresh = "# head\n  a  b\n  c  X\n";
        match check_text(golden, fresh) {
            Some(Drift::Line {
                line,
                expected,
                actual,
            }) => {
                assert_eq!(line, 3);
                assert_eq!(expected.as_deref(), Some("  c  d"));
                assert_eq!(actual.as_deref(), Some("  c  X"));
            }
            other => panic!("expected line drift, got {other:?}"),
        }
    }

    #[test]
    fn length_differences_are_drift() {
        assert!(matches!(
            check_text("a\n", "a\nb\n"),
            Some(Drift::Line { line: 2, .. })
        ));
        assert!(matches!(
            check_text("a\nb\n", "a\n"),
            Some(Drift::Line { line: 2, .. })
        ));
    }

    #[test]
    fn missing_golden_is_drift() {
        let report = ReportBuilder::new("x", 0).finish(0.0);
        assert_eq!(check_report(None, &report), Some(Drift::MissingGolden));
    }

    #[test]
    fn report_matches_its_own_render() {
        let mut b = ReportBuilder::new("x", 0);
        b.note("n");
        b.row(&["1".into()]);
        let report = b.finish(0.0);
        let golden = render(&report);
        assert_eq!(check_report(Some(&golden), &report), None);
    }
}
