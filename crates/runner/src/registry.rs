//! The experiment catalogue: named experiments, duplicate-rejecting
//! registration, deterministic iteration order.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Instant;

use crate::config::ExpConfig;
use crate::report::{Report, ReportBuilder};
use crate::{ExpError, ExpResult};

/// One registered experiment.
///
/// Implementations must be `Send + Sync`: the orchestrator runs them
/// from worker threads. The provided [`run`](Experiment::run) wrapper
/// handles report scaffolding and timing; implementors supply the
/// body via [`fill`](Experiment::fill).
pub trait Experiment: Send + Sync {
    /// Unique registry name (historically the binary name, e.g.
    /// `exp_ballsbins`).
    fn name(&self) -> &str;

    /// One-line description (shown by `pwf list`).
    fn description(&self) -> &str;

    /// Human-readable chain/system size range the experiment sweeps
    /// (shown by `pwf list`; e.g. `"n=2..256"`). Empty when sizes are
    /// not the experiment's axis.
    fn sizes(&self) -> &str {
        ""
    }

    /// Whether the output is a pure function of the seed. Experiments
    /// that measure real hardware (timing, thread interleavings) are
    /// not, and golden-file checking skips them.
    fn deterministic(&self) -> bool {
        true
    }

    /// Writes the experiment's output into `out`.
    fn fill(&self, cfg: &ExpConfig, out: &mut ReportBuilder) -> ExpResult;

    /// Runs the experiment end-to-end: builds the report scaffold,
    /// stamps standard parameters, executes [`fill`](Experiment::fill),
    /// and records wall time (into the report, and into the config's
    /// observability session as the `exp.wall_ms` gauge).
    fn run(&self, cfg: &ExpConfig) -> Result<Report, ExpError> {
        let start = Instant::now();
        let mut out = ReportBuilder::new(self.name(), cfg.seed);
        out.param("profile", cfg.profile());
        out.param("deterministic", self.deterministic());
        self.fill(cfg, &mut out)?;
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        if let Some(metrics) = cfg.obs.metrics() {
            metrics.gauge_set("exp.wall_ms", wall_ms);
        }
        Ok(out.finish(wall_ms))
    }
}

/// A function-pointer [`Experiment`] — how `pwf-bench` registers the
/// refactored binaries.
pub struct FnExperiment {
    /// Registry name.
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Size range swept, for `pwf list` (see [`Experiment::sizes`]).
    pub sizes: &'static str,
    /// See [`Experiment::deterministic`].
    pub deterministic: bool,
    /// The experiment body.
    pub body: fn(&ExpConfig, &mut ReportBuilder) -> ExpResult,
}

impl Experiment for FnExperiment {
    fn name(&self) -> &str {
        self.name
    }

    fn description(&self) -> &str {
        self.description
    }

    fn sizes(&self) -> &str {
        self.sizes
    }

    fn deterministic(&self) -> bool {
        self.deterministic
    }

    fn fill(&self, cfg: &ExpConfig, out: &mut ReportBuilder) -> ExpResult {
        (self.body)(cfg, out)
    }
}

/// Registration failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// An experiment with this name is already registered.
    DuplicateName(String),
    /// Empty names are not addressable from the CLI.
    EmptyName,
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::DuplicateName(name) => {
                write!(f, "experiment name registered twice: {name:?}")
            }
            RegistryError::EmptyName => write!(f, "experiment name must be non-empty"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// The experiment catalogue. Iteration is in name order, so every
/// run, listing, and summary is deterministic.
#[derive(Default)]
pub struct Registry {
    experiments: BTreeMap<String, Box<dyn Experiment>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds an experiment, rejecting duplicate or empty names.
    pub fn register(&mut self, exp: Box<dyn Experiment>) -> Result<(), RegistryError> {
        let name = exp.name().to_string();
        if name.is_empty() {
            return Err(RegistryError::EmptyName);
        }
        if self.experiments.contains_key(&name) {
            return Err(RegistryError::DuplicateName(name));
        }
        self.experiments.insert(name, exp);
        Ok(())
    }

    /// Looks up an experiment by name.
    pub fn get(&self, name: &str) -> Option<&dyn Experiment> {
        self.experiments.get(name).map(|b| b.as_ref())
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.experiments.keys().cloned().collect()
    }

    /// Number of registered experiments.
    pub fn len(&self) -> usize {
        self.experiments.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.experiments.is_empty()
    }

    /// Iterates experiments in name order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Experiment> {
        self.experiments.values().map(|b| b.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(name: &'static str) -> Box<FnExperiment> {
        Box::new(FnExperiment {
            name,
            description: "demo",
            sizes: "",
            deterministic: true,
            body: |cfg, out| {
                out.note(&format!("seed {}", cfg.seed));
                Ok(())
            },
        })
    }

    #[test]
    fn lookup_and_ordering() {
        let mut reg = Registry::new();
        reg.register(demo("b")).unwrap();
        reg.register(demo("a")).unwrap();
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.names(), vec!["a".to_string(), "b".to_string()]);
        assert!(reg.get("a").is_some());
        assert!(reg.get("missing").is_none());
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut reg = Registry::new();
        reg.register(demo("x")).unwrap();
        let err = reg.register(demo("x")).unwrap_err();
        assert_eq!(err, RegistryError::DuplicateName("x".into()));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn empty_names_are_rejected() {
        let mut reg = Registry::new();
        assert_eq!(
            reg.register(demo("")).unwrap_err(),
            RegistryError::EmptyName
        );
    }

    #[test]
    fn run_stamps_metadata() {
        let mut reg = Registry::new();
        reg.register(demo("m")).unwrap();
        let cfg = ExpConfig {
            seed: 41,
            fast: true,
            ..ExpConfig::default()
        };
        let report = reg.get("m").unwrap().run(&cfg).unwrap();
        assert_eq!(report.name, "m");
        assert_eq!(report.seed, 41);
        assert_eq!(report.param("profile"), Some("fast"));
        assert_eq!(report.param("deterministic"), Some("true"));
        assert!(report.wall_time_ms >= 0.0);
    }

    #[test]
    fn run_records_wall_time_gauge_when_observed() {
        use pwf_obs::ObsHandle;
        let mut reg = Registry::new();
        reg.register(demo("g")).unwrap();
        let obs = ObsHandle::collecting(None);
        let cfg = ExpConfig::default().with_obs(obs.clone());
        reg.get("g").unwrap().run(&cfg).unwrap();
        let snap = obs.metrics().unwrap().snapshot();
        assert!(snap
            .gauges
            .iter()
            .any(|(n, v)| n == "exp.wall_ms" && *v >= 0.0));
    }
}
