//! A zero-dependency JSON value type, writer, and parser — enough for
//! report serialization, `BENCH_runner.json`, and round-tripping in
//! tests. Integers are kept exact (seeds are full-range `u64`s that
//! would lose precision as `f64`).

use std::fmt::Write as _;

use crate::report::{Block, Report};

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer, kept exact through round-trips.
    Int(i128),
    /// A non-integer number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field access.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `f64` (integers included).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The integer payload as `u64`, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    // Shortest representation that round-trips; ensure
                    // a decimal point or exponent so it re-parses as
                    // Num, not Int.
                    let s = format!("{v}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    // JSON has no NaN/Inf; null is the least-bad spelling.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (the subset this module emits, which is
    /// standard JSON without exotic escapes beyond `\uXXXX`).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes, then handle the escape or
            // terminator that stopped it.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not emitted by this
                            // module; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.pos += 1;
                }
                None => return Err(self.err("unterminated string")),
                _ => unreachable!("loop stops only at quote, backslash, or end"),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| self.err("invalid integer"))
        }
    }
}

impl Report {
    /// Serializes the report (metadata and all blocks).
    pub fn to_json(&self) -> Json {
        let params = self
            .params
            .iter()
            .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
            .collect();
        let blocks = self
            .blocks
            .iter()
            .map(|b| match b {
                Block::Note(text) => Json::Obj(vec![("note".into(), Json::Str(text.clone()))]),
                Block::Row(cells) => Json::Obj(vec![(
                    "row".into(),
                    Json::Arr(cells.iter().map(|c| Json::Str(c.clone())).collect()),
                )]),
                Block::Raw(line) => Json::Obj(vec![("raw".into(), Json::Str(line.clone()))]),
            })
            .collect();
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("seed".into(), Json::Int(self.seed as i128)),
            ("wall_time_ms".into(), Json::Num(self.wall_time_ms)),
            ("params".into(), Json::Obj(params)),
            ("blocks".into(), Json::Arr(blocks)),
        ])
    }

    /// Deserializes a report produced by [`to_json`](Report::to_json).
    pub fn from_json(value: &Json) -> Result<Report, String> {
        let name = value
            .get("name")
            .and_then(Json::as_str)
            .ok_or("missing name")?
            .to_string();
        let seed = value
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or("missing seed")?;
        let wall_time_ms = value
            .get("wall_time_ms")
            .and_then(Json::as_f64)
            .ok_or("missing wall_time_ms")?;
        let params = match value.get("params") {
            Some(Json::Obj(fields)) => fields
                .iter()
                .map(|(k, v)| {
                    v.as_str()
                        .map(|s| (k.clone(), s.to_string()))
                        .ok_or_else(|| format!("param {k:?} is not a string"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing params".into()),
        };
        let blocks = value
            .get("blocks")
            .and_then(Json::as_array)
            .ok_or("missing blocks")?
            .iter()
            .map(|b| {
                if let Some(text) = b.get("note").and_then(Json::as_str) {
                    Ok(Block::Note(text.to_string()))
                } else if let Some(cells) = b.get("row").and_then(Json::as_array) {
                    cells
                        .iter()
                        .map(|c| c.as_str().map(String::from).ok_or("row cell not a string"))
                        .collect::<Result<Vec<_>, _>>()
                        .map(Block::Row)
                        .map_err(String::from)
                } else if let Some(line) = b.get("raw").and_then(Json::as_str) {
                    Ok(Block::Raw(line.to_string()))
                } else {
                    Err("unknown block shape".to_string())
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Report {
            name,
            seed,
            wall_time_ms,
            params,
            blocks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ReportBuilder;

    #[test]
    fn scalar_round_trips() {
        for (text, value) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("-42", Json::Int(-42)),
            ("3.25", Json::Num(3.25)),
            ("\"a\\nb\"", Json::Str("a\nb".into())),
        ] {
            assert_eq!(Json::parse(text).unwrap(), value, "{text}");
            assert_eq!(Json::parse(value.render().trim()).unwrap(), value);
        }
    }

    #[test]
    fn u64_seeds_survive_exactly() {
        let v = Json::Int(u64::MAX as i128);
        let parsed = Json::parse(&v.render()).unwrap();
        assert_eq!(parsed.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::Obj(vec![
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
            (
                "items".into(),
                Json::Arr(vec![
                    Json::Int(1),
                    Json::Str("two, three".into()),
                    Json::Null,
                ]),
            ),
            ("quote \"key\"".into(), Json::Str("tab\there".into())),
        ]);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut b = ReportBuilder::new("exp_demo", u64::MAX - 3);
        b.param("profile", "full");
        b.note("line one\nline two");
        b.header(&["n", "W"]);
        b.row(&["4".into(), "1.9952".into()]);
        b.raw("  (0,0)  pi=0.15");
        let report = b.finish(12.5);
        let json = report.to_json();
        let back = Report::from_json(&Json::parse(&json.render()).unwrap()).unwrap();
        assert_eq!(back, report);
    }
}
