//! `pwf-runner` — the experiment-orchestration subsystem of the
//! *practically-wait-free* workspace.
//!
//! Every figure and table of the paper reproduction used to be an
//! independent binary that hand-rolled seeding, formatting, and result
//! recording. This crate unifies them behind one pipeline:
//!
//! * [`registry::Experiment`] + [`registry::Registry`] — a named,
//!   duplicate-rejecting catalogue of experiments, each a pure
//!   `fn(&ExpConfig, &mut ReportBuilder) -> Result` producing a
//!   structured [`report::Report`];
//! * [`config::ExpConfig`] — deterministic per-experiment seeds
//!   derived from one master seed, plus the `--fast` smoke profile;
//! * [`orchestrator`] — a `std::thread` worker pool (`--jobs N`) with
//!   per-experiment timeouts and panic isolation, so one failing
//!   experiment degrades the run instead of killing it;
//! * [`par`] — [`par::parallel_map`], the scoped-thread fan-out that
//!   experiment bodies use to sweep chain sizes in parallel (budgeted
//!   by [`config::ExpConfig::jobs`], input-order results);
//! * [`text`] — the aligned-column renderer (byte-compatible with the
//!   historical `results/*.txt` stdout format) and the shared
//!   `note`/`fmt`/`row`/`header` helpers the binaries use;
//! * [`json`] — a zero-dependency JSON writer/parser for
//!   `results/json/` reports and the `BENCH_runner.json` timing
//!   trajectory;
//! * [`check`] — golden-file regression: fresh runs diffed against
//!   recorded `results/*.txt`, first divergence reported;
//! * [`cli`] — the `pwf list | run | check` command-line front end.
//!
//! The crate knows nothing about the paper: experiments are injected
//! by `pwf-bench`, which registers all twenty binaries' bodies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod cli;
pub mod config;
pub mod json;
pub mod orchestrator;
pub mod par;
pub mod registry;
pub mod report;
pub mod text;
pub mod trend;

pub use check::{check_report, check_text, Drift};
pub use config::{derive_seed, ExpConfig, DEFAULT_MASTER_SEED};
pub use orchestrator::{run_experiments, ExpOutcome, ExpRun, ObsData, RunOptions, RunSummary};
pub use par::{parallel_map, replicate};
pub use registry::{Experiment, FnExperiment, Registry, RegistryError};
pub use report::{Block, Report, ReportBuilder};
pub use text::{fmt, header, note, render, row};

/// The error type experiment bodies return; `Send + Sync` so failures
/// cross the orchestrator's thread boundary.
pub type ExpError = Box<dyn std::error::Error + Send + Sync>;

/// Result alias for experiment bodies.
pub type ExpResult = Result<(), ExpError>;
