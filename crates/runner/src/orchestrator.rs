//! The parallel experiment runner: a `std::thread` worker pool with
//! per-experiment timeouts and panic isolation.
//!
//! Each experiment executes on its own dedicated thread; a pool of
//! `jobs` workers feeds them from a shared queue. The worker waits on
//! a channel with a deadline, so a hung experiment is reported as
//! [`ExpOutcome::TimedOut`] and the pool moves on (the abandoned
//! thread keeps running detached — it cannot be killed — but the run
//! completes and reports without it). A panicking experiment is caught
//! with `catch_unwind` and reported as [`ExpOutcome::Panicked`];
//! neither failure mode aborts the remaining experiments.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pwf_obs::{trace_json, MetricsSnapshot, ObsHandle, DEFAULT_RING_CAPACITY};

use crate::config::ExpConfig;
use crate::registry::Registry;
use crate::report::Report;
use crate::DEFAULT_MASTER_SEED;

/// Options for one orchestrated run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker threads (clamped to at least 1).
    pub jobs: usize,
    /// Per-experiment wall-clock budget.
    pub timeout: Duration,
    /// Master seed; each experiment derives its own from this and its
    /// name.
    pub master_seed: u64,
    /// Run the reduced-iteration smoke profile.
    pub fast: bool,
    /// Collect per-experiment metrics (counters, gauges, latency
    /// quantiles) and attach a snapshot to each [`ExpRun`].
    pub metrics: bool,
    /// Collect event traces and render each experiment's Chrome
    /// trace-event JSON (the files are written by the CLI into this
    /// directory). Implies metrics collection.
    pub trace_dir: Option<PathBuf>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            jobs: 1,
            timeout: Duration::from_secs(300),
            master_seed: DEFAULT_MASTER_SEED,
            fast: false,
            metrics: false,
            trace_dir: None,
        }
    }
}

/// How one experiment ended.
#[derive(Debug)]
pub enum ExpOutcome {
    /// Completed and produced a report.
    Success(Report),
    /// Returned an error.
    Failed(String),
    /// Panicked; the payload message is preserved.
    Panicked(String),
    /// Exceeded the per-experiment timeout.
    TimedOut,
    /// Name not present in the registry.
    Unknown,
}

impl ExpOutcome {
    /// Whether this outcome counts as a pass.
    pub fn is_success(&self) -> bool {
        matches!(self, ExpOutcome::Success(_))
    }

    /// Short status label for summaries.
    pub fn label(&self) -> &'static str {
        match self {
            ExpOutcome::Success(_) => "ok",
            ExpOutcome::Failed(_) => "FAILED",
            ExpOutcome::Panicked(_) => "PANICKED",
            ExpOutcome::TimedOut => "TIMEOUT",
            ExpOutcome::Unknown => "UNKNOWN",
        }
    }
}

/// Observability harvest from one experiment: whatever landed in the
/// per-experiment [`ObsHandle`] by the time the run (or its timeout)
/// ended.
#[derive(Debug)]
pub struct ObsData {
    /// Snapshot of the experiment's metrics registry.
    pub metrics: MetricsSnapshot,
    /// Events recorded into trace rings (including overwritten ones);
    /// zero when tracing was off.
    pub events_recorded: u64,
    /// Events lost to ring wraparound.
    pub events_dropped: u64,
    /// Chrome trace-event JSON, when tracing was on.
    pub trace_json: Option<String>,
}

/// One experiment's slot in the run: outcome plus timing trajectory
/// (offsets are relative to the start of the whole run, giving the
/// parallel schedule for `BENCH_runner.json`).
#[derive(Debug)]
pub struct ExpRun {
    /// Experiment name.
    pub name: String,
    /// How it ended.
    pub outcome: ExpOutcome,
    /// Offset of its start from the run start, in milliseconds.
    pub started_ms: f64,
    /// Wall time spent on it, in milliseconds.
    pub wall_ms: f64,
    /// Observability harvest; `None` unless [`RunOptions::metrics`]
    /// or [`RunOptions::trace_dir`] asked for collection.
    pub obs: Option<ObsData>,
}

/// The result of an orchestrated run, in request order.
#[derive(Debug)]
pub struct RunSummary {
    /// Per-experiment results.
    pub runs: Vec<ExpRun>,
    /// Total wall time of the whole run, in milliseconds.
    pub total_wall_ms: f64,
    /// Worker threads actually used.
    pub jobs: usize,
    /// The master seed the run used.
    pub master_seed: u64,
}

impl RunSummary {
    /// Number of experiments that passed.
    pub fn passed(&self) -> usize {
        self.runs.iter().filter(|r| r.outcome.is_success()).count()
    }

    /// Whether every experiment passed.
    pub fn all_passed(&self) -> bool {
        self.passed() == self.runs.len()
    }
}

/// Runs `names` from the registry in parallel under `opts`.
///
/// The registry is shared by `Arc` because timed-out experiment
/// threads outlive the call and must keep their references valid.
pub fn run_experiments(
    registry: &Arc<Registry>,
    names: &[String],
    opts: &RunOptions,
) -> RunSummary {
    let run_start = Instant::now();
    let jobs = opts.jobs.max(1).min(names.len().max(1));

    // One result slot per requested name, fed by worker threads.
    let mut slots: Vec<Option<ExpRun>> = Vec::new();
    slots.resize_with(names.len(), || None);
    let slots = std::sync::Mutex::new(slots);
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= names.len() {
                    return;
                }
                let name = &names[idx];
                let started_ms = run_start.elapsed().as_secs_f64() * 1e3;
                let exp_start = Instant::now();
                let (outcome, obs) = run_one(registry, name, opts);
                let run = ExpRun {
                    name: name.clone(),
                    outcome,
                    started_ms,
                    wall_ms: exp_start.elapsed().as_secs_f64() * 1e3,
                    obs,
                };
                slots.lock().expect("result mutex")[idx] = Some(run);
            });
        }
    });

    let runs = slots
        .into_inner()
        .expect("result mutex")
        .into_iter()
        .map(|slot| slot.expect("every slot filled by a worker"))
        .collect();
    RunSummary {
        runs,
        total_wall_ms: run_start.elapsed().as_secs_f64() * 1e3,
        jobs,
        master_seed: opts.master_seed,
    }
}

/// Runs a single experiment on a dedicated thread with timeout and
/// panic isolation, harvesting its observability session afterwards.
fn run_one(
    registry: &Arc<Registry>,
    name: &str,
    opts: &RunOptions,
) -> (ExpOutcome, Option<ObsData>) {
    if registry.get(name).is_none() {
        return (ExpOutcome::Unknown, None);
    }
    let observe = opts.metrics || opts.trace_dir.is_some();
    let obs = if observe {
        ObsHandle::collecting(opts.trace_dir.as_ref().map(|_| DEFAULT_RING_CAPACITY))
    } else {
        ObsHandle::disabled()
    };
    let cfg = ExpConfig::for_experiment(opts.master_seed, name, opts.fast)
        .with_obs(obs.clone())
        .with_jobs(opts.jobs);
    let (tx, rx) = mpsc::channel();
    let registry = Arc::clone(registry);
    let thread_name = name.to_string();
    // Detached (non-scoped) thread: if it hangs past the timeout we
    // abandon it rather than block the pool.
    std::thread::Builder::new()
        .name(format!("pwf-{thread_name}"))
        .spawn(move || {
            let exp = registry.get(&thread_name).expect("checked above");
            let result = catch_unwind(AssertUnwindSafe(|| exp.run(&cfg)));
            let outcome = match result {
                Ok(Ok(report)) => ExpOutcome::Success(report),
                Ok(Err(err)) => ExpOutcome::Failed(err.to_string()),
                Err(payload) => ExpOutcome::Panicked(panic_message(payload.as_ref())),
            };
            // The receiver may have timed out and gone away; nothing
            // to do about it.
            let _ = tx.send(outcome);
        })
        .expect("spawn experiment thread");
    let outcome = match rx.recv_timeout(opts.timeout) {
        Ok(outcome) => outcome,
        Err(_) => ExpOutcome::TimedOut,
    };
    // Harvest whatever was deposited so far. After a timeout this is a
    // partial view (the abandoned thread still holds its recorders),
    // which is exactly what a post-mortem wants.
    let obs_data = observe.then(|| {
        let trace = obs.trace();
        ObsData {
            metrics: obs
                .metrics()
                .map(|m| m.snapshot())
                .unwrap_or_else(|| pwf_obs::Metrics::new().snapshot()),
            events_recorded: trace.map(|t| t.recorded()).unwrap_or(0),
            events_dropped: trace.map(|t| t.dropped()).unwrap_or(0),
            trace_json: trace.map(|t| trace_json(&t.events(), name, t.ticks_per_us())),
        }
    });
    (outcome, obs_data)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::FnExperiment;
    use crate::ExpError;

    fn registry() -> Arc<Registry> {
        let mut reg = Registry::new();
        reg.register(Box::new(FnExperiment {
            name: "ok_a",
            description: "succeeds",
            sizes: "",
            deterministic: true,
            body: |cfg, out| {
                out.note(&format!("seed {}", cfg.seed));
                Ok(())
            },
        }))
        .unwrap();
        reg.register(Box::new(FnExperiment {
            name: "ok_b",
            description: "succeeds too",
            sizes: "",
            deterministic: true,
            body: |_, out| {
                out.header(&["x"]);
                Ok(())
            },
        }))
        .unwrap();
        reg.register(Box::new(FnExperiment {
            name: "panics",
            description: "dies",
            sizes: "",
            deterministic: true,
            body: |_, _| panic!("intentional test panic"),
        }))
        .unwrap();
        reg.register(Box::new(FnExperiment {
            name: "fails",
            description: "errors",
            sizes: "",
            deterministic: true,
            body: |_, _| Err(ExpError::from("synthetic failure")),
        }))
        .unwrap();
        reg.register(Box::new(FnExperiment {
            name: "observed",
            description: "records into the obs session",
            sizes: "",
            deterministic: true,
            body: |cfg, out| {
                if let Some(m) = cfg.obs.metrics() {
                    m.counter_add("test.ops", 7);
                }
                out.note("ok");
                Ok(())
            },
        }))
        .unwrap();
        reg.register(Box::new(FnExperiment {
            name: "hangs",
            description: "sleeps past any test timeout",
            sizes: "",
            deterministic: true,
            body: |_, _| {
                std::thread::sleep(Duration::from_secs(3600));
                Ok(())
            },
        }))
        .unwrap();
        Arc::new(reg)
    }

    fn names(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn failures_do_not_abort_the_rest() {
        let reg = registry();
        let opts = RunOptions {
            jobs: 2,
            timeout: Duration::from_secs(30),
            ..RunOptions::default()
        };
        let summary = run_experiments(&reg, &names(&["ok_a", "panics", "fails", "ok_b"]), &opts);
        assert_eq!(summary.runs.len(), 4);
        assert_eq!(summary.passed(), 2);
        assert!(
            matches!(summary.runs[1].outcome, ExpOutcome::Panicked(ref m)
            if m.contains("intentional"))
        );
        assert!(matches!(summary.runs[2].outcome, ExpOutcome::Failed(ref m)
            if m.contains("synthetic")));
        assert!(summary.runs[3].outcome.is_success());
    }

    #[test]
    fn timeouts_are_reported_and_do_not_block() {
        let reg = registry();
        let opts = RunOptions {
            jobs: 2,
            timeout: Duration::from_millis(100),
            ..RunOptions::default()
        };
        let start = Instant::now();
        let summary = run_experiments(&reg, &names(&["hangs", "ok_a"]), &opts);
        assert!(matches!(summary.runs[0].outcome, ExpOutcome::TimedOut));
        assert!(summary.runs[1].outcome.is_success());
        assert!(start.elapsed() < Duration::from_secs(30));
    }

    #[test]
    fn unknown_names_are_reported() {
        let reg = registry();
        let summary = run_experiments(&reg, &names(&["nope"]), &RunOptions::default());
        assert!(matches!(summary.runs[0].outcome, ExpOutcome::Unknown));
        assert!(!summary.all_passed());
    }

    #[test]
    fn obs_data_is_harvested_only_when_requested() {
        let reg = registry();
        // Default options: no collection, no harvest.
        let plain = run_experiments(&reg, &names(&["observed"]), &RunOptions::default());
        assert!(plain.runs[0].obs.is_none());

        // Metrics + tracing: counters, the wall-time gauge, and a
        // rendered trace document all come back.
        let opts = RunOptions {
            metrics: true,
            trace_dir: Some(PathBuf::from("ignored-by-orchestrator")),
            ..RunOptions::default()
        };
        let summary = run_experiments(&reg, &names(&["observed"]), &opts);
        assert!(summary.runs[0].outcome.is_success());
        let obs = summary.runs[0].obs.as_ref().expect("harvested");
        assert!(obs
            .metrics
            .counters
            .iter()
            .any(|(n, v)| n == "test.ops" && *v == 7));
        assert!(obs.metrics.gauges.iter().any(|(n, _)| n == "exp.wall_ms"));
        let trace = obs.trace_json.as_ref().expect("trace rendered");
        assert!(trace.starts_with("{\"traceEvents\":["));
    }

    #[test]
    fn same_seed_gives_identical_reports_across_jobs() {
        let reg = registry();
        let opts_serial = RunOptions {
            jobs: 1,
            master_seed: 7,
            ..RunOptions::default()
        };
        let opts_parallel = RunOptions {
            jobs: 4,
            master_seed: 7,
            ..RunOptions::default()
        };
        let a = run_experiments(&reg, &names(&["ok_a", "ok_b"]), &opts_serial);
        let b = run_experiments(&reg, &names(&["ok_a", "ok_b"]), &opts_parallel);
        for (ra, rb) in a.runs.iter().zip(&b.runs) {
            match (&ra.outcome, &rb.outcome) {
                (ExpOutcome::Success(x), ExpOutcome::Success(y)) => {
                    assert!(x.same_output(y), "{} diverged", ra.name);
                }
                _ => panic!("both runs should succeed"),
            }
        }
    }
}
