//! Minimal data-parallel helper for intra-experiment fan-out.
//!
//! Experiments sweep a list of chain sizes where each point is an
//! independent solve; [`parallel_map`] runs those points on a scoped
//! thread pool sized by [`crate::config::ExpConfig::jobs`]. It is the
//! same work-stealing-free pattern the orchestrator uses for whole
//! experiments — an atomic next-index counter over a shared slice —
//! kept dependency-free on purpose (no rayon in this workspace).
//!
//! Results come back in **input order** regardless of which worker
//! finished first, so deterministic experiments stay deterministic:
//! parallelism changes wall time, never output. With `jobs <= 1` the
//! closure runs on the caller's thread with no pool at all.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item of `items`, using up to `jobs` worker
/// threads, and returns the results in input order.
///
/// `f` must be `Sync` because multiple workers call it concurrently;
/// per-item state should come from the item itself (e.g. a sub-seed
/// derived from the index).
///
/// # Panics
///
/// Propagates a panic from `f`: if any worker panics, the scope
/// unwinds and a panic resurfaces on the caller's thread (carrying
/// `std::thread::scope`'s "a scoped thread panicked" message).
pub fn parallel_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let workers = jobs.min(items.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// Runs `reps` independent Monte Carlo replications of `f` (called
/// with the replication index) on up to `jobs` threads, returning the
/// results in replication order.
///
/// This is [`parallel_map`] specialised to the replication pattern:
/// the item *is* the index, and each replication derives its own RNG
/// stream from it (e.g. `cfg.sub_seed(rep as u64)`), so the results
/// are byte-identical at any job count.
///
/// # Panics
///
/// Propagates a panic from `f` (see [`parallel_map`]).
pub fn replicate<R, F>(jobs: usize, reps: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let indices: Vec<usize> = (0..reps).collect();
    parallel_map(jobs, &indices, |&rep| f(rep))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(8, &items, |&x| x * x);
        assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn serial_path_matches_parallel_path() {
        let items: Vec<u64> = (0..37).collect();
        let serial = parallel_map(1, &items, |&x| x.wrapping_mul(0x9E37_79B9));
        let par = parallel_map(4, &items, |&x| x.wrapping_mul(0x9E37_79B9));
        assert_eq!(serial, par);
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<i32> = vec![];
        assert!(parallel_map(4, &empty, |x| *x).is_empty());
        assert_eq!(parallel_map(4, &[5], |x| x + 1), vec![6]);
    }

    #[test]
    fn uses_multiple_threads_when_asked() {
        use std::collections::HashSet;
        use std::sync::Barrier;
        // Two items rendezvous on a barrier — only possible if they run
        // on distinct threads simultaneously.
        let barrier = Barrier::new(2);
        let ids = parallel_map(2, &[0, 1], |_| {
            barrier.wait();
            std::thread::current().id()
        });
        let distinct: HashSet<_> = ids.into_iter().collect();
        assert_eq!(distinct.len(), 2);
    }

    #[test]
    fn replicate_is_ordered_and_jobs_invariant() {
        let serial = replicate(1, 16, |rep| (rep as u64).wrapping_mul(0x9E37_79B9));
        let par = replicate(8, 16, |rep| (rep as u64).wrapping_mul(0x9E37_79B9));
        assert_eq!(serial, par);
        assert_eq!(serial[3], 3u64.wrapping_mul(0x9E37_79B9));
        assert_eq!(serial.len(), 16);
    }

    #[test]
    #[should_panic(expected = "a scoped thread panicked")]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..8).collect();
        let _ = parallel_map(4, &items, |&x| {
            if x == 3 {
                panic!("worker panic propagates");
            }
            x
        });
    }
}
