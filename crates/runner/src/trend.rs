//! `pwf report`: the bench trend report and CI perf gate.
//!
//! Aggregates every `BENCH_*.json` in the working directory into one
//! flat metric set, diffs it against the append-only
//! `results/bench_history.jsonl` trajectory (delta vs the last
//! recorded run and vs best-ever, with tolerance bands), and — with
//! `--check` — exits nonzero when a gated metric regresses beyond the
//! band. `--record` appends the current metrics as a new history
//! entry, so the CI sequence `pwf report --check --record` gates
//! against the previous run and then becomes the next baseline.
//!
//! Metric names are the dotted JSON paths prefixed with the bench
//! slug (`BENCH_serve.json` → `serve.…`); array rows keyed by a
//! `name` or `n` field get stable path segments, so a size sweep that
//! grows does not renumber history.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::json::Json;
use crate::text::fmt;

/// Usage text for `pwf report --help`.
pub const USAGE: &str = "\
pwf report — bench trend report and CI perf gate

USAGE:
    pwf report [OPTIONS]

Aggregates BENCH_*.json into a per-metric trend against the
append-only bench history, printing delta vs the last recorded run
and vs best-ever.

OPTIONS:
    --dir DIR         directory holding BENCH_*.json      [default: .]
    --history FILE    history file  [default: results/bench_history.jsonl]
    --tolerance PCT   regression band in percent         [default: 35]
    --check           exit 1 when a gated metric regresses beyond the
                      band (the CI perf gate)
    --record          append the current metrics as a new history entry
    --json            emit the report as JSON instead of text
    -h, --help        show this text
";

/// Default relative tolerance band (35%): wide enough to absorb
/// normal wall-clock noise, tight enough to catch a real regression.
pub const DEFAULT_TOLERANCE: f64 = 0.35;

/// Which way a metric is supposed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Smaller is better (latencies, errors, drift).
    Lower,
    /// Bigger is better (speedups, throughput, hit rates).
    Higher,
    /// Informational only — tracked, never gated (sizes, seeds).
    Neutral,
}

impl Direction {
    /// Heuristic by metric name. Error-like fragments are checked
    /// first so `completions_rel_err` gates on the error, not the
    /// completions.
    pub fn of(name: &str) -> Direction {
        const LOWER: [&str; 11] = [
            "drift", "err", "residual", "_ms", "_us", "wall", "latency", "timeout", "rejected",
            "dropped", "retries",
        ];
        const HIGHER: [&str; 7] = [
            "speedup",
            "throughput",
            "rate",
            "completed",
            "completions",
            "hit",
            "coalesced",
        ];
        if LOWER.iter().any(|frag| name.contains(frag)) {
            Direction::Lower
        } else if HIGHER.iter().any(|frag| name.contains(frag)) {
            Direction::Higher
        } else {
            Direction::Neutral
        }
    }

    /// The arrow rendered next to gated metrics.
    fn arrow(self) -> &'static str {
        match self {
            Direction::Lower => "v",
            Direction::Higher => "^",
            Direction::Neutral => " ",
        }
    }
}

/// Flattens a bench document into dotted-path numeric metrics.
/// Non-numeric and non-finite leaves are skipped. Array elements
/// carrying a `name` or `n` field keep that as their path segment.
pub fn flatten(prefix: &str, doc: &Json, out: &mut BTreeMap<String, f64>) {
    match doc {
        Json::Obj(fields) => {
            for (key, value) in fields {
                let path = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}.{key}")
                };
                flatten(&path, value, out);
            }
        }
        Json::Arr(items) => {
            for (index, item) in items.iter().enumerate() {
                let tag = item
                    .get("name")
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .or_else(|| {
                        item.get("n")
                            .and_then(Json::as_f64)
                            .map(|n| format!("n{n}"))
                    })
                    .unwrap_or_else(|| index.to_string());
                flatten(&format!("{prefix}.{tag}"), item, out);
            }
        }
        leaf => {
            if let Some(value) = leaf.as_f64() {
                if value.is_finite() {
                    out.insert(prefix.to_string(), value);
                }
            }
        }
    }
}

/// Reads every `BENCH_*.json` under `dir`; returns the file names and
/// the merged flat metric set.
///
/// # Errors
///
/// I/O failures and JSON parse failures (a malformed bench file must
/// fail the gate, not silently vanish from it).
pub fn load_bench_metrics(dir: &Path) -> io::Result<(Vec<String>, BTreeMap<String, f64>)> {
    let mut names: Vec<String> = fs::read_dir(dir)?
        .filter_map(|entry| entry.ok())
        .filter_map(|entry| entry.file_name().into_string().ok())
        .filter(|name| name.starts_with("BENCH_") && name.ends_with(".json"))
        .collect();
    names.sort();
    let mut metrics = BTreeMap::new();
    for name in &names {
        let slug = name
            .trim_start_matches("BENCH_")
            .trim_end_matches(".json")
            .to_string();
        let text = fs::read_to_string(dir.join(name))?;
        let doc = Json::parse(&text)
            .map_err(|e| io::Error::other(format!("{name}: malformed JSON: {e}")))?;
        flatten(&slug, &doc, &mut metrics);
    }
    Ok((names, metrics))
}

/// One recorded run in `bench_history.jsonl`.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    /// Monotonic record number.
    pub seq: u64,
    /// Wall-clock capture time (unix milliseconds; 0 if unknown).
    pub recorded_unix_ms: u64,
    /// The flat metric set at record time.
    pub metrics: BTreeMap<String, f64>,
}

/// Parses the JSONL history text. Lines that fail to parse are
/// reported as errors — the gate must not silently shrink its
/// baseline.
///
/// # Errors
///
/// The 1-based line number and parse failure of the first bad line.
pub fn parse_history(text: &str) -> Result<Vec<HistoryEntry>, String> {
    let mut entries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = Json::parse(line).map_err(|e| format!("history line {}: {e}", lineno + 1))?;
        let mut metrics = BTreeMap::new();
        if let Some(Json::Obj(fields)) = doc.get("metrics") {
            for (key, value) in fields {
                if let Some(v) = value.as_f64() {
                    metrics.insert(key.clone(), v);
                }
            }
        }
        entries.push(HistoryEntry {
            seq: doc.get("seq").and_then(Json::as_u64).unwrap_or(0),
            recorded_unix_ms: doc
                .get("recorded_unix_ms")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            metrics,
        });
    }
    Ok(entries)
}

/// Loads the history file; a missing file is an empty history.
///
/// # Errors
///
/// I/O failures other than not-found, and malformed lines.
pub fn load_history(path: &Path) -> Result<Vec<HistoryEntry>, String> {
    match fs::read_to_string(path) {
        Ok(text) => parse_history(&text),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders one history entry as a single JSONL line (no trailing
/// newline). `f64` metrics print in Rust's shortest round-trip form.
pub fn history_line(entry: &HistoryEntry) -> String {
    let metrics: Vec<String> = entry
        .metrics
        .iter()
        .map(|(name, value)| format!("\"{}\":{}", json_escape(name), value))
        .collect();
    format!(
        "{{\"seq\":{},\"recorded_unix_ms\":{},\"metrics\":{{{}}}}}",
        entry.seq,
        entry.recorded_unix_ms,
        metrics.join(",")
    )
}

/// Appends one entry to the history file, creating parent directories
/// as needed.
///
/// # Errors
///
/// Filesystem errors.
pub fn append_history(path: &Path, entry: &HistoryEntry) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    use std::io::Write as _;
    let mut file = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(file, "{}", history_line(entry))
}

/// One metric's trend line.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendRow {
    /// Dotted metric path (`serve.latency.p99_us`).
    pub metric: String,
    /// Gate direction.
    pub direction: Direction,
    /// Value in the current BENCH files.
    pub current: f64,
    /// Value in the last history entry, when recorded.
    pub last: Option<f64>,
    /// Best value across all history, by `direction` (None for
    /// neutral metrics or empty history).
    pub best: Option<f64>,
    /// Signed relative delta vs `last` (`+0.10` = 10% increase).
    pub delta_vs_last: Option<f64>,
    /// Signed relative delta vs `best`.
    pub delta_vs_best: Option<f64>,
    /// Whether this row breaches the tolerance band against `last`.
    pub regressed: bool,
}

/// The assembled report.
#[derive(Debug, Clone)]
pub struct TrendReport {
    /// One row per current metric, sorted by path.
    pub rows: Vec<TrendRow>,
    /// The band the rows were gated with.
    pub tolerance: f64,
    /// History entries consulted.
    pub history_len: usize,
}

/// Signed relative delta of `current` against `base`, saturating the
/// divide-by-zero case (a metric that was 0 and now is not is an
/// infinite relative change; 1e12 keeps it finite and very much
/// beyond any band).
fn rel_delta(current: f64, base: f64) -> f64 {
    if current == base {
        0.0
    } else if base.abs() < 1e-12 {
        ((current - base) / 1e-12).clamp(-1e12, 1e12)
    } else {
        (current - base) / base.abs()
    }
}

impl TrendReport {
    /// Builds the trend of `current` against `history`.
    pub fn build(
        current: &BTreeMap<String, f64>,
        history: &[HistoryEntry],
        tolerance: f64,
    ) -> TrendReport {
        let last = history.last();
        let rows = current
            .iter()
            .map(|(metric, &value)| {
                let direction = Direction::of(metric);
                let last_value = last.and_then(|e| e.metrics.get(metric)).copied();
                let best = match direction {
                    Direction::Neutral => None,
                    _ => history
                        .iter()
                        .filter_map(|e| e.metrics.get(metric))
                        .copied()
                        .reduce(|a, b| match direction {
                            Direction::Lower => a.min(b),
                            _ => a.max(b),
                        }),
                };
                let delta_vs_last = last_value.map(|base| rel_delta(value, base));
                let delta_vs_best = best.map(|base| rel_delta(value, base));
                let regressed = match (direction, delta_vs_last) {
                    (Direction::Lower, Some(delta)) => delta > tolerance,
                    (Direction::Higher, Some(delta)) => delta < -tolerance,
                    _ => false,
                };
                TrendRow {
                    metric: metric.clone(),
                    direction,
                    current: value,
                    last: last_value,
                    best,
                    delta_vs_last,
                    delta_vs_best,
                    regressed,
                }
            })
            .collect();
        TrendReport {
            rows,
            tolerance,
            history_len: history.len(),
        }
    }

    /// Rows breaching the band, worst first.
    pub fn regressions(&self) -> Vec<&TrendRow> {
        let mut rows: Vec<&TrendRow> = self.rows.iter().filter(|r| r.regressed).collect();
        rows.sort_by(|a, b| {
            let severity = |r: &TrendRow| r.delta_vs_last.map(f64::abs).unwrap_or(0.0);
            severity(b).total_cmp(&severity(a))
        });
        rows
    }

    /// The plain-text report.
    pub fn render_text(&self, files: &[String]) -> String {
        let mut out = format!(
            "# pwf report — {} bench files, {} history entries, band ±{:.0}%\n",
            files.len(),
            self.history_len,
            self.tolerance * 100.0
        );
        out.push_str(&format!("# files: {}\n\n", files.join(" ")));
        out.push_str(&format!(
            "{:<44} {:>12} {:>12} {:>9} {:>12} {:>9}\n",
            "metric", "current", "last", "d-last", "best", "d-best"
        ));
        let pct = |delta: Option<f64>| match delta {
            None => "-".to_string(),
            Some(d) if d.abs() > 99.99 => format!("{}inf%", if d > 0.0 { "+" } else { "-" }),
            Some(d) => format!("{:+.1}%", d * 100.0),
        };
        let val = |v: Option<f64>| v.map(fmt).unwrap_or_else(|| "-".to_string());
        for row in &self.rows {
            out.push_str(&format!(
                "{:<44} {:>12} {:>12} {:>9} {:>12} {:>9}{}\n",
                format!("{} {}", row.metric, row.direction.arrow()),
                fmt(row.current),
                val(row.last),
                pct(row.delta_vs_last),
                val(row.best),
                pct(row.delta_vs_best),
                if row.regressed { "  REGRESSION" } else { "" },
            ));
        }
        let regressions = self.regressions();
        if regressions.is_empty() {
            out.push_str(&format!(
                "\nno regressions beyond the ±{:.0}% band\n",
                self.tolerance * 100.0
            ));
        } else {
            out.push_str(&format!(
                "\n{} regression(s) beyond the ±{:.0}% band:\n",
                regressions.len(),
                self.tolerance * 100.0
            ));
            for row in regressions {
                out.push_str(&format!(
                    "  REGRESSION {}: {} vs last {} ({})\n",
                    row.metric,
                    fmt(row.current),
                    val(row.last),
                    pct(row.delta_vs_last),
                ));
            }
        }
        out
    }

    /// The report as a JSON document.
    pub fn to_json(&self, files: &[String]) -> Json {
        let direction = |d: Direction| {
            Json::Str(
                match d {
                    Direction::Lower => "lower",
                    Direction::Higher => "higher",
                    Direction::Neutral => "neutral",
                }
                .into(),
            )
        };
        let opt = |v: Option<f64>| v.map(Json::Num).unwrap_or(Json::Null);
        let rows = self
            .rows
            .iter()
            .map(|row| {
                Json::Obj(vec![
                    ("metric".into(), Json::Str(row.metric.clone())),
                    ("direction".into(), direction(row.direction)),
                    ("current".into(), Json::Num(row.current)),
                    ("last".into(), opt(row.last)),
                    ("best".into(), opt(row.best)),
                    ("delta_vs_last".into(), opt(row.delta_vs_last)),
                    ("delta_vs_best".into(), opt(row.delta_vs_best)),
                    ("regressed".into(), Json::Bool(row.regressed)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("report".into(), Json::Str("pwf-bench-trend".into())),
            (
                "files".into(),
                Json::Arr(files.iter().map(|f| Json::Str(f.clone())).collect()),
            ),
            (
                "history_entries".into(),
                Json::Int(self.history_len as i128),
            ),
            ("tolerance".into(), Json::Num(self.tolerance)),
            (
                "regressions".into(),
                Json::Int(self.regressions().len() as i128),
            ),
            ("metrics".into(), Json::Arr(rows)),
        ])
    }
}

struct ReportArgs {
    dir: PathBuf,
    history: PathBuf,
    tolerance: f64,
    check: bool,
    record: bool,
    json: bool,
}

fn parse(argv: &[String]) -> Result<Option<ReportArgs>, String> {
    let mut args = ReportArgs {
        dir: PathBuf::from("."),
        history: PathBuf::from("results/bench_history.jsonl"),
        tolerance: DEFAULT_TOLERANCE,
        check: false,
        record: false,
        json: false,
    };
    let mut iter = argv.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| -> Result<String, String> {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "--dir" => args.dir = PathBuf::from(value("--dir")?),
            "--history" => args.history = PathBuf::from(value("--history")?),
            "--tolerance" => {
                let pct: f64 = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?;
                if !(pct > 0.0 && pct.is_finite()) {
                    return Err("--tolerance must be a positive percentage".into());
                }
                args.tolerance = pct / 100.0;
            }
            "--check" => args.check = true,
            "--record" => args.record = true,
            "--json" => args.json = true,
            other => return Err(format!("unknown flag {other:?} (see pwf report --help)")),
        }
    }
    Ok(Some(args))
}

/// Entry point for the `report` subcommand (dispatched from the `pwf`
/// binary). Returns the process exit code: 0 clean, 1 regressions or
/// I/O failure, 2 usage errors.
pub fn cli_main(argv: Vec<String>) -> i32 {
    let args = match parse(&argv) {
        Ok(Some(args)) => args,
        Ok(None) => {
            print!("{USAGE}");
            return 0;
        }
        Err(message) => {
            eprintln!("pwf report: {message}");
            return 2;
        }
    };
    let (files, metrics) = match load_bench_metrics(&args.dir) {
        Ok(loaded) => loaded,
        Err(e) => {
            eprintln!("pwf report: reading {}: {e}", args.dir.display());
            return 1;
        }
    };
    if files.is_empty() {
        eprintln!(
            "pwf report: no BENCH_*.json files under {} (run `pwf run --all` and `pwf serve --selftest` first)",
            args.dir.display()
        );
        return 1;
    }
    let history = match load_history(&args.history) {
        Ok(history) => history,
        Err(message) => {
            eprintln!("pwf report: {message}");
            return 1;
        }
    };
    let report = TrendReport::build(&metrics, &history, args.tolerance);
    if args.json {
        print!("{}", report.to_json(&files).render());
    } else {
        print!("{}", report.render_text(&files));
    }
    if args.record {
        let entry = HistoryEntry {
            seq: history.last().map(|e| e.seq + 1).unwrap_or(0),
            recorded_unix_ms: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
            metrics,
        };
        if let Err(e) = append_history(&args.history, &entry) {
            eprintln!("pwf report: appending {}: {e}", args.history.display());
            return 1;
        }
        println!(
            "recorded history entry {} in {}",
            entry.seq,
            args.history.display()
        );
    }
    let regressions = report.regressions().len();
    if args.check && regressions > 0 {
        eprintln!(
            "pwf report: FAIL — {regressions} metric(s) regressed beyond ±{:.0}%",
            args.tolerance * 100.0
        );
        return 1;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(text: &str) -> Json {
        Json::parse(text).unwrap()
    }

    #[test]
    fn flatten_uses_stable_keys_for_named_and_sized_rows() {
        let mut out = BTreeMap::new();
        flatten(
            "sim",
            &doc(r#"{"profile":"fast","total":3,
                    "sizes":[{"n":64,"speedup":6.0},{"n":256,"speedup":16.5}],
                    "experiments":[{"name":"exp_a","wall_ms":5.5}],
                    "raw":[1,2]}"#),
            &mut out,
        );
        assert_eq!(out.get("sim.total"), Some(&3.0));
        assert_eq!(out.get("sim.sizes.n64.speedup"), Some(&6.0));
        assert_eq!(out.get("sim.sizes.n256.speedup"), Some(&16.5));
        assert_eq!(out.get("sim.experiments.exp_a.wall_ms"), Some(&5.5));
        assert_eq!(out.get("sim.raw.0"), Some(&1.0));
        assert_eq!(out.get("sim.raw.1"), Some(&2.0));
        // Strings are not metrics.
        assert!(!out.contains_key("sim.profile"));
    }

    #[test]
    fn direction_heuristic_prefers_error_fragments() {
        assert_eq!(Direction::of("sim.completions_rel_err"), Direction::Lower);
        assert_eq!(Direction::of("serve.latency.p99_us"), Direction::Lower);
        assert_eq!(Direction::of("serve.throughput_rps"), Direction::Higher);
        assert_eq!(Direction::of("serve.cache_hit_rate"), Direction::Higher);
        assert_eq!(Direction::of("markov.largest_dense_n"), Direction::Neutral);
    }

    #[test]
    fn history_lines_round_trip() {
        let entry = HistoryEntry {
            seq: 3,
            recorded_unix_ms: 1700,
            metrics: [("a.b".to_string(), 1.5), ("c".to_string(), 2.0)]
                .into_iter()
                .collect(),
        };
        let line = history_line(&entry);
        assert!(!line.contains('\n'));
        let parsed = parse_history(&line).unwrap();
        assert_eq!(parsed, vec![entry]);
    }

    #[test]
    fn malformed_history_lines_are_errors_not_silence() {
        let err = parse_history("{\"seq\":0,\"metrics\":{}}\nnot json\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn equal_metrics_never_regress_and_improvements_pass() {
        let current: BTreeMap<String, f64> = [
            ("serve.latency.p99_us".to_string(), 10_000.0),
            ("sim.speedup".to_string(), 8.0),
        ]
        .into_iter()
        .collect();
        let history = vec![HistoryEntry {
            seq: 0,
            recorded_unix_ms: 0,
            metrics: current.clone(),
        }];
        let report = TrendReport::build(&current, &history, DEFAULT_TOLERANCE);
        assert!(report.regressions().is_empty());

        // Better on both axes: still clean, and best-ever reflects it.
        let better: BTreeMap<String, f64> = [
            ("serve.latency.p99_us".to_string(), 5_000.0),
            ("sim.speedup".to_string(), 12.0),
        ]
        .into_iter()
        .collect();
        let report = TrendReport::build(&better, &history, DEFAULT_TOLERANCE);
        assert!(report.regressions().is_empty());
        let row = report
            .rows
            .iter()
            .find(|r| r.metric == "serve.latency.p99_us")
            .unwrap();
        assert!(row.delta_vs_last.unwrap() < 0.0);
    }

    #[test]
    fn regressions_beyond_the_band_are_flagged_in_both_directions() {
        let history = vec![HistoryEntry {
            seq: 0,
            recorded_unix_ms: 0,
            metrics: [
                ("serve.latency.p99_us".to_string(), 1_000.0),
                ("sim.speedup".to_string(), 10.0),
                ("markov.largest_dense_n".to_string(), 6.0),
            ]
            .into_iter()
            .collect(),
        }];
        let current: BTreeMap<String, f64> = [
            // Latency 10x worse: gated (lower-is-better).
            ("serve.latency.p99_us".to_string(), 10_000.0),
            // Speedup halved: gated (higher-is-better).
            ("sim.speedup".to_string(), 5.0),
            // Neutral metric moved: never gated.
            ("markov.largest_dense_n".to_string(), 60.0),
        ]
        .into_iter()
        .collect();
        let report = TrendReport::build(&current, &history, DEFAULT_TOLERANCE);
        let regressed: Vec<&str> = report
            .regressions()
            .iter()
            .map(|r| r.metric.as_str())
            .collect();
        assert_eq!(regressed, vec!["serve.latency.p99_us", "sim.speedup"]);
        // Within-band wobble is fine.
        let wobble: BTreeMap<String, f64> = [
            ("serve.latency.p99_us".to_string(), 1_200.0),
            ("sim.speedup".to_string(), 9.0),
        ]
        .into_iter()
        .collect();
        assert!(TrendReport::build(&wobble, &history, DEFAULT_TOLERANCE)
            .regressions()
            .is_empty());
    }

    #[test]
    fn zero_baseline_drift_is_an_infinite_regression() {
        let history = vec![HistoryEntry {
            seq: 0,
            recorded_unix_ms: 0,
            metrics: [("serve.drift".to_string(), 0.0)].into_iter().collect(),
        }];
        let current: BTreeMap<String, f64> =
            [("serve.drift".to_string(), 1.0)].into_iter().collect();
        let report = TrendReport::build(&current, &history, DEFAULT_TOLERANCE);
        assert_eq!(report.regressions().len(), 1);
    }

    #[test]
    fn best_ever_tracks_the_direction() {
        let entry = |seq: u64, latency: f64, speedup: f64| HistoryEntry {
            seq,
            recorded_unix_ms: 0,
            metrics: [
                ("a.latency_us".to_string(), latency),
                ("a.speedup".to_string(), speedup),
            ]
            .into_iter()
            .collect(),
        };
        let history = vec![
            entry(0, 900.0, 4.0),
            entry(1, 400.0, 9.0),
            entry(2, 600.0, 7.0),
        ];
        let current: BTreeMap<String, f64> = [
            ("a.latency_us".to_string(), 500.0),
            ("a.speedup".to_string(), 8.0),
        ]
        .into_iter()
        .collect();
        let report = TrendReport::build(&current, &history, DEFAULT_TOLERANCE);
        let by_name = |name: &str| report.rows.iter().find(|r| r.metric == name).unwrap();
        assert_eq!(by_name("a.latency_us").best, Some(400.0));
        assert_eq!(by_name("a.speedup").best, Some(9.0));
        assert!(
            report.regressions().is_empty(),
            "vs last (600, 7) both improved"
        );
    }

    #[test]
    fn text_and_json_renders_carry_the_verdict() {
        let history = vec![HistoryEntry {
            seq: 0,
            recorded_unix_ms: 0,
            metrics: [("a.latency_us".to_string(), 100.0)].into_iter().collect(),
        }];
        let current: BTreeMap<String, f64> = [("a.latency_us".to_string(), 1_000.0)]
            .into_iter()
            .collect();
        let report = TrendReport::build(&current, &history, DEFAULT_TOLERANCE);
        let files = vec!["BENCH_a.json".to_string()];
        let text = report.render_text(&files);
        assert!(text.contains("REGRESSION a.latency_us"), "{text}");
        let json = report.to_json(&files);
        assert_eq!(json.get("regressions").and_then(Json::as_u64), Some(1));
        let rows = json.get("metrics").and_then(Json::as_array).unwrap();
        assert_eq!(rows[0].get("regressed").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn empty_history_reports_without_gating() {
        let current: BTreeMap<String, f64> =
            [("a.latency_us".to_string(), 100.0)].into_iter().collect();
        let report = TrendReport::build(&current, &[], DEFAULT_TOLERANCE);
        assert!(report.regressions().is_empty());
        assert_eq!(report.rows[0].last, None);
    }
}
