//! Per-experiment run configuration and deterministic seed
//! derivation.
//!
//! One master seed (CLI `--seed`, default [`DEFAULT_MASTER_SEED`])
//! fans out into an independent seed per experiment via
//! `splitmix64(master ⊕ fnv1a(name))` — so runs are reproducible, the
//! per-experiment streams are decorrelated, and adding or re-ordering
//! experiments never changes another experiment's stream (seeds depend
//! on the *name*, not the registration order).

use pwf_obs::ObsHandle;
use pwf_rng::rngs::StdRng;
use pwf_rng::{mix64, SeedableRng};

/// The master seed used when the CLI is not given `--seed`. Recorded
/// golden results in `results/` are generated with this value.
pub const DEFAULT_MASTER_SEED: u64 = 0x005E_ED0F_1AB5;

/// FNV-1a 64-bit hash of a name — stable, dependency-free, and good
/// enough as input to the avalanche mix.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Derives the deterministic seed for `name` under `master`.
pub fn derive_seed(master: u64, name: &str) -> u64 {
    mix64(master ^ fnv1a(name))
}

/// The configuration an experiment body receives.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// The experiment's derived seed; all of its randomness must come
    /// from this (via [`rng`](Self::rng) / [`sub_seed`](Self::sub_seed)).
    pub seed: u64,
    /// Smoke profile: iteration counts scaled down ~10× so the full
    /// suite finishes in well under two minutes.
    pub fast: bool,
    /// Observability session (disabled by default). Experiment bodies
    /// may record metrics into it and attach it to the measurements
    /// they drive; the orchestrator harvests it after the run.
    pub obs: ObsHandle,
    /// Thread budget for intra-experiment fan-out (size sweeps run
    /// through [`crate::par::parallel_map`] with this). The
    /// orchestrator forwards its `--jobs` value; 1 means sequential.
    pub jobs: usize,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            seed: DEFAULT_MASTER_SEED,
            fast: false,
            obs: ObsHandle::disabled(),
            jobs: 1,
        }
    }
}

impl ExpConfig {
    /// A full-profile config for `name` under `master`, with
    /// observability off.
    pub fn for_experiment(master: u64, name: &str, fast: bool) -> Self {
        ExpConfig {
            seed: derive_seed(master, name),
            fast,
            obs: ObsHandle::disabled(),
            jobs: 1,
        }
    }

    /// Replaces the observability session.
    #[must_use]
    pub fn with_obs(mut self, obs: ObsHandle) -> Self {
        self.obs = obs;
        self
    }

    /// Sets the intra-experiment thread budget (clamped to ≥ 1).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// The experiment's main generator.
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }

    /// An independent seed for a tagged sub-task (one per table cell,
    /// repetition, …); distinct tags give decorrelated streams and the
    /// mapping is stable across runs.
    pub fn sub_seed(&self, tag: u64) -> u64 {
        mix64(self.seed ^ mix64(tag))
    }

    /// A generator for a tagged sub-task.
    pub fn sub_rng(&self, tag: u64) -> StdRng {
        StdRng::seed_from_u64(self.sub_seed(tag))
    }

    /// Scales an iteration count for the active profile: unchanged in
    /// full mode, ~10× smaller (with a floor of 1000) in fast mode.
    pub fn scaled(&self, full: u64) -> u64 {
        if self.fast {
            (full / 10).max(1_000.min(full))
        } else {
            full
        }
    }

    /// [`scaled`](Self::scaled) for `usize` counts.
    pub fn scaled_usize(&self, full: usize) -> usize {
        self.scaled(full as u64) as usize
    }

    /// The profile name, for report parameters.
    pub fn profile(&self) -> &'static str {
        if self.fast {
            "fast"
        } else {
            "full"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_deterministic_and_name_sensitive() {
        let a = derive_seed(1, "exp_a");
        assert_eq!(a, derive_seed(1, "exp_a"));
        assert_ne!(a, derive_seed(1, "exp_b"));
        assert_ne!(a, derive_seed(2, "exp_a"));
    }

    #[test]
    fn sub_seeds_are_decorrelated() {
        let cfg = ExpConfig {
            seed: 9,
            ..ExpConfig::default()
        };
        assert_ne!(cfg.sub_seed(0), cfg.sub_seed(1));
        assert_ne!(cfg.sub_seed(0), cfg.seed);
        assert_eq!(cfg.sub_seed(3), cfg.sub_seed(3));
    }

    #[test]
    fn scaling_only_in_fast_mode() {
        let full = ExpConfig {
            seed: 0,
            ..ExpConfig::default()
        };
        let fast = ExpConfig {
            seed: 0,
            fast: true,
            ..ExpConfig::default()
        };
        assert_eq!(full.scaled(400_000), 400_000);
        assert_eq!(fast.scaled(400_000), 40_000);
        // Small counts hit the floor instead of vanishing.
        assert_eq!(fast.scaled(2_000), 1_000);
        assert_eq!(fast.scaled(500), 500);
    }
}
