//! Schema pin for `pwf lint --json`, using the runner's own JSON
//! parser: the document must parse as standard JSON and carry exactly
//! the fields downstream tooling (ci.sh, dashboards) keys on. A field
//! rename or type change in pwf-lint's hand-rolled renderer fails
//! here before it breaks a consumer.

use std::path::Path;

use pwf_lint::{lint_workspace, Pass};
use pwf_runner::json::Json;

#[test]
fn lint_json_parses_and_matches_the_pinned_schema() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let report = lint_workspace(&root, &Pass::ALL, &[]).expect("workspace scan succeeds");
    let doc = report.render_json();
    let json = Json::parse(&doc).expect("lint --json must be valid JSON");

    // Envelope.
    assert_eq!(json.get("tool").and_then(Json::as_str), Some("pwf-lint"));
    assert_eq!(json.get("schema_version").and_then(Json::as_u64), Some(1));
    assert!(json.get("root").and_then(Json::as_str).is_some());
    let passes: Vec<_> = json
        .get("passes")
        .and_then(Json::as_array)
        .expect("passes array")
        .iter()
        .filter_map(Json::as_str)
        .collect();
    assert_eq!(passes, vec!["orderings", "progress", "condvar", "unsafe"]);

    // Per-crate records.
    let crates = json
        .get("crates")
        .and_then(Json::as_array)
        .expect("crates array");
    assert!(crates.len() >= 13, "expected the full workspace");
    for c in crates {
        assert!(c.get("name").and_then(Json::as_str).is_some());
        for counter in ["files", "sites", "findings", "allowed"] {
            assert!(
                c.get(counter).and_then(Json::as_u64).is_some(),
                "crate record missing {counter}"
            );
        }
        assert!(c.get("clean").and_then(Json::as_bool).is_some());
        for v in c
            .get("violations")
            .and_then(Json::as_array)
            .expect("violations")
        {
            assert!(v.get("path").and_then(Json::as_str).is_some());
            assert!(v.get("line").and_then(Json::as_u64).is_some());
            assert!(v.get("function").and_then(Json::as_str).is_some());
            assert!(v.get("rule").and_then(Json::as_str).is_some());
            assert!(v.get("message").and_then(Json::as_str).is_some());
            let fp = v
                .get("fingerprint")
                .and_then(Json::as_str)
                .expect("fingerprint");
            assert_eq!(fp.len(), 16, "fingerprints are zero-padded hex64");
        }
        for s in c.get("stale").and_then(Json::as_array).expect("stale") {
            assert!(s.get("key").and_then(Json::as_str).is_some());
            assert!(s.get("line").and_then(Json::as_u64).is_some());
        }
    }

    // Summary totals agree with the crate records.
    let summary = json.get("summary").expect("summary object");
    let total = |field: &str| {
        summary
            .get(field)
            .and_then(Json::as_u64)
            .expect("summary counter")
    };
    let crate_sum = |field: &str| {
        crates
            .iter()
            .map(|c| c.get(field).and_then(Json::as_u64).unwrap_or(0))
            .sum::<u64>()
    };
    assert_eq!(total("crates"), crates.len() as u64);
    for field in ["files", "sites", "findings", "allowed"] {
        assert_eq!(total(field), crate_sum(field), "summary.{field} disagrees");
    }
    assert_eq!(summary.get("clean").and_then(Json::as_bool), Some(true));
}

#[test]
fn golden_shape_is_stable_for_a_dirty_single_crate_report() {
    // A hand-built report pins the exact field order and formatting of
    // the violation/stale records, including the mismatch extension
    // fields, without depending on workspace content.
    use pwf_lint::passes::Finding;
    use pwf_lint::{AllowEntry, CrateReport, Violation, WorkspaceReport};

    let report = WorkspaceReport {
        root: "/ws".to_string(),
        passes: vec!["orderings"],
        crates: vec![CrateReport {
            name: "demo".to_string(),
            allow_path: Some("crates/demo/lint.allow".to_string()),
            files: 1,
            sites: 2,
            findings: 2,
            violations: vec![Violation {
                finding: Finding {
                    path: "crates/demo/src/lib.rs".to_string(),
                    file: "lib.rs".to_string(),
                    line: 4,
                    function: "f".to_string(),
                    rule: "seqcst",
                    message: "load uses SeqCst".to_string(),
                    fingerprint: 0xdead_beef,
                },
                mismatch: Some((0xcafe, 7)),
            }],
            allowed: 1,
            stale: vec![AllowEntry {
                key: "lib.rs:gone:seqcst".to_string(),
                fingerprint: 1,
                justification: "old".to_string(),
                line: 9,
            }],
            allow_error: None,
        }],
    };
    let expected = concat!(
        "{\"tool\":\"pwf-lint\",\"schema_version\":1,\"root\":\"/ws\",",
        "\"passes\":[\"orderings\"],\"crates\":[",
        "{\"name\":\"demo\",\"files\":1,\"sites\":2,\"findings\":2,\"allowed\":1,",
        "\"violations\":[{\"path\":\"crates/demo/src/lib.rs\",\"line\":4,",
        "\"function\":\"f\",\"rule\":\"seqcst\",\"message\":\"load uses SeqCst\",",
        "\"fingerprint\":\"00000000deadbeef\",",
        "\"expected_fingerprint\":\"000000000000cafe\",\"entry_line\":7}],",
        "\"stale\":[{\"key\":\"lib.rs:gone:seqcst\",\"line\":9}],\"clean\":false}],",
        "\"summary\":{\"crates\":1,\"files\":1,\"sites\":2,\"findings\":2,",
        "\"allowed\":1,\"violations\":1,\"stale\":1,\"clean\":false}}\n"
    );
    assert_eq!(report.render_json(), expected);
}
