//! End-to-end test of the `pwf report --check` perf gate: a fresh
//! history passes vacuously, `--record` seeds the baseline, an equal
//! re-run stays green, and a synthetic regression (or a synthetically
//! better recorded baseline) turns the exit code red.

use std::fs;
use std::path::PathBuf;

use pwf_runner::trend;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("pwf-report-gate-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn report(dir: &TempDir, extra: &[&str]) -> i32 {
    let history = dir.0.join("bench_history.jsonl");
    let mut argv = vec![
        "--dir".to_string(),
        dir.0.display().to_string(),
        "--history".to_string(),
        history.display().to_string(),
    ];
    argv.extend(extra.iter().map(|s| s.to_string()));
    trend::cli_main(argv)
}

fn write_bench(dir: &TempDir, wall_ms: f64, throughput: f64) {
    fs::write(
        dir.0.join("BENCH_gate.json"),
        format!("{{\"experiment\":\"gate\",\"wall_ms\":{wall_ms},\"throughput\":{throughput}}}"),
    )
    .unwrap();
}

#[test]
fn check_gates_against_recorded_history() {
    let dir = TempDir::new("gate");
    write_bench(&dir, 100.0, 50.0);

    // No history yet: nothing to gate against, and --check passes.
    assert_eq!(report(&dir, &["--check"]), 0);

    // Record the baseline, then an identical run stays green.
    assert_eq!(report(&dir, &["--record"]), 0);
    assert_eq!(report(&dir, &["--check"]), 0);

    // Within the default 35% tolerance band: wobble passes.
    write_bench(&dir, 110.0, 45.0);
    assert_eq!(report(&dir, &["--check"]), 0);

    // A lower-is-better metric doubling is a regression.
    write_bench(&dir, 200.0, 50.0);
    assert_eq!(report(&dir, &["--check"]), 1);

    // A higher-is-better metric halving is one too.
    write_bench(&dir, 100.0, 20.0);
    assert_eq!(report(&dir, &["--check"]), 1);

    // Back to the baseline: green again, and a tighter tolerance
    // flips the verdict for the same wobble.
    write_bench(&dir, 110.0, 50.0);
    assert_eq!(report(&dir, &["--check"]), 0);
    assert_eq!(report(&dir, &["--check", "--tolerance", "5"]), 1);
}

#[test]
fn record_appends_monotonic_sequence_numbers() {
    let dir = TempDir::new("seq");
    write_bench(&dir, 100.0, 50.0);
    assert_eq!(report(&dir, &["--record"]), 0);
    write_bench(&dir, 90.0, 60.0);
    assert_eq!(report(&dir, &["--record"]), 0);

    let history = trend::load_history(&dir.0.join("bench_history.jsonl")).unwrap();
    assert_eq!(history.len(), 2);
    assert_eq!(history[0].seq, 0);
    assert_eq!(history[1].seq, 1);
    assert_eq!(history[1].metrics["gate.wall_ms"], 90.0);

    // Improvements recorded into history become the new baseline: the
    // old (worse) numbers now regress against it.
    write_bench(&dir, 100.0, 50.0);
    assert_eq!(report(&dir, &["--check", "--tolerance", "5"]), 1);
}

#[test]
fn missing_bench_files_are_an_error() {
    let dir = TempDir::new("empty");
    assert_eq!(report(&dir, &["--check"]), 1);
}
