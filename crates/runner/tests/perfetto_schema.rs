//! Schema-shape validation of the Perfetto export, using the runner's
//! own JSON parser: the trace document `pwf trace` writes must parse
//! as standard JSON and carry exactly the Chrome trace-event fields
//! Perfetto and `chrome://tracing` require.

use pwf_obs::{trace_json, Event, EventKind};
use pwf_runner::json::Json;

fn ev(ticket: u64, tick: u64, thread: u32, kind: EventKind, arg: u64) -> Event {
    Event {
        ticket,
        tick,
        thread,
        kind,
        arg,
    }
}

/// A small two-thread trace with paired ops, a retry instant, and an
/// unmatched start (as a ring that dropped the matching end would
/// produce).
fn sample_events() -> Vec<Event> {
    vec![
        ev(0, 0, 0, EventKind::OpStart, 1),
        ev(1, 5, 1, EventKind::OpStart, 2),
        ev(2, 8, 0, EventKind::CasFail, 1),
        ev(3, 20, 0, EventKind::OpEnd, 1),
        ev(4, 30, 1, EventKind::OpEnd, 0),
        ev(5, 40, 1, EventKind::OpStart, 3),
    ]
}

#[test]
fn trace_document_parses_and_matches_the_chrome_schema() {
    let doc = trace_json(&sample_events(), "schema_test", 1.0);
    let json = Json::parse(&doc).expect("trace output must be valid JSON");

    assert_eq!(
        json.get("displayTimeUnit").and_then(Json::as_str),
        Some("ns")
    );
    let events = json
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    for e in events {
        // Required by the trace-event format for every record.
        let ph = e.get("ph").and_then(Json::as_str).expect("ph");
        assert!(e.get("name").and_then(Json::as_str).is_some());
        assert!(e.get("pid").and_then(Json::as_u64).is_some());
        assert!(e.get("tid").and_then(Json::as_u64).is_some());
        match ph {
            "M" => {
                // Metadata: a name argument, no timestamp.
                assert!(e
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .is_some());
            }
            "X" => {
                // Complete event: timestamp + duration, microseconds.
                assert!(e.get("ts").and_then(Json::as_f64).is_some());
                assert!(e.get("dur").and_then(Json::as_f64).unwrap_or(-1.0) >= 0.0);
            }
            "i" => {
                // Instant, thread-scoped.
                assert!(e.get("ts").and_then(Json::as_f64).is_some());
                assert_eq!(e.get("s").and_then(Json::as_str), Some("t"));
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }

    // The first record names the process after the experiment.
    assert_eq!(
        events[0].get("name").and_then(Json::as_str),
        Some("process_name")
    );
    assert_eq!(
        events[0]
            .get("args")
            .and_then(|a| a.get("name"))
            .and_then(Json::as_str),
        Some("schema_test")
    );

    // Both paired ops became complete events; the unmatched trailing
    // OpStart degraded to an instant instead of vanishing.
    let count_of = |phase: &str| {
        events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some(phase))
            .count()
    };
    assert_eq!(count_of("X"), 2);
    // CasFail + the unmatched OpStart.
    assert_eq!(count_of("i"), 2);
}

#[test]
fn golden_shape_is_stable_for_a_minimal_trace() {
    // One paired op at ticks-are-nanoseconds scale: the golden string
    // pins the exact field set and number formatting so an accidental
    // exporter change is caught here before Perfetto rejects it.
    let events = vec![
        ev(0, 1_000, 0, EventKind::OpStart, 7),
        ev(1, 3_000, 0, EventKind::OpEnd, 2),
    ];
    let doc = trace_json(&events, "golden", 1000.0);
    let expected = concat!(
        "{\"traceEvents\":[",
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,",
        "\"args\":{\"name\":\"golden\"}},",
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,",
        "\"args\":{\"name\":\"thread 0\"}},",
        "{\"name\":\"op:7\",\"ph\":\"X\",\"pid\":1,\"tid\":0,",
        "\"ts\":1,\"dur\":2,\"args\":{\"tag\":7,\"retries\":2}}",
        "],\"displayTimeUnit\":\"ns\"}"
    );
    assert_eq!(doc, expected);
}
