//! End-to-end exercises of the orchestration pipeline: register →
//! run in parallel → render → JSON round-trip → golden check —
//! including the failure paths (panic isolation, injected drift).

use std::sync::Arc;

use pwf_rng::RngCore;
use pwf_runner::json::Json;
use pwf_runner::{
    check_report, check_text, render, run_experiments, Drift, ExpConfig, ExpOutcome, ExpResult,
    FnExperiment, Registry, ReportBuilder, RunOptions,
};

fn table(cfg: &ExpConfig, out: &mut ReportBuilder) -> ExpResult {
    out.note("deterministic table driven by the derived seed");
    out.header(&["i", "draw"]);
    let mut rng = cfg.rng();
    for i in 0..4u64 {
        out.row(&[i.to_string(), rng.next_u64().to_string()]);
    }
    out.param("rows", 4);
    Ok(())
}

fn boom(_cfg: &ExpConfig, _out: &mut ReportBuilder) -> ExpResult {
    panic!("intentional test panic");
}

fn fail(_cfg: &ExpConfig, _out: &mut ReportBuilder) -> ExpResult {
    Err("structured failure".into())
}

const TABLE: FnExperiment = FnExperiment {
    name: "it_table",
    description: "integration: deterministic table",
    sizes: "",
    deterministic: true,
    body: table,
};
const BOOM: FnExperiment = FnExperiment {
    name: "it_boom",
    description: "integration: panics",
    sizes: "",
    deterministic: true,
    body: boom,
};
const FAIL: FnExperiment = FnExperiment {
    name: "it_fail",
    description: "integration: returns Err",
    sizes: "",
    deterministic: true,
    body: fail,
};

fn registry() -> Arc<Registry> {
    let mut r = Registry::new();
    for e in [TABLE, BOOM, FAIL] {
        r.register(Box::new(e)).unwrap();
    }
    Arc::new(r)
}

fn run_one(reg: &Arc<Registry>, name: &str, opts: &RunOptions) -> ExpOutcome {
    let summary = run_experiments(reg, &[name.to_string()], opts);
    summary.runs.into_iter().next().unwrap().outcome
}

#[test]
fn same_seed_same_report_across_job_counts() {
    let reg = registry();
    let names = vec!["it_table".to_string()];
    let mut opts = RunOptions {
        master_seed: 42,
        ..RunOptions::default()
    };

    let mut renders = Vec::new();
    for jobs in [1, 4] {
        opts.jobs = jobs;
        let summary = run_experiments(&reg, &names, &opts);
        assert!(summary.all_passed());
        match &summary.runs[0].outcome {
            ExpOutcome::Success(report) => renders.push(render(report)),
            other => panic!("expected success, got {}", other.label()),
        }
    }
    assert_eq!(renders[0], renders[1], "jobs count must not change output");

    opts.master_seed = 43;
    opts.jobs = 1;
    let summary = run_experiments(&reg, &names, &opts);
    let ExpOutcome::Success(report) = &summary.runs[0].outcome else {
        panic!("expected success");
    };
    assert_ne!(renders[0], render(report), "a new master seed must reseed");
}

#[test]
fn panic_and_error_are_isolated_from_healthy_experiments() {
    let reg = registry();
    let names: Vec<String> = ["it_boom", "it_fail", "it_table"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let opts = RunOptions {
        jobs: 3,
        ..RunOptions::default()
    };
    let summary = run_experiments(&reg, &names, &opts);

    assert_eq!(summary.passed(), 1);
    assert!(!summary.all_passed());
    let outcome_of = |name: &str| {
        &summary
            .runs
            .iter()
            .find(|r| r.name == name)
            .unwrap()
            .outcome
    };
    assert!(matches!(outcome_of("it_table"), ExpOutcome::Success(_)));
    match outcome_of("it_boom") {
        ExpOutcome::Panicked(msg) => assert!(msg.contains("intentional test panic")),
        other => panic!("expected panic, got {}", other.label()),
    }
    match outcome_of("it_fail") {
        ExpOutcome::Failed(msg) => assert!(msg.contains("structured failure")),
        other => panic!("expected failure, got {}", other.label()),
    }
}

#[test]
fn report_survives_a_json_round_trip() {
    let reg = registry();
    let outcome = run_one(&reg, "it_table", &RunOptions::default());
    let ExpOutcome::Success(report) = outcome else {
        panic!("expected success");
    };

    let encoded = report.to_json().render();
    let decoded = pwf_runner::Report::from_json(&Json::parse(&encoded).unwrap()).unwrap();
    assert_eq!(decoded.name, report.name);
    assert_eq!(decoded.seed, report.seed);
    assert_eq!(decoded.param("rows"), Some("4"));
    assert_eq!(render(&decoded), render(&report));
}

#[test]
fn check_detects_a_single_injected_cell_of_drift() {
    let reg = registry();
    let outcome = run_one(&reg, "it_table", &RunOptions::default());
    let ExpOutcome::Success(report) = outcome else {
        panic!("expected success");
    };
    let golden = render(&report);

    assert!(check_report(Some(&golden), &report).is_none());
    assert!(matches!(
        check_report(None, &report),
        Some(Drift::MissingGolden)
    ));

    // Flip one digit in one data cell, as a stale golden would show.
    let drifted = golden.replacen('0', "9", 1);
    assert_ne!(drifted, golden);
    match check_text(&drifted, &golden) {
        Some(Drift::Line { line, .. }) => assert!(line >= 1),
        other => panic!("expected line drift, got {other:?}"),
    }
}
