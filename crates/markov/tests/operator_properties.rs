//! Property-based tests for the implicit-operator substrate: for
//! arbitrary stochastic chains, every [`TransitionOperator`] path —
//! the trait's default row-scatter apply, the out-of-core spill, and
//! the cache-blocked dense kernel — must agree with the CSR engine,
//! bit-for-bit where the float schedule is shared and within rounding
//! where it is not.

// Proptest is an external crate gated behind `heavy-deps` so the
// default workspace builds with zero crates.io dependencies; enable
// the feature to run this suite.
#![cfg(feature = "heavy-deps")]

use proptest::prelude::*;

use pwf_markov::ooc::SpilledChain;
use pwf_markov::operator::{stationary_operator, DenseBlockOperator, TransitionOperator};
use pwf_markov::solve::PowerOptions;
use pwf_markov::sparse::{SparseChain, SparseChainBuilder};

/// Wraps a chain exposing only `row_into`, forcing the trait's
/// *default* `apply_into` instead of any CSR-specialized override.
struct RowsOnly<'a>(&'a SparseChain<usize>);

impl TransitionOperator for RowsOnly<'_> {
    fn len(&self) -> usize {
        self.0.len()
    }

    fn row_into(&self, i: usize, row: &mut Vec<(u32, f64)>) {
        row.clear();
        row.extend(self.0.row(i));
    }

    fn resident_rows(&self) -> usize {
        1
    }
}

/// Raw material for one row: arbitrary extra targets (possibly
/// duplicated) plus guaranteed self-loop / to-zero / to-next weights.
type RowSpec = (Vec<(usize, u32)>, u32, u32, u32);

/// Builds a row-stochastic chain on states `0..n`: every row gets a
/// self-loop, an edge to state 0, and an edge to the next state
/// (mod n) — guaranteeing irreducibility and aperiodicity — plus the
/// extra targets, with integer weights normalized to sum to 1.
fn build_chain(n: usize, rows: Vec<RowSpec>) -> SparseChain<usize> {
    let mut b = SparseChainBuilder::new();
    for s in 0..n {
        b.state(s);
    }
    for (i, (extra, w_self, w_zero, w_next)) in rows.into_iter().enumerate() {
        let total = f64::from(w_self + w_zero + w_next)
            + extra.iter().map(|&(_, w)| f64::from(w)).sum::<f64>();
        b.transition(i, i, f64::from(w_self) / total);
        b.transition(i, 0, f64::from(w_zero) / total);
        b.transition(i, (i + 1) % n, f64::from(w_next) / total);
        for (j, w) in extra {
            b.transition(i, j, f64::from(w) / total);
        }
    }
    b.build().expect("rows are normalized")
}

/// A random chain paired with a start distribution over its states
/// (zero entries are kept — they exercise the scatter loop's skip
/// path).
fn chain_and_dist() -> impl Strategy<Value = (SparseChain<usize>, Vec<f64>)> {
    (1usize..12)
        .prop_flat_map(|n| {
            let row = (
                prop::collection::vec((0usize..n, 1u32..50), 0..4),
                1u32..50,
                1u32..50,
                1u32..50,
            );
            (
                Just(n),
                prop::collection::vec(row, n),
                prop::collection::vec(0u32..20, n),
            )
        })
        .prop_map(|(n, rows, weights)| {
            let chain = build_chain(n, rows);
            let mut dist: Vec<f64> = weights.into_iter().map(f64::from).collect();
            if dist.iter().all(|&w| w == 0.0) {
                dist[0] = 1.0;
            }
            let total: f64 = dist.iter().sum();
            dist.iter_mut().for_each(|w| *w /= total);
            (chain, dist)
        })
}

/// A random chain alone.
fn chains() -> impl Strategy<Value = SparseChain<usize>> {
    chain_and_dist().prop_map(|(chain, _)| chain)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The trait's default row-scatter `apply_into` is bit-identical
    /// to the CSR `step_into` kernel on every chain and start vector.
    #[test]
    fn default_apply_matches_csr_step_bitwise(case in chain_and_dist()) {
        let (chain, dist) = case;
        let mut want = vec![0.0; chain.len()];
        let mut got = vec![0.0; chain.len()];
        chain.step_into(&dist, &mut want);
        RowsOnly(&chain).apply_into(&dist, &mut got);
        for (a, b) in want.iter().zip(&got) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Spilling a chain to disk preserves every row bitwise, the
    /// total nonzero count, and the strictly-increasing CSR column
    /// invariant.
    #[test]
    fn spill_round_trips_rows_bitwise(chain in chains(), batch in 1usize..6) {
        let spilled = SpilledChain::spill(&chain, batch).expect("tempfile io");
        prop_assert_eq!(spilled.len(), chain.len());
        prop_assert_eq!(spilled.nnz(), chain.nnz());
        let mut row = Vec::new();
        for i in 0..chain.len() {
            spilled.row_into(i, &mut row);
            let want: Vec<(u32, f64)> = chain.row(i).collect();
            prop_assert_eq!(row.len(), want.len(), "row {} length", i);
            for (k, (&(j, p), &(ej, ep))) in row.iter().zip(&want).enumerate() {
                prop_assert_eq!(j, ej, "row {} entry {}", i, k);
                prop_assert_eq!(p.to_bits(), ep.to_bits(), "row {} entry {}", i, k);
            }
            for pair in row.windows(2) {
                prop_assert!(pair[0].0 < pair[1].0, "row {} not strictly increasing", i);
            }
        }
    }

    /// The stationary solve is invariant to spilling: identical pi
    /// (bitwise) and identical iteration count, whatever the batch
    /// size — the out-of-core path changes *where* rows live, never
    /// the arithmetic.
    #[test]
    fn stationary_is_invariant_to_spilling(chain in chains(), batch in 1usize..6) {
        let opts = PowerOptions::new(200_000, 1e-10);
        let spilled = SpilledChain::spill(&chain, batch).expect("tempfile io");
        let direct = stationary_operator(&chain, &opts, None).expect("irreducible by construction");
        let ooc = stationary_operator(&spilled, &opts, None).expect("irreducible by construction");
        prop_assert_eq!(direct.stats.iterations, ooc.stats.iterations);
        for (a, b) in direct.pi.iter().zip(&ooc.pi) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// The cache-blocked dense kernel agrees with the CSR scatter to
    /// float rounding for every chain, block size, and start vector
    /// (its tile-major accumulation order legitimately differs, so
    /// tolerance rather than bit equality).
    #[test]
    fn dense_block_apply_agrees_within_rounding(chain in chains(), block in 1usize..9) {
        let blocked = DenseBlockOperator::from_operator(&chain, block);
        let dist = vec![1.0 / chain.len() as f64; chain.len()];
        let mut want = vec![0.0; chain.len()];
        let mut got = vec![0.0; chain.len()];
        chain.step_into(&dist, &mut want);
        blocked.apply_into(&dist, &mut got);
        for (a, b) in want.iter().zip(&got) {
            prop_assert!((a - b).abs() < 1e-12, "{} vs {}", a, b);
        }
    }

    /// Row generation is deterministic and conservative: two calls
    /// agree bitwise and every row sums to 1 within builder tolerance.
    #[test]
    fn rows_are_deterministic_and_stochastic(chain in chains()) {
        let op = RowsOnly(&chain);
        let mut first = Vec::new();
        let mut second = Vec::new();
        for i in 0..op.len() {
            op.row_into(i, &mut first);
            op.row_into(i, &mut second);
            prop_assert_eq!(&first, &second);
            let sum: f64 = first.iter().map(|&(_, p)| p).sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "row {} sums to {}", i, sum);
        }
    }
}
