//! Finite, time-invariant, discrete-time Markov chains over explicit
//! state sets (paper, Section 3).
//!
//! States carry an arbitrary label type `S` so chains built from
//! algorithm configurations (e.g. tuples `(a, b)` of the system chain,
//! or full extended-local-state vectors of the individual chain) keep
//! their domain meaning.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

use crate::linalg::Matrix;
use crate::sparse::SparseChain;

/// Tolerance used when validating that transition rows are stochastic.
pub const ROW_SUM_TOLERANCE: f64 = 1e-9;

/// Errors produced while building or querying a [`MarkovChain`].
#[derive(Debug, Clone, PartialEq)]
pub enum ChainError {
    /// A transition probability was negative or not finite.
    InvalidProbability {
        /// Index of the source state.
        from: usize,
        /// Index of the destination state.
        to: usize,
        /// The offending probability.
        prob: f64,
    },
    /// A row of the transition matrix does not sum to 1.
    RowNotStochastic {
        /// Index of the offending state.
        state: usize,
        /// The actual row sum.
        sum: f64,
    },
    /// The same state label was added twice.
    DuplicateState,
    /// A transition referenced a state label that was never added.
    UnknownState,
    /// The chain has no states.
    Empty,
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::InvalidProbability { from, to, prob } => {
                write!(f, "invalid probability {prob} on transition {from} -> {to}")
            }
            ChainError::RowNotStochastic { state, sum } => {
                write!(f, "row {state} sums to {sum}, expected 1")
            }
            ChainError::DuplicateState => write!(f, "duplicate state label"),
            ChainError::UnknownState => write!(f, "transition references unknown state"),
            ChainError::Empty => write!(f, "chain has no states"),
        }
    }
}

impl std::error::Error for ChainError {}

/// A finite time-invariant Markov chain `M(P, ·)` with labelled states.
///
/// The transition matrix is dense; chains in this workspace are exact
/// constructions with at most a few thousand states.
///
/// # Examples
///
/// ```
/// use pwf_markov::chain::ChainBuilder;
///
/// // Two-state chain: flip with probability 1/4, stay with 3/4.
/// let chain = ChainBuilder::new()
///     .transition("a", "b", 0.25)
///     .transition("a", "a", 0.75)
///     .transition("b", "a", 0.25)
///     .transition("b", "b", 0.75)
///     .build()
///     .expect("rows are stochastic");
/// assert_eq!(chain.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct MarkovChain<S> {
    states: Vec<S>,
    index: HashMap<S, usize>,
    transition: Matrix,
}

impl<S: Clone + Eq + Hash> MarkovChain<S> {
    /// Builds a chain from an explicit state list and transition matrix.
    ///
    /// # Errors
    ///
    /// Returns an error if states are duplicated, the matrix shape does
    /// not match, any probability is invalid, or a row is not
    /// stochastic within [`ROW_SUM_TOLERANCE`].
    pub fn from_matrix(states: Vec<S>, transition: Matrix) -> Result<Self, ChainError> {
        if states.is_empty() {
            return Err(ChainError::Empty);
        }
        if transition.rows() != states.len() || transition.cols() != states.len() {
            return Err(ChainError::RowNotStochastic {
                state: 0,
                sum: f64::NAN,
            });
        }
        let mut index = HashMap::with_capacity(states.len());
        for (i, s) in states.iter().enumerate() {
            if index.insert(s.clone(), i).is_some() {
                return Err(ChainError::DuplicateState);
            }
        }
        for i in 0..states.len() {
            let mut sum = 0.0;
            for j in 0..states.len() {
                let p = transition[(i, j)];
                if !p.is_finite() || p < 0.0 {
                    return Err(ChainError::InvalidProbability {
                        from: i,
                        to: j,
                        prob: p,
                    });
                }
                sum += p;
            }
            if (sum - 1.0).abs() > ROW_SUM_TOLERANCE {
                return Err(ChainError::RowNotStochastic { state: i, sum });
            }
        }
        Ok(MarkovChain {
            states,
            index,
            transition,
        })
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the chain has no states (never true for a built chain).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The state labels, in index order.
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// The index of a state label, if present.
    pub fn state_index(&self, s: &S) -> Option<usize> {
        self.index.get(s).copied()
    }

    /// The label of state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn state(&self, i: usize) -> &S {
        &self.states[i]
    }

    /// The transition probability `P[i → j]`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn prob(&self, i: usize, j: usize) -> f64 {
        self.transition[(i, j)]
    }

    /// A view of the full transition matrix.
    pub fn transition_matrix(&self) -> &Matrix {
        &self.transition
    }

    /// Applies one step of the chain to a distribution (`q ↦ q·P`).
    ///
    /// # Panics
    ///
    /// Panics if `dist.len() != self.len()`.
    pub fn step_distribution(&self, dist: &[f64]) -> Vec<f64> {
        self.transition.vec_mul(dist)
    }

    /// The out-neighbours of state `i` (indices with positive
    /// probability).
    ///
    /// Each call scans one dense row and allocates; code traversing
    /// the whole graph should extract a
    /// [`crate::structure::Adjacency`] once instead of calling this in
    /// a loop (the old `structure` reachability did exactly that and
    /// was accidentally `O(n³)`).
    pub fn successors(&self, i: usize) -> Vec<usize> {
        (0..self.len()).filter(|&j| self.prob(i, j) > 0.0).collect()
    }

    /// Converts to the CSR sparse representation, dropping zero
    /// entries. Infallible: a built dense chain is already validated.
    pub fn to_sparse(&self) -> SparseChain<S> {
        let n = self.len();
        let mut cols = Vec::new();
        let mut probs = Vec::new();
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0);
        for i in 0..n {
            for j in 0..n {
                let p = self.transition[(i, j)];
                if p > 0.0 {
                    cols.push(j as u32);
                    probs.push(p);
                }
            }
            row_ptr.push(cols.len());
        }
        SparseChain::from_validated_parts(
            self.states.clone(),
            self.index.clone(),
            cols,
            probs,
            row_ptr,
        )
    }
}

/// Incremental builder for [`MarkovChain`].
///
/// States are created implicitly the first time a label appears, in
/// order of first appearance. Multiple `transition` calls for the same
/// pair accumulate.
#[derive(Debug, Clone)]
pub struct ChainBuilder<S> {
    states: Vec<S>,
    index: HashMap<S, usize>,
    entries: Vec<(usize, usize, f64)>,
}

impl<S: Clone + Eq + Hash> ChainBuilder<S> {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ChainBuilder {
            states: Vec::new(),
            index: HashMap::new(),
            entries: Vec::new(),
        }
    }

    fn intern(&mut self, s: S) -> usize {
        if let Some(&i) = self.index.get(&s) {
            return i;
        }
        let i = self.states.len();
        self.states.push(s.clone());
        self.index.insert(s, i);
        i
    }

    /// Declares a state without any transition (useful to fix ordering).
    #[must_use]
    pub fn state(mut self, s: S) -> Self {
        self.intern(s);
        self
    }

    /// Adds probability mass `p` to the transition `from → to`.
    #[must_use]
    pub fn transition(mut self, from: S, to: S, p: f64) -> Self {
        let i = self.intern(from);
        let j = self.intern(to);
        self.entries.push((i, j, p));
        self
    }

    /// Finalizes the chain.
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of
    /// [`MarkovChain::from_matrix`].
    pub fn build(self) -> Result<MarkovChain<S>, ChainError> {
        if self.states.is_empty() {
            return Err(ChainError::Empty);
        }
        let n = self.states.len();
        let mut m = Matrix::zeros(n, n);
        for (i, j, p) in self.entries {
            m[(i, j)] += p;
        }
        MarkovChain::from_matrix(self.states, m)
    }
}

impl<S: Clone + Eq + Hash> Default for ChainBuilder<S> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state() -> MarkovChain<&'static str> {
        ChainBuilder::new()
            .transition("a", "b", 0.25)
            .transition("a", "a", 0.75)
            .transition("b", "a", 0.5)
            .transition("b", "b", 0.5)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_creates_states_in_first_appearance_order() {
        let c = two_state();
        assert_eq!(c.states(), &["a", "b"]);
        assert_eq!(c.state_index(&"b"), Some(1));
        assert_eq!(c.state_index(&"missing"), None);
    }

    #[test]
    fn probabilities_round_trip() {
        let c = two_state();
        assert_eq!(c.prob(0, 1), 0.25);
        assert_eq!(c.prob(1, 0), 0.5);
    }

    #[test]
    fn accumulating_transitions_sum() {
        let c = ChainBuilder::new()
            .transition("x", "x", 0.5)
            .transition("x", "x", 0.5)
            .build()
            .unwrap();
        assert_eq!(c.prob(0, 0), 1.0);
    }

    #[test]
    fn non_stochastic_row_is_rejected() {
        let err = ChainBuilder::new()
            .transition("a", "a", 0.5)
            .build()
            .unwrap_err();
        assert!(matches!(err, ChainError::RowNotStochastic { state: 0, .. }));
    }

    #[test]
    fn negative_probability_is_rejected() {
        let err = ChainBuilder::new()
            .transition("a", "a", 1.5)
            .transition("a", "b", -0.5)
            .transition("b", "b", 1.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, ChainError::InvalidProbability { .. }));
    }

    #[test]
    fn empty_chain_is_rejected() {
        let err = ChainBuilder::<u32>::new().build().unwrap_err();
        assert_eq!(err, ChainError::Empty);
    }

    #[test]
    fn missing_row_is_rejected() {
        // "b" gets a state but no outgoing probability.
        let err = ChainBuilder::new()
            .transition("a", "b", 1.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, ChainError::RowNotStochastic { state: 1, .. }));
    }

    #[test]
    fn step_distribution_preserves_mass() {
        let c = two_state();
        let d = c.step_distribution(&[0.3, 0.7]);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // q·P by hand: [0.3*0.75 + 0.7*0.5, 0.3*0.25 + 0.7*0.5]
        assert!((d[0] - 0.575).abs() < 1e-12);
        assert!((d[1] - 0.425).abs() < 1e-12);
    }

    #[test]
    fn successors_lists_positive_edges() {
        let c = ChainBuilder::new()
            .transition(0u8, 1u8, 1.0)
            .transition(1u8, 0u8, 0.5)
            .transition(1u8, 1u8, 0.5)
            .build()
            .unwrap();
        assert_eq!(c.successors(0), vec![1]);
        assert_eq!(c.successors(1), vec![0, 1]);
    }

    #[test]
    fn to_sparse_drops_zero_entries() {
        let c = two_state();
        let s = c.to_sparse();
        assert_eq!(s.len(), 2);
        assert_eq!(s.nnz(), 4);
        assert_eq!(s.prob(0, 1), 0.25);
        assert_eq!(s.state_index(&"b"), Some(1));
    }

    #[test]
    fn from_matrix_validates_shape() {
        let m = Matrix::zeros(2, 3);
        assert!(MarkovChain::from_matrix(vec!["a", "b"], m).is_err());
    }

    #[test]
    fn duplicate_states_rejected() {
        let m = Matrix::identity(2);
        let err = MarkovChain::from_matrix(vec!["a", "a"], m).unwrap_err();
        assert_eq!(err, ChainError::DuplicateState);
    }
}
