//! Mixing diagnostics: total-variation distance and empirical mixing
//! times.
//!
//! The paper's guarantees are *stationary* ("the behavior of the
//! algorithm at infinity"); mixing times quantify how quickly a real
//! execution reaches that regime — i.e. how long "long executions"
//! must be for the predictions to apply.

use std::hash::Hash;

use crate::chain::MarkovChain;
use crate::operator::TransitionOperator;
use crate::sparse::SparseChain;
use crate::stationary::{stationary_distribution, StationaryError};

/// Total-variation distance `½‖p − q‖₁` between two distributions.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution lengths differ");
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// The result of a mixing measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct MixingReport {
    /// Steps until TV distance to stationarity first dropped to ≤ ε,
    /// `None` if it never did within the budget. Measured on the
    /// *lazy* chain `(I + P)/2`, which converges for periodic chains
    /// too (the paper's chains have period 2).
    pub mixing_time: Option<usize>,
    /// TV distance at the end of the budget.
    pub final_distance: f64,
    /// The ε threshold used.
    pub epsilon: f64,
}

/// Measures the ε-mixing time of the lazy version of `chain` from the
/// worst of the provided start states (point distributions).
///
/// # Errors
///
/// Propagates stationary-distribution errors.
///
/// # Panics
///
/// Panics if `starts` is empty, any start is out of bounds, or
/// `epsilon <= 0`.
pub fn lazy_mixing_time<S: Clone + Eq + Hash>(
    chain: &MarkovChain<S>,
    starts: &[usize],
    epsilon: f64,
    max_steps: usize,
) -> Result<MixingReport, StationaryError> {
    assert!(!starts.is_empty(), "need at least one start state");
    assert!(epsilon > 0.0, "epsilon must be positive");
    let n = chain.len();
    assert!(starts.iter().all(|&s| s < n), "start state out of bounds");

    let pi = stationary_distribution(chain)?;
    let mut worst_mixing: Option<usize> = Some(0);
    let mut worst_final: f64 = 0.0;

    for &start in starts {
        let mut dist = vec![0.0; n];
        dist[start] = 1.0;
        let mut mixed_at = None;
        let mut d = total_variation(&dist, &pi);
        if d <= epsilon {
            mixed_at = Some(0);
        }
        for t in 1..=max_steps {
            if mixed_at.is_some() {
                break;
            }
            let stepped = chain.step_distribution(&dist);
            for (a, b) in dist.iter_mut().zip(&stepped) {
                *a = 0.5 * *a + 0.5 * b;
            }
            d = total_variation(&dist, &pi);
            if d <= epsilon {
                mixed_at = Some(t);
            }
        }
        worst_final = worst_final.max(d);
        worst_mixing = match (worst_mixing, mixed_at) {
            (Some(w), Some(m)) => Some(w.max(m)),
            _ => None,
        };
    }

    Ok(MixingReport {
        mixing_time: worst_mixing,
        final_distance: worst_final,
        epsilon,
    })
}

/// Measures the ε-mixing time of the lazy version of a sparse chain
/// from the worst of the provided start states, against a
/// caller-supplied stationary distribution `pi` (so one solve can be
/// shared across calls). Each step is `O(nnz)`.
///
/// # Panics
///
/// Panics if `starts` is empty, any start is out of bounds,
/// `epsilon <= 0`, or `pi.len() != chain.len()`.
pub fn sparse_lazy_mixing_time<S: Clone + Eq + Hash>(
    chain: &SparseChain<S>,
    pi: &[f64],
    starts: &[usize],
    epsilon: f64,
    max_steps: usize,
) -> MixingReport {
    operator_lazy_mixing_time(chain, pi, starts, epsilon, max_steps)
}

/// Measures the ε-mixing time of the lazy version of any
/// [`TransitionOperator`] from the worst of the provided start states
/// — the matrix-free core behind [`sparse_lazy_mixing_time`], which
/// for a CSR chain steps the identical float schedule. Each step is
/// one operator application (`O(nnz)` work, rows generated on the
/// fly).
///
/// # Panics
///
/// Panics if `starts` is empty, any start is out of bounds,
/// `epsilon <= 0`, or `pi.len() != op.len()`.
pub fn operator_lazy_mixing_time<O: TransitionOperator + ?Sized>(
    op: &O,
    pi: &[f64],
    starts: &[usize],
    epsilon: f64,
    max_steps: usize,
) -> MixingReport {
    assert!(!starts.is_empty(), "need at least one start state");
    assert!(epsilon > 0.0, "epsilon must be positive");
    let n = op.len();
    assert_eq!(pi.len(), n, "stationary distribution length mismatch");
    assert!(starts.iter().all(|&s| s < n), "start state out of bounds");

    let mut worst_mixing: Option<usize> = Some(0);
    let mut worst_final: f64 = 0.0;
    let mut stepped = vec![0.0; n];

    for &start in starts {
        let mut dist = vec![0.0; n];
        dist[start] = 1.0;
        let mut mixed_at = None;
        let mut d = total_variation(&dist, pi);
        if d <= epsilon {
            mixed_at = Some(0);
        }
        for t in 1..=max_steps {
            if mixed_at.is_some() {
                break;
            }
            op.apply_into(&dist, &mut stepped);
            for (a, b) in dist.iter_mut().zip(&stepped) {
                *a = 0.5 * *a + 0.5 * b;
            }
            d = total_variation(&dist, pi);
            if d <= epsilon {
                mixed_at = Some(t);
            }
        }
        worst_final = worst_final.max(d);
        worst_mixing = match (worst_mixing, mixed_at) {
            (Some(w), Some(m)) => Some(w.max(m)),
            _ => None,
        };
    }

    MixingReport {
        mixing_time: worst_mixing,
        final_distance: worst_final,
        epsilon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ChainBuilder;
    use crate::solve::PowerOptions;

    #[test]
    fn tv_distance_basics() {
        assert_eq!(total_variation(&[1.0, 0.0], &[1.0, 0.0]), 0.0);
        assert_eq!(total_variation(&[1.0, 0.0], &[0.0, 1.0]), 1.0);
        assert!((total_variation(&[0.75, 0.25], &[0.25, 0.75]) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn fast_chain_mixes_fast() {
        // Uniform-jump chain: the lazy walk halves the remaining point
        // mass each step, so TV ≈ 0.75 · 2^{−t}.
        let mut b = ChainBuilder::new();
        for i in 0..4 {
            for j in 0..4 {
                b = b.transition(i, j, 0.25);
            }
        }
        let c = b.build().unwrap();
        let r = lazy_mixing_time(&c, &[0], 0.01, 100).unwrap();
        assert!(r.mixing_time.unwrap() <= 8, "mixing {:?}", r.mixing_time);
    }

    #[test]
    fn slow_chain_mixes_slowly() {
        // Sticky two-state chain: stays with probability 0.99.
        let c = ChainBuilder::new()
            .transition(0, 0, 0.99)
            .transition(0, 1, 0.01)
            .transition(1, 1, 0.99)
            .transition(1, 0, 0.01)
            .build()
            .unwrap();
        let fast = lazy_mixing_time(&c, &[0], 0.25, 10_000).unwrap();
        let slow = lazy_mixing_time(&c, &[0], 0.01, 10_000).unwrap();
        assert!(slow.mixing_time.unwrap() > fast.mixing_time.unwrap());
        assert!(fast.mixing_time.unwrap() > 10);
    }

    #[test]
    fn periodic_chain_still_mixes_in_lazy_time() {
        let c = ChainBuilder::new()
            .transition(0, 1, 1.0)
            .transition(1, 0, 1.0)
            .build()
            .unwrap();
        let r = lazy_mixing_time(&c, &[0, 1], 1e-6, 1000).unwrap();
        assert!(r.mixing_time.is_some());
    }

    #[test]
    fn sparse_mixing_matches_dense() {
        // Sticky two-state chain in both representations.
        let dense = ChainBuilder::new()
            .transition(0, 0, 0.9)
            .transition(0, 1, 0.1)
            .transition(1, 1, 0.9)
            .transition(1, 0, 0.1)
            .build()
            .unwrap();
        let sparse = dense.to_sparse();
        let d = lazy_mixing_time(&dense, &[0, 1], 0.01, 10_000).unwrap();
        let pi = sparse
            .stationary_with(&PowerOptions::new(200_000, 1e-13), None)
            .unwrap()
            .pi;
        let s = sparse_lazy_mixing_time(&sparse, &pi, &[0, 1], 0.01, 10_000);
        assert_eq!(d.mixing_time, s.mixing_time);
        assert!((d.final_distance - s.final_distance).abs() < 1e-9);
    }

    #[test]
    fn budget_exhaustion_reports_distance() {
        let c = ChainBuilder::new()
            .transition(0, 0, 0.999)
            .transition(0, 1, 0.001)
            .transition(1, 1, 0.999)
            .transition(1, 0, 0.001)
            .build()
            .unwrap();
        let r = lazy_mixing_time(&c, &[0], 1e-12, 3).unwrap();
        assert_eq!(r.mixing_time, None);
        assert!(r.final_distance > 1e-12);
    }
}
