//! Sparse chains and iterative solvers, for state spaces where the
//! dense `O(n²)` representation of [`crate::chain::MarkovChain`] is
//! infeasible — e.g. the SCU system chain at thousands of processes
//! (`Θ(n²)` states, ≤ 3 transitions each).
//!
//! The stationary solver is lazy power iteration (`q ← q(I + P)/2`),
//! which converges for every irreducible chain regardless of
//! periodicity — important here because the paper's chains are
//! periodic (see the workspace's Lemma 3 deviation note).

use std::collections::HashMap;
use std::hash::Hash;

use crate::chain::ChainError;
use crate::stationary::StationaryError;

/// A sparse row-stochastic Markov chain over labelled states.
#[derive(Debug, Clone)]
pub struct SparseChain<S> {
    states: Vec<S>,
    index: HashMap<S, usize>,
    /// CSR-ish: per-row list of `(col, prob)`.
    rows: Vec<Vec<(u32, f64)>>,
}

impl<S: Clone + Eq + Hash> SparseChain<S> {
    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the chain has no states (never true once built).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The state labels in index order.
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// Index of a state label.
    pub fn state_index(&self, s: &S) -> Option<usize> {
        self.index.get(s).copied()
    }

    /// Non-zero transitions out of state `i` as `(target, prob)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[(u32, f64)] {
        &self.rows[i]
    }

    /// Total number of non-zero transitions.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// One step of the chain applied to a distribution: `q ↦ q·P`.
    ///
    /// # Panics
    ///
    /// Panics if `dist.len() != len()`.
    pub fn step_distribution(&self, dist: &[f64]) -> Vec<f64> {
        assert_eq!(dist.len(), self.len(), "distribution length mismatch");
        let mut out = vec![0.0; self.len()];
        for (i, &qi) in dist.iter().enumerate() {
            if qi == 0.0 {
                continue;
            }
            for &(j, p) in &self.rows[i] {
                out[j as usize] += qi * p;
            }
        }
        out
    }

    /// Stationary distribution by lazy power iteration from uniform.
    ///
    /// # Errors
    ///
    /// Returns [`StationaryError::NotConverged`] if the L1 change stays
    /// above `tol` after `max_iters` iterations. (Irreducibility is
    /// assumed, not checked — checking is `O(nnz)` via
    /// [`is_irreducible`](Self::is_irreducible) when wanted.)
    pub fn stationary(&self, max_iters: usize, tol: f64) -> Result<Vec<f64>, StationaryError> {
        let n = self.len();
        let mut dist = vec![1.0 / n as f64; n];
        let mut delta = f64::INFINITY;
        for _ in 0..max_iters {
            let stepped = self.step_distribution(&dist);
            delta = 0.0;
            for (d, s) in dist.iter_mut().zip(&stepped) {
                let next = 0.5 * *d + 0.5 * s;
                delta += (next - *d).abs();
                *d = next;
            }
            if delta < tol {
                return Ok(dist);
            }
        }
        Err(StationaryError::NotConverged {
            iterations: max_iters,
            delta,
        })
    }

    /// Whether the positive-probability graph is strongly connected.
    pub fn is_irreducible(&self) -> bool {
        let n = self.len();
        if n == 0 {
            return false;
        }
        let forward_ok = {
            let mut seen = vec![false; n];
            let mut stack = vec![0usize];
            seen[0] = true;
            while let Some(u) = stack.pop() {
                for &(v, _) in &self.rows[u] {
                    if !seen[v as usize] {
                        seen[v as usize] = true;
                        stack.push(v as usize);
                    }
                }
            }
            seen.iter().all(|&b| b)
        };
        if !forward_ok {
            return false;
        }
        // Reverse reachability.
        let mut radj = vec![Vec::new(); n];
        for (u, row) in self.rows.iter().enumerate() {
            for &(v, _) in row {
                radj[v as usize].push(u);
            }
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(u) = stack.pop() {
            for &v in &radj[u] {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        seen.iter().all(|&b| b)
    }
}

/// Incremental builder for [`SparseChain`].
#[derive(Debug, Clone)]
pub struct SparseChainBuilder<S> {
    states: Vec<S>,
    index: HashMap<S, usize>,
    entries: Vec<(usize, usize, f64)>,
}

impl<S: Clone + Eq + Hash> SparseChainBuilder<S> {
    /// Creates an empty builder.
    pub fn new() -> Self {
        SparseChainBuilder {
            states: Vec::new(),
            index: HashMap::new(),
            entries: Vec::new(),
        }
    }

    fn intern(&mut self, s: S) -> usize {
        if let Some(&i) = self.index.get(&s) {
            return i;
        }
        let i = self.states.len();
        self.states.push(s.clone());
        self.index.insert(s, i);
        i
    }

    /// Declares a state (fixes its index order).
    pub fn state(&mut self, s: S) -> &mut Self {
        self.intern(s);
        self
    }

    /// Adds probability mass to a transition (accumulating).
    pub fn transition(&mut self, from: S, to: S, p: f64) -> &mut Self {
        let i = self.intern(from);
        let j = self.intern(to);
        self.entries.push((i, j, p));
        self
    }

    /// Finalizes the chain, validating stochasticity.
    ///
    /// # Errors
    ///
    /// Same validation as the dense builder: every probability finite
    /// and non-negative, every row summing to 1 within tolerance.
    pub fn build(self) -> Result<SparseChain<S>, ChainError> {
        if self.states.is_empty() {
            return Err(ChainError::Empty);
        }
        let n = self.states.len();
        assert!(n <= u32::MAX as usize, "state space exceeds u32 indexing");
        let mut rows: Vec<HashMap<u32, f64>> = vec![HashMap::new(); n];
        for (i, j, p) in self.entries {
            if !p.is_finite() || p < 0.0 {
                return Err(ChainError::InvalidProbability {
                    from: i,
                    to: j,
                    prob: p,
                });
            }
            *rows[i].entry(j as u32).or_insert(0.0) += p;
        }
        let mut out = Vec::with_capacity(n);
        for (i, row) in rows.into_iter().enumerate() {
            let sum: f64 = row.values().sum();
            if (sum - 1.0).abs() > crate::chain::ROW_SUM_TOLERANCE {
                return Err(ChainError::RowNotStochastic { state: i, sum });
            }
            let mut row: Vec<(u32, f64)> = row.into_iter().collect();
            row.sort_unstable_by_key(|&(j, _)| j);
            out.push(row);
        }
        Ok(SparseChain {
            states: self.states,
            index: self.index,
            rows: out,
        })
    }
}

impl<S: Clone + Eq + Hash> Default for SparseChainBuilder<S> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn biased() -> SparseChain<&'static str> {
        let mut b = SparseChainBuilder::new();
        b.transition("a", "b", 1.0)
            .transition("b", "a", 0.5)
            .transition("b", "b", 0.5);
        b.build().unwrap()
    }

    #[test]
    fn stationary_matches_dense_result() {
        // Same chain as the dense test: π = (1/3, 2/3).
        let c = biased();
        let pi = c.stationary(100_000, 1e-13).unwrap();
        assert!((pi[0] - 1.0 / 3.0).abs() < 1e-9);
        assert!((pi[1] - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn periodic_chain_converges_via_laziness() {
        let mut b = SparseChainBuilder::new();
        b.transition(0, 1, 1.0).transition(1, 0, 1.0);
        let c = b.build().unwrap();
        let pi = c.stationary(100_000, 1e-12).unwrap();
        assert!((pi[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn irreducibility_detection() {
        assert!(biased().is_irreducible());
        let mut b = SparseChainBuilder::new();
        b.transition(0, 0, 1.0).transition(1, 1, 1.0);
        assert!(!b.build().unwrap().is_irreducible());
    }

    #[test]
    fn validation_matches_dense_builder() {
        let mut b = SparseChainBuilder::new();
        b.transition(0, 0, 0.5);
        assert!(matches!(
            b.build(),
            Err(ChainError::RowNotStochastic { state: 0, .. })
        ));
        let mut b = SparseChainBuilder::new();
        b.transition(0, 0, 1.5)
            .transition(0, 1, -0.5)
            .transition(1, 1, 1.0);
        assert!(matches!(
            b.build(),
            Err(ChainError::InvalidProbability { .. })
        ));
        assert!(matches!(
            SparseChainBuilder::<u8>::new().build(),
            Err(ChainError::Empty)
        ));
    }

    #[test]
    fn nnz_counts_transitions() {
        assert_eq!(biased().nnz(), 3);
    }

    #[test]
    fn accumulating_duplicate_entries() {
        let mut b = SparseChainBuilder::new();
        b.transition(0, 1, 0.5)
            .transition(0, 1, 0.5)
            .transition(1, 0, 1.0);
        let c = b.build().unwrap();
        assert_eq!(c.row(0), &[(1, 1.0)]);
    }

    #[test]
    fn step_distribution_preserves_mass() {
        let c = biased();
        let d = c.step_distribution(&[0.25, 0.75]);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
