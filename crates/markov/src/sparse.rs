//! Sparse chains and iterative solvers, for state spaces where the
//! dense `O(n²)` representation of [`crate::chain::MarkovChain`] is
//! infeasible — e.g. the SCU system chain at thousands of processes
//! (`Θ(n²)` states, ≤ 3 transitions each).
//!
//! Storage is compressed sparse row (CSR): flat `cols`/`probs` arrays
//! sliced by `row_ptr`, so a row scan is a contiguous read and the
//! whole transition structure lives in three allocations.
//!
//! The stationary solver is lazy power iteration (`q ← q(I + P)/2`),
//! which converges for every irreducible chain regardless of
//! periodicity — important here because the paper's chains are
//! periodic (see the workspace's Lemma 3 deviation note). See
//! [`crate::solve`] for the adaptive stopping rule and solve
//! statistics.

use std::collections::HashMap;
use std::hash::Hash;

use pwf_obs::Metrics;

use crate::chain::{ChainError, MarkovChain};
use crate::linalg::Matrix;
use crate::operator::{stationary_operator, TransitionOperator};
use crate::solve::{PowerOptions, SolveStats};
use crate::stationary::StationaryError;
use crate::structure::Adjacency;

/// A sparse row-stochastic Markov chain over labelled states, stored
/// in CSR form.
#[derive(Debug, Clone)]
pub struct SparseChain<S> {
    states: Vec<S>,
    index: HashMap<S, usize>,
    /// Column (target-state) indices, row-major, sorted within a row.
    cols: Vec<u32>,
    /// Transition probabilities, parallel to `cols`.
    probs: Vec<f64>,
    /// `row_ptr[i]..row_ptr[i + 1]` slices row `i` out of
    /// `cols`/`probs`; length `len() + 1`.
    row_ptr: Vec<usize>,
}

/// The result of a sparse stationary solve: the distribution plus how
/// hard the solver worked.
#[derive(Debug, Clone)]
pub struct StationarySolve {
    /// The stationary distribution.
    pub pi: Vec<f64>,
    /// Iterations, final delta, wall time.
    pub stats: SolveStats,
}

impl<S: Clone + Eq + Hash> SparseChain<S> {
    /// Assembles a chain from pre-validated CSR parts (crate-internal:
    /// used by [`MarkovChain::to_sparse`]).
    pub(crate) fn from_validated_parts(
        states: Vec<S>,
        index: HashMap<S, usize>,
        cols: Vec<u32>,
        probs: Vec<f64>,
        row_ptr: Vec<usize>,
    ) -> Self {
        SparseChain {
            states,
            index,
            cols,
            probs,
            row_ptr,
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the chain has no states (never true once built).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The state labels in index order.
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// Index of a state label.
    pub fn state_index(&self, s: &S) -> Option<usize> {
        self.index.get(s).copied()
    }

    /// The label of state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn state(&self, i: usize) -> &S {
        &self.states[i]
    }

    /// Non-zero transitions out of state `i` as `(target, prob)`
    /// pairs, in increasing target order.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.row_cols(i)
            .iter()
            .copied()
            .zip(self.row_probs(i).iter().copied())
    }

    /// The target-state indices of row `i` (CSR slice).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row_cols(&self, i: usize) -> &[u32] {
        &self.cols[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// The probabilities of row `i`, parallel to
    /// [`row_cols`](Self::row_cols).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row_probs(&self, i: usize) -> &[f64] {
        &self.probs[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// The transition probability `P[i → j]` (binary search within the
    /// row; 0 for absent entries).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn prob(&self, i: usize, j: usize) -> f64 {
        let cols = self.row_cols(i);
        match cols.binary_search(&(j as u32)) {
            Ok(k) => self.row_probs(i)[k],
            Err(_) => 0.0,
        }
    }

    /// Total number of stored transitions.
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// One step of the chain applied to a distribution: `q ↦ q·P`.
    ///
    /// # Panics
    ///
    /// Panics if `dist.len() != len()`.
    pub fn step_distribution(&self, dist: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.len()];
        self.step_into(dist, &mut out);
        out
    }

    /// [`step_distribution`](Self::step_distribution) into a caller
    /// buffer, so iterative solvers can avoid per-step allocation.
    ///
    /// # Panics
    ///
    /// Panics if either length differs from `len()`.
    pub fn step_into(&self, dist: &[f64], out: &mut [f64]) {
        assert_eq!(dist.len(), self.len(), "distribution length mismatch");
        assert_eq!(out.len(), self.len(), "output length mismatch");
        out.fill(0.0);
        for (i, &qi) in dist.iter().enumerate() {
            if qi == 0.0 {
                continue;
            }
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            for (&j, &p) in self.cols[lo..hi].iter().zip(&self.probs[lo..hi]) {
                out[j as usize] += qi * p;
            }
        }
    }

    /// Stationary distribution by lazy power iteration from uniform,
    /// with the historical raw-delta stopping rule.
    ///
    /// # Errors
    ///
    /// Returns [`StationaryError::NotConverged`] if the L1 change stays
    /// above `tol` after `max_iters` iterations. (Irreducibility is
    /// assumed, not checked — checking is `O(nnz)` via
    /// [`is_irreducible`](Self::is_irreducible) when wanted.)
    pub fn stationary(&self, max_iters: usize, tol: f64) -> Result<Vec<f64>, StationaryError> {
        self.stationary_with(&PowerOptions::new(max_iters, tol).raw(), None)
            .map(|s| s.pi)
    }

    /// Stationary distribution by lazy power iteration with explicit
    /// [`PowerOptions`] (adaptive stopping by default) and optional
    /// solver metrics (`markov.stationary.*`).
    ///
    /// Delegates to the operator-generic
    /// [`stationary_operator`] — for a CSR chain the
    /// [`TransitionOperator`] step *is* [`step_into`](Self::step_into),
    /// so the iterates (and therefore the result, the iteration count,
    /// and the residual) are bit-identical to the historical CSR loop.
    ///
    /// # Errors
    ///
    /// Returns [`StationaryError::NotConverged`] when the budget runs
    /// out; the error carries the last observed delta.
    pub fn stationary_with(
        &self,
        opts: &PowerOptions,
        metrics: Option<&Metrics>,
    ) -> Result<StationarySolve, StationaryError> {
        stationary_operator(self, opts, metrics)
    }

    /// Whether the positive-probability graph is strongly connected
    /// (Tarjan SCC over the CSR adjacency).
    pub fn is_irreducible(&self) -> bool {
        Adjacency::from_sparse(self).is_strongly_connected()
    }

    /// Densifies the chain for use with the direct solvers — the
    /// cross-check oracle path for small `n`.
    ///
    /// # Errors
    ///
    /// Propagates [`MarkovChain::from_matrix`] validation (cannot fail
    /// for a chain built by [`SparseChainBuilder`]).
    pub fn to_dense(&self) -> Result<MarkovChain<S>, ChainError> {
        let n = self.len();
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for (j, p) in self.row(i) {
                m[(i, j as usize)] += p;
            }
        }
        MarkovChain::from_matrix(self.states.clone(), m)
    }
}

/// A CSR chain is a (fully resident) transition operator; the solvers
/// in [`crate::operator`], [`crate::hitting`], and [`crate::mixing`]
/// accept it interchangeably with implicit operators. `apply_into`
/// forwards to [`SparseChain::step_into`], keeping operator-generic
/// solves bit-identical to the historical CSR paths.
impl<S: Clone + Eq + Hash> TransitionOperator for SparseChain<S> {
    fn len(&self) -> usize {
        SparseChain::len(self)
    }

    fn row_into(&self, i: usize, row: &mut Vec<(u32, f64)>) {
        row.clear();
        row.extend(self.row(i));
    }

    fn apply_into(&self, dist: &[f64], out: &mut [f64]) {
        self.step_into(dist, out);
    }

    fn resident_rows(&self) -> usize {
        SparseChain::len(self)
    }
}

/// Incremental builder for [`SparseChain`].
#[derive(Debug, Clone)]
pub struct SparseChainBuilder<S> {
    states: Vec<S>,
    index: HashMap<S, usize>,
    entries: Vec<(usize, usize, f64)>,
}

impl<S: Clone + Eq + Hash> SparseChainBuilder<S> {
    /// Creates an empty builder.
    pub fn new() -> Self {
        SparseChainBuilder {
            states: Vec::new(),
            index: HashMap::new(),
            entries: Vec::new(),
        }
    }

    fn intern(&mut self, s: S) -> usize {
        if let Some(&i) = self.index.get(&s) {
            return i;
        }
        let i = self.states.len();
        self.states.push(s.clone());
        self.index.insert(s, i);
        i
    }

    /// Declares a state (fixes its index order).
    pub fn state(&mut self, s: S) -> &mut Self {
        self.intern(s);
        self
    }

    /// Adds probability mass to a transition (accumulating).
    pub fn transition(&mut self, from: S, to: S, p: f64) -> &mut Self {
        let i = self.intern(from);
        let j = self.intern(to);
        self.entries.push((i, j, p));
        self
    }

    /// Finalizes the chain into CSR form, validating stochasticity.
    ///
    /// # Errors
    ///
    /// Same validation as the dense builder: every probability finite
    /// and non-negative, every row summing to 1 within tolerance.
    pub fn build(self) -> Result<SparseChain<S>, ChainError> {
        if self.states.is_empty() {
            return Err(ChainError::Empty);
        }
        let n = self.states.len();
        assert!(n <= u32::MAX as usize, "state space exceeds u32 indexing");

        // Bucket entries by row (counting sort), then sort and merge
        // duplicates within each row — no per-row hash maps.
        let mut bucket_ptr = vec![0usize; n + 1];
        for &(i, j, p) in &self.entries {
            if !p.is_finite() || p < 0.0 {
                return Err(ChainError::InvalidProbability {
                    from: i,
                    to: j,
                    prob: p,
                });
            }
            bucket_ptr[i + 1] += 1;
        }
        for i in 0..n {
            bucket_ptr[i + 1] += bucket_ptr[i];
        }
        let mut scratch: Vec<(u32, f64)> = vec![(0, 0.0); self.entries.len()];
        let mut cursor = bucket_ptr.clone();
        for &(i, j, p) in &self.entries {
            scratch[cursor[i]] = (j as u32, p);
            cursor[i] += 1;
        }

        let mut cols = Vec::with_capacity(self.entries.len());
        let mut probs = Vec::with_capacity(self.entries.len());
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0);
        for i in 0..n {
            let seg = &mut scratch[bucket_ptr[i]..bucket_ptr[i + 1]];
            seg.sort_unstable_by_key(|&(j, _)| j);
            let mut sum = 0.0;
            let mut k = 0;
            while k < seg.len() {
                let j = seg[k].0;
                let mut p = 0.0;
                while k < seg.len() && seg[k].0 == j {
                    p += seg[k].1;
                    k += 1;
                }
                sum += p;
                cols.push(j);
                probs.push(p);
            }
            if (sum - 1.0).abs() > crate::chain::ROW_SUM_TOLERANCE {
                return Err(ChainError::RowNotStochastic { state: i, sum });
            }
            row_ptr.push(cols.len());
        }
        Ok(SparseChain {
            states: self.states,
            index: self.index,
            cols,
            probs,
            row_ptr,
        })
    }
}

impl<S: Clone + Eq + Hash> Default for SparseChainBuilder<S> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn biased() -> SparseChain<&'static str> {
        let mut b = SparseChainBuilder::new();
        b.transition("a", "b", 1.0)
            .transition("b", "a", 0.5)
            .transition("b", "b", 0.5);
        b.build().unwrap()
    }

    #[test]
    fn stationary_matches_dense_result() {
        // Same chain as the dense test: π = (1/3, 2/3).
        let c = biased();
        let pi = c.stationary(100_000, 1e-13).unwrap();
        assert!((pi[0] - 1.0 / 3.0).abs() < 1e-9);
        assert!((pi[1] - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn adaptive_solver_matches_raw_solver() {
        let c = biased();
        let raw = c.stationary(100_000, 1e-12).unwrap();
        let adaptive = c
            .stationary_with(&PowerOptions::new(100_000, 1e-12), None)
            .unwrap();
        assert!(adaptive.stats.iterations > 0);
        assert!(adaptive.stats.residual.is_finite());
        for (a, b) in raw.iter().zip(&adaptive.pi) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn solver_publishes_metrics() {
        let m = Metrics::new();
        let c = biased();
        c.stationary_with(&PowerOptions::default(), Some(&m))
            .unwrap();
        let snap = m.snapshot();
        assert!(snap
            .counters
            .iter()
            .any(|(n, v)| n == "markov.stationary.solves" && *v == 1));
        assert!(snap
            .gauges
            .iter()
            .any(|(n, _)| n == "markov.stationary.wall_ms"));
    }

    #[test]
    fn periodic_chain_converges_via_laziness() {
        let mut b = SparseChainBuilder::new();
        b.transition(0, 1, 1.0).transition(1, 0, 1.0);
        let c = b.build().unwrap();
        let pi = c.stationary(100_000, 1e-12).unwrap();
        assert!((pi[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn irreducibility_detection() {
        assert!(biased().is_irreducible());
        let mut b = SparseChainBuilder::new();
        b.transition(0, 0, 1.0).transition(1, 1, 1.0);
        assert!(!b.build().unwrap().is_irreducible());
    }

    #[test]
    fn validation_matches_dense_builder() {
        let mut b = SparseChainBuilder::new();
        b.transition(0, 0, 0.5);
        assert!(matches!(
            b.build(),
            Err(ChainError::RowNotStochastic { state: 0, .. })
        ));
        let mut b = SparseChainBuilder::new();
        b.transition(0, 0, 1.5)
            .transition(0, 1, -0.5)
            .transition(1, 1, 1.0);
        assert!(matches!(
            b.build(),
            Err(ChainError::InvalidProbability { .. })
        ));
        assert!(matches!(
            SparseChainBuilder::<u8>::new().build(),
            Err(ChainError::Empty)
        ));
    }

    #[test]
    fn nnz_counts_transitions() {
        assert_eq!(biased().nnz(), 3);
    }

    #[test]
    fn csr_layout_is_sorted_and_sliced() {
        let c = biased();
        assert_eq!(c.row_cols(0), &[1]);
        assert_eq!(c.row_probs(0), &[1.0]);
        assert_eq!(c.row_cols(1), &[0, 1]);
        assert_eq!(c.row_probs(1), &[0.5, 0.5]);
        assert_eq!(c.prob(1, 0), 0.5);
        assert_eq!(c.prob(0, 0), 0.0);
    }

    #[test]
    fn accumulating_duplicate_entries() {
        let mut b = SparseChainBuilder::new();
        b.transition(0, 1, 0.5)
            .transition(0, 1, 0.5)
            .transition(1, 0, 1.0);
        let c = b.build().unwrap();
        assert_eq!(c.row(0).collect::<Vec<_>>(), vec![(1, 1.0)]);
    }

    #[test]
    fn step_distribution_preserves_mass() {
        let c = biased();
        let d = c.step_distribution(&[0.25, 0.75]);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dense_round_trip_preserves_probabilities() {
        let c = biased();
        let dense = c.to_dense().unwrap();
        assert_eq!(dense.states(), c.states());
        for i in 0..c.len() {
            for j in 0..c.len() {
                assert_eq!(dense.prob(i, j), c.prob(i, j), "({i}, {j})");
            }
        }
        let back = dense.to_sparse();
        assert_eq!(back.nnz(), c.nnz());
        for i in 0..c.len() {
            assert_eq!(back.row_cols(i), c.row_cols(i));
            assert_eq!(back.row_probs(i), c.row_probs(i));
        }
    }
}
