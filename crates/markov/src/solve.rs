//! Iterative-solver knobs and statistics shared by the sparse solvers
//! ([`crate::sparse`], [`crate::hitting`], [`crate::mixing`]).
//!
//! Every sparse solve reports how hard it worked ([`SolveStats`]) and,
//! when handed a [`pwf_obs::Metrics`] registry, publishes iteration
//! counts, final residuals, and wall time so `pwf run --metrics` and
//! the `BENCH_markov.json` trajectory can track solver cost across
//! sizes and PRs.

/// Re-export of the metrics registry the solvers publish into, so
/// downstream crates can thread a handle through without a direct
/// `pwf-obs` dependency.
pub use pwf_obs::Metrics;

/// Options for the lazy power-iteration stationary solver.
#[derive(Debug, Clone, Copy)]
pub struct PowerOptions {
    /// Iteration budget.
    pub max_iters: usize,
    /// Target accuracy (see [`adaptive`](Self::adaptive) for what is
    /// measured against it).
    pub tol: f64,
    /// With `adaptive` set, the stopping rule extrapolates the distance
    /// to the fixpoint from the geometric decay of successive L1
    /// deltas (`delta · r / (1 − r)` for observed rate `r`) and stops
    /// when that estimate drops below `tol` — a truer criterion than
    /// the raw per-step delta, which underestimates the remaining
    /// error on slowly-mixing chains. When unset, the raw delta is
    /// compared against `tol` (the historical behaviour).
    pub adaptive: bool,
}

impl Default for PowerOptions {
    fn default() -> Self {
        PowerOptions {
            max_iters: 500_000,
            tol: 1e-10,
            adaptive: true,
        }
    }
}

impl PowerOptions {
    /// Options with the given budget and tolerance, adaptive stopping.
    pub fn new(max_iters: usize, tol: f64) -> Self {
        PowerOptions {
            max_iters,
            tol,
            adaptive: true,
        }
    }

    /// Same options with adaptive stopping disabled (raw-delta rule).
    #[must_use]
    pub fn raw(mut self) -> Self {
        self.adaptive = false;
        self
    }
}

/// Options for the Gauss–Seidel hitting-time solver.
#[derive(Debug, Clone, Copy)]
pub struct GaussSeidelOptions {
    /// Sweep budget (one sweep updates every unknown once, in place).
    pub max_sweeps: usize,
    /// Stop when the largest absolute update in a sweep drops below
    /// this.
    pub tol: f64,
}

impl Default for GaussSeidelOptions {
    fn default() -> Self {
        GaussSeidelOptions {
            max_sweeps: 500_000,
            tol: 1e-10,
        }
    }
}

/// How hard an iterative solve worked, returned alongside its result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// Iterations (power steps or Gauss–Seidel sweeps) performed.
    pub iterations: usize,
    /// Final convergence measure: last L1 delta (power iteration) or
    /// last max absolute update (Gauss–Seidel).
    pub residual: f64,
    /// Wall time of the solve in milliseconds.
    pub wall_ms: f64,
}

/// Publishes one solve's statistics under `markov.<solver>.*`:
/// a running `solves`/`iterations` counter pair plus last-value
/// `residual` and `wall_ms` gauges.
pub(crate) fn record_solve(metrics: Option<&Metrics>, solver: &str, stats: &SolveStats) {
    let Some(m) = metrics else { return };
    m.counter_add(&format!("markov.{solver}.solves"), 1);
    m.counter_add(
        &format!("markov.{solver}.iterations"),
        stats.iterations as u64,
    );
    m.gauge_set(&format!("markov.{solver}.residual"), stats.residual);
    m.gauge_set(&format!("markov.{solver}.wall_ms"), stats.wall_ms);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = PowerOptions::default();
        assert!(p.adaptive);
        assert!(p.max_iters > 0 && p.tol > 0.0);
        let g = GaussSeidelOptions::default();
        assert!(g.max_sweeps > 0 && g.tol > 0.0);
    }

    #[test]
    fn raw_disables_adaptivity() {
        let p = PowerOptions::new(100, 1e-6).raw();
        assert!(!p.adaptive);
        assert_eq!(p.max_iters, 100);
    }

    #[test]
    fn record_solve_publishes_metrics() {
        let m = Metrics::new();
        record_solve(
            Some(&m),
            "stationary",
            &SolveStats {
                iterations: 42,
                residual: 1e-12,
                wall_ms: 0.5,
            },
        );
        record_solve(
            Some(&m),
            "stationary",
            &SolveStats {
                iterations: 8,
                residual: 1e-13,
                wall_ms: 0.1,
            },
        );
        let snap = m.snapshot();
        assert!(snap
            .counters
            .iter()
            .any(|(n, v)| n == "markov.stationary.solves" && *v == 2));
        assert!(snap
            .counters
            .iter()
            .any(|(n, v)| n == "markov.stationary.iterations" && *v == 50));
        assert!(snap
            .gauges
            .iter()
            .any(|(n, v)| n == "markov.stationary.residual" && *v == 1e-13));
    }

    #[test]
    fn record_solve_without_registry_is_a_noop() {
        record_solve(
            None,
            "hitting",
            &SolveStats {
                iterations: 1,
                residual: 0.0,
                wall_ms: 0.0,
            },
        );
    }
}
