//! Small dense linear algebra used by the chain solvers.
//!
//! Chains in this workspace are exact constructions over at most a few
//! thousand states, so a dense row-major matrix with Gaussian
//! elimination (partial pivoting) is both simple and fast enough. No
//! external linear-algebra dependency is needed.

use std::fmt;

/// A dense row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Errors produced by the linear solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The coefficient matrix is singular (or numerically so).
    Singular,
    /// Operand shapes do not match the operation.
    ShapeMismatch {
        /// What the operation expected, e.g. `"square matrix"`.
        expected: String,
        /// What was found, e.g. `"3x4"`.
        found: String,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::Singular => write!(f, "matrix is singular to working precision"),
            LinalgError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows.checked_mul(cols).expect("matrix dimensions overflow");
        Matrix {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable access to row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns the transpose.
    pub fn transposed(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Computes the matrix-vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "vector length must equal column count");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Computes the vector-matrix product `v * self` (row vector times
    /// matrix), the natural operation for distributions over states.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != rows`.
    pub fn vec_mul(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "vector length must equal row count");
        let mut out = vec![0.0; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            for (j, &pij) in self.row(i).iter().enumerate() {
                out[j] += vi * pij;
            }
        }
        out
    }

    /// Computes the matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn mul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "inner dimensions must agree for matrix product"
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        out
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

/// Solves the linear system `a · x = b` by Gaussian elimination with
/// partial pivoting, destroying neither operand.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] if `a` is not square or `b`
/// has the wrong length, and [`LinalgError::Singular`] if a pivot
/// smaller than `1e-12` in magnitude is encountered.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::ShapeMismatch {
            expected: "square matrix".into(),
            found: format!("{}x{}", a.rows(), a.cols()),
        });
    }
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch {
            expected: format!("rhs of length {n}"),
            found: format!("length {}", b.len()),
        });
    }

    // Augmented working copy.
    let mut m = a.clone();
    let mut rhs = b.to_vec();

    for col in 0..n {
        // Partial pivot: pick the largest magnitude entry in this column.
        let pivot_row = (col..n)
            .max_by(|&r1, &r2| {
                m[(r1, col)]
                    .abs()
                    .partial_cmp(&m[(r2, col)].abs())
                    .expect("matrix entries must not be NaN")
            })
            .expect("non-empty pivot range");
        if m[(pivot_row, col)].abs() < 1e-12 {
            return Err(LinalgError::Singular);
        }
        if pivot_row != col {
            for j in 0..n {
                let tmp = m[(col, j)];
                m[(col, j)] = m[(pivot_row, j)];
                m[(pivot_row, j)] = tmp;
            }
            rhs.swap(col, pivot_row);
        }

        let pivot = m[(col, col)];
        for row in col + 1..n {
            let factor = m[(row, col)] / pivot;
            if factor == 0.0 {
                continue;
            }
            for j in col..n {
                let v = m[(col, j)];
                m[(row, j)] -= factor * v;
            }
            rhs[row] -= factor * rhs[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = rhs[col];
        for j in col + 1..n {
            acc -= m[(col, j)] * x[j];
        }
        x[col] = acc / m[(col, col)];
    }
    Ok(x)
}

/// Maximum absolute component of `a·x − b`; a cheap a-posteriori check
/// on solver output.
///
/// # Panics
///
/// Panics if shapes are incompatible.
pub fn residual_inf_norm(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
    let ax = a.mul_vec(x);
    ax.iter()
        .zip(b)
        .map(|(l, r)| (l - r).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_returns_rhs() {
        let a = Matrix::identity(3);
        let b = vec![1.0, -2.0, 3.5];
        let x = solve(&a, &b).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn solves_known_system() {
        // 2x + y = 5 ; x + 3y = 10  =>  x = 1, y = 3
        let a = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let b = vec![5.0, 10.0];
        let x = solve(&a, &b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        let b = vec![1.0, 2.0];
        assert_eq!(solve(&a, &b), Err(LinalgError::Singular));
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            solve(&a, &[1.0, 2.0]),
            Err(LinalgError::ShapeMismatch { .. })
        ));
        let sq = Matrix::identity(2);
        assert!(matches!(
            solve(&sq, &[1.0]),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let b = vec![2.0, 3.0];
        let x = solve(&a, &b).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mul_vec_and_vec_mul_agree_with_transpose() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let v = vec![1.0, -1.0];
        let left = a.vec_mul(&v);
        let right = a.transposed().mul_vec(&v);
        for (l, r) in left.iter().zip(&right) {
            assert!((l - r).abs() < 1e-12);
        }
    }

    #[test]
    fn matrix_product_matches_manual() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let c = a.mul(&b);
        assert_eq!(c[(0, 0)], 2.0);
        assert_eq!(c[(0, 1)], 1.0);
        assert_eq!(c[(1, 0)], 4.0);
        assert_eq!(c[(1, 1)], 3.0);
    }

    #[test]
    fn residual_of_exact_solution_is_tiny() {
        let a = Matrix::from_rows(3, 3, vec![4.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0]);
        let b = vec![1.0, 2.0, 3.0];
        let x = solve(&a, &b).unwrap();
        assert!(residual_inf_norm(&a, &x, &b) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let a = Matrix::zeros(2, 2);
        let _ = a[(2, 0)];
    }
}
