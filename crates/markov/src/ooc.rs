//! Out-of-core CSR: row-batch streaming of a chain too large for RAM.
//!
//! [`SpilledChain`] writes an operator's rows once to a temporary
//! binary file and then serves them back through the
//! [`TransitionOperator`] interface with only one row *batch* resident
//! at a time — bounded memory regardless of `nnz`. In-memory state is
//! `O(states)` (one `u64` per row for the entry index) plus the
//! configured batch; the probabilities themselves live on disk.
//!
//! Zero-dep by construction: plain `std::fs` + little-endian byte
//! slices, no serialization crates. Rows round-trip exactly (`f64`
//! bits are preserved), so an operator solve through the spill is
//! bit-identical to the same solve on the source operator.
//!
//! The file is created in [`std::env::temp_dir`] and deleted on
//! [`Drop`].

use std::cell::RefCell;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::operator::TransitionOperator;

/// Bytes per stored entry: `u32` column + `f64` probability,
/// interleaved, little-endian.
const ENTRY_BYTES: u64 = 12;

/// Distinguishes spill files created by one process within one run;
/// combined with the PID so concurrent processes never collide.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// A row-stochastic chain spilled to a temporary file, streamed back
/// in bounded row batches.
#[derive(Debug)]
pub struct SpilledChain {
    path: PathBuf,
    file: RefCell<File>,
    n: usize,
    batch_rows: usize,
    /// `entry_ptr[i]..entry_ptr[i+1]` delimits row `i`'s entries in
    /// the file; length `n + 1`. The only per-row resident state.
    entry_ptr: Vec<u64>,
    cache: RefCell<Batch>,
}

/// The one resident batch: a contiguous run of `batch_rows` rows in
/// local CSR form.
#[derive(Debug)]
struct Batch {
    /// Batch index, `usize::MAX` while empty.
    index: usize,
    /// Local row pointers (first row of the batch at 0).
    row_ptr: Vec<usize>,
    cols: Vec<u32>,
    probs: Vec<f64>,
    /// Reused read buffer.
    bytes: Vec<u8>,
}

impl SpilledChain {
    /// Streams every row of `op` to a fresh temporary file and returns
    /// the spilled chain, configured to keep `batch_rows` rows
    /// resident.
    ///
    /// # Errors
    ///
    /// Propagates file creation and write errors.
    ///
    /// # Panics
    ///
    /// Panics if `op` is empty or `batch_rows == 0`.
    pub fn spill<O: TransitionOperator + ?Sized>(op: &O, batch_rows: usize) -> io::Result<Self> {
        let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("pwf-spill-{}-{seq}.csr", std::process::id()));
        Self::spill_to(op, batch_rows, path)
    }

    /// [`spill`](Self::spill) to an explicit path (the file is still
    /// deleted on drop).
    ///
    /// # Errors
    ///
    /// Propagates file creation and write errors.
    ///
    /// # Panics
    ///
    /// Panics if `op` is empty or `batch_rows == 0`.
    pub fn spill_to<O: TransitionOperator + ?Sized>(
        op: &O,
        batch_rows: usize,
        path: PathBuf,
    ) -> io::Result<Self> {
        let n = op.len();
        assert!(n > 0, "cannot spill an empty operator");
        assert!(batch_rows > 0, "batch must hold at least one row");

        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let mut writer = BufWriter::new(file);
        let mut entry_ptr = Vec::with_capacity(n + 1);
        entry_ptr.push(0u64);
        let mut row = Vec::new();
        for i in 0..n {
            op.row_into(i, &mut row);
            for &(j, p) in &row {
                writer.write_all(&j.to_le_bytes())?;
                writer.write_all(&p.to_le_bytes())?;
            }
            entry_ptr.push(entry_ptr[i] + row.len() as u64);
        }
        writer.flush()?;
        let file = writer.into_inner().map_err(io::Error::from)?;

        Ok(SpilledChain {
            path,
            file: RefCell::new(file),
            n,
            batch_rows,
            entry_ptr,
            cache: RefCell::new(Batch {
                index: usize::MAX,
                row_ptr: Vec::new(),
                cols: Vec::new(),
                probs: Vec::new(),
                bytes: Vec::new(),
            }),
        })
    }

    /// Total number of stored transitions.
    pub fn nnz(&self) -> usize {
        *self.entry_ptr.last().expect("non-empty") as usize
    }

    /// Rows per resident batch.
    pub fn batch_rows(&self) -> usize {
        self.batch_rows
    }

    /// The backing file's path (deleted when the chain is dropped).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Loads the batch containing rows
    /// `[b·batch_rows, min((b+1)·batch_rows, n))` if it is not already
    /// resident.
    fn load_batch(&self, b: usize) -> io::Result<()> {
        let mut cache = self.cache.borrow_mut();
        if cache.index == b {
            return Ok(());
        }
        let first = b * self.batch_rows;
        let last = ((b + 1) * self.batch_rows).min(self.n);
        let start_entry = self.entry_ptr[first];
        let end_entry = self.entry_ptr[last];
        let nbytes = ((end_entry - start_entry) * ENTRY_BYTES) as usize;

        cache.bytes.resize(nbytes, 0);
        {
            let mut file = self.file.borrow_mut();
            file.seek(SeekFrom::Start(start_entry * ENTRY_BYTES))?;
            file.read_exact(&mut cache.bytes)?;
        }

        cache.row_ptr.clear();
        cache.cols.clear();
        cache.probs.clear();
        for i in first..=last {
            cache
                .row_ptr
                .push((self.entry_ptr[i] - start_entry) as usize);
        }
        let entries = (end_entry - start_entry) as usize;
        for e in 0..entries {
            let at = e * ENTRY_BYTES as usize;
            let col = u32::from_le_bytes(cache.bytes[at..at + 4].try_into().expect("4 bytes"));
            let prob =
                f64::from_le_bytes(cache.bytes[at + 4..at + 12].try_into().expect("8 bytes"));
            cache.cols.push(col);
            cache.probs.push(prob);
        }
        cache.index = b;
        Ok(())
    }
}

impl TransitionOperator for SpilledChain {
    fn len(&self) -> usize {
        self.n
    }

    /// # Panics
    ///
    /// Panics if `i` is out of bounds or the spill file can no longer
    /// be read (e.g. deleted mid-solve).
    fn row_into(&self, i: usize, row: &mut Vec<(u32, f64)>) {
        assert!(i < self.n, "row {i} out of bounds ({})", self.n);
        self.load_batch(i / self.batch_rows)
            .expect("spill file read failed");
        let cache = self.cache.borrow();
        let local = i % self.batch_rows;
        let (lo, hi) = (cache.row_ptr[local], cache.row_ptr[local + 1]);
        row.clear();
        row.extend(
            cache.cols[lo..hi]
                .iter()
                .copied()
                .zip(cache.probs[lo..hi].iter().copied()),
        );
    }

    fn resident_rows(&self) -> usize {
        self.batch_rows.min(self.n)
    }
}

impl Drop for SpilledChain {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::stationary_operator;
    use crate::solve::PowerOptions;
    use crate::sparse::{SparseChain, SparseChainBuilder};

    fn ring(n: usize) -> SparseChain<usize> {
        let mut b = SparseChainBuilder::new();
        for i in 0..n {
            b.transition(i, (i + 1) % n, 0.7).transition(i, i, 0.3);
        }
        b.build().unwrap()
    }

    #[test]
    fn spilled_rows_round_trip_exactly() {
        let c = ring(101);
        let s = SpilledChain::spill(&c, 16).unwrap();
        assert_eq!(s.len(), c.len());
        assert_eq!(s.nnz(), c.nnz());
        assert_eq!(s.resident_rows(), 16);
        let mut row = Vec::new();
        // Sweep forwards then backwards so batches reload.
        for i in (0..c.len()).chain((0..c.len()).rev()) {
            s.row_into(i, &mut row);
            let want: Vec<(u32, f64)> = c.row(i).collect();
            assert_eq!(row, want, "row {i}");
        }
    }

    #[test]
    fn spilled_apply_is_bit_exact_vs_csr() {
        let c = ring(64);
        let s = SpilledChain::spill(&c, 7).unwrap();
        let dist: Vec<f64> = (0..c.len()).map(|i| (i % 4) as f64 / 96.0).collect();
        let mut want = vec![0.0; c.len()];
        let mut got = vec![0.0; c.len()];
        c.step_into(&dist, &mut want);
        s.apply_into(&dist, &mut got);
        assert_eq!(want, got);
    }

    #[test]
    fn spilled_stationary_solve_is_bit_exact() {
        let c = ring(40);
        let s = SpilledChain::spill(&c, 8).unwrap();
        let opts = PowerOptions::new(200_000, 1e-12);
        let direct = c.stationary_with(&opts, None).unwrap();
        let spilled = stationary_operator(&s, &opts, None).unwrap();
        assert_eq!(direct.pi, spilled.pi);
        assert_eq!(direct.stats.iterations, spilled.stats.iterations);
    }

    #[test]
    fn batch_larger_than_chain_is_fine() {
        let c = ring(5);
        let s = SpilledChain::spill(&c, 1000).unwrap();
        assert_eq!(s.resident_rows(), 5);
        let mut row = Vec::new();
        s.row_into(4, &mut row);
        assert_eq!(row, c.row(4).collect::<Vec<_>>());
    }

    #[test]
    fn drop_deletes_the_spill_file() {
        let c = ring(6);
        let s = SpilledChain::spill(&c, 2).unwrap();
        let path = s.path().to_path_buf();
        assert!(path.exists());
        drop(s);
        assert!(!path.exists());
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn zero_batch_panics() {
        let _ = SpilledChain::spill(&ring(3), 0);
    }
}
