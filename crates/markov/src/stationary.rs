//! Stationary distributions and return times (Theorem 1 of the paper:
//! an irreducible finite chain has a unique stationary distribution
//! `π` with `π_j = 1 / h_jj`).

use std::fmt;
use std::hash::Hash;

use crate::chain::MarkovChain;
use crate::linalg::{self, LinalgError, Matrix};
use crate::structure;

/// Errors from the stationary-distribution solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum StationaryError {
    /// The chain is not irreducible, so Theorem 1 does not apply and
    /// the stationary distribution is not unique.
    NotIrreducible,
    /// The underlying linear solve failed.
    Linalg(LinalgError),
    /// Power iteration failed to converge within the step budget.
    NotConverged {
        /// Number of iterations performed.
        iterations: usize,
        /// Final L1 change between successive iterates.
        delta: f64,
    },
}

impl fmt::Display for StationaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StationaryError::NotIrreducible => {
                write!(
                    f,
                    "chain is not irreducible; stationary distribution not unique"
                )
            }
            StationaryError::Linalg(e) => write!(f, "linear solve failed: {e}"),
            StationaryError::NotConverged { iterations, delta } => {
                write!(
                    f,
                    "power iteration did not converge after {iterations} steps (delta {delta})"
                )
            }
        }
    }
}

impl std::error::Error for StationaryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StationaryError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for StationaryError {
    fn from(e: LinalgError) -> Self {
        StationaryError::Linalg(e)
    }
}

/// Computes the unique stationary distribution of an irreducible chain
/// by solving `π (P − I) = 0` with the normalization `Σ π = 1`
/// substituted for one (redundant) balance equation.
///
/// # Errors
///
/// Returns [`StationaryError::NotIrreducible`] if the chain is not
/// irreducible, or a [`StationaryError::Linalg`] error if the solve
/// fails numerically.
pub fn stationary_distribution<S: Clone + Eq + Hash>(
    chain: &MarkovChain<S>,
) -> Result<Vec<f64>, StationaryError> {
    if !structure::is_irreducible(chain) {
        return Err(StationaryError::NotIrreducible);
    }
    let n = chain.len();
    // Build Aᵀ where A = Pᵀ − I with the last row replaced by the
    // normalization constraint Σ π_j = 1.
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            // Balance equations: Σ_i π_i p_ij = π_j  ⇔ column j of
            // (Pᵀ − I) dotted with π is 0.
            a[(j, i)] = chain.prob(i, j) - if i == j { 1.0 } else { 0.0 };
        }
    }
    let mut b = vec![0.0; n];
    for j in 0..n {
        a[(n - 1, j)] = 1.0;
    }
    b[n - 1] = 1.0;
    let mut pi = linalg::solve(&a, &b)?;
    // Clamp tiny negative round-off and renormalize.
    for p in &mut pi {
        if *p < 0.0 && *p > -1e-9 {
            *p = 0.0;
        }
    }
    let total: f64 = pi.iter().sum();
    for p in &mut pi {
        *p /= total;
    }
    Ok(pi)
}

/// Computes the stationary distribution by power iteration from the
/// uniform distribution, averaging consecutive iterates so periodic
/// chains' Cesàro limits also converge. Primarily a cross-check for
/// [`stationary_distribution`].
///
/// # Errors
///
/// Returns [`StationaryError::NotConverged`] if the L1 change between
/// successive (averaged) iterates stays above `tol` for `max_iters`
/// steps.
pub fn stationary_by_power_iteration<S: Clone + Eq + Hash>(
    chain: &MarkovChain<S>,
    max_iters: usize,
    tol: f64,
) -> Result<Vec<f64>, StationaryError> {
    let n = chain.len();
    let mut dist = vec![1.0 / n as f64; n];
    let mut delta = f64::INFINITY;
    for _ in 0..max_iters {
        let stepped = chain.step_distribution(&dist);
        // Lazy averaging: converges for ergodic chains and damps
        // oscillation on nearly-periodic ones.
        let next: Vec<f64> = dist
            .iter()
            .zip(&stepped)
            .map(|(a, b)| 0.5 * a + 0.5 * b)
            .collect();
        delta = next.iter().zip(&dist).map(|(a, b)| (a - b).abs()).sum();
        dist = next;
        if delta < tol {
            return Ok(dist);
        }
    }
    // `delta` is the last observed change (infinite only if
    // `max_iters == 0`).
    Err(StationaryError::NotConverged {
        iterations: max_iters,
        delta,
    })
}

/// Expected return times `h_jj = 1 / π_j` for every state (Theorem 1).
///
/// # Errors
///
/// Propagates the errors of [`stationary_distribution`].
pub fn return_times<S: Clone + Eq + Hash>(
    chain: &MarkovChain<S>,
) -> Result<Vec<f64>, StationaryError> {
    let pi = stationary_distribution(chain)?;
    Ok(pi.iter().map(|p| 1.0 / p).collect())
}

/// Maximum violation of the balance equations `π P = π`; useful in
/// tests and as an a-posteriori solver check.
///
/// # Panics
///
/// Panics if `pi.len() != chain.len()`.
pub fn balance_residual<S: Clone + Eq + Hash>(chain: &MarkovChain<S>, pi: &[f64]) -> f64 {
    assert_eq!(
        pi.len(),
        chain.len(),
        "distribution length must match chain"
    );
    let stepped = chain.step_distribution(pi);
    stepped
        .iter()
        .zip(pi)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ChainBuilder;

    fn biased_two_state() -> MarkovChain<&'static str> {
        // π = (1/3, 2/3): flows 1·(2/3)·(1/2) = (1/3)·1? Check:
        // a -> b w.p. 1; b -> a w.p. 0.5, b -> b w.p. 0.5.
        // Balance: π_a = 0.5 π_b; π_a + π_b = 1 ⇒ π = (1/3, 2/3).
        ChainBuilder::new()
            .transition("a", "b", 1.0)
            .transition("b", "a", 0.5)
            .transition("b", "b", 0.5)
            .build()
            .unwrap()
    }

    #[test]
    fn stationary_of_biased_two_state() {
        let c = biased_two_state();
        let pi = stationary_distribution(&c).unwrap();
        assert!((pi[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((pi[1] - 2.0 / 3.0).abs() < 1e-12);
        assert!(balance_residual(&c, &pi) < 1e-12);
    }

    #[test]
    fn power_iteration_agrees_with_direct_solve() {
        let c = biased_two_state();
        let direct = stationary_distribution(&c).unwrap();
        let power = stationary_by_power_iteration(&c, 10_000, 1e-13).unwrap();
        for (d, p) in direct.iter().zip(&power) {
            assert!((d - p).abs() < 1e-9);
        }
    }

    #[test]
    fn return_times_are_reciprocal_probabilities() {
        let c = biased_two_state();
        let h = return_times(&c).unwrap();
        assert!((h[0] - 3.0).abs() < 1e-9);
        assert!((h[1] - 1.5).abs() < 1e-9);
    }

    #[test]
    fn uniform_chain_has_uniform_stationary() {
        let n = 5;
        let mut b = ChainBuilder::new();
        for i in 0..n {
            for j in 0..n {
                b = b.transition(i, j, 1.0 / n as f64);
            }
        }
        let c = b.build().unwrap();
        let pi = stationary_distribution(&c).unwrap();
        for p in pi {
            assert!((p - 1.0 / n as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn reducible_chain_is_rejected() {
        let c = ChainBuilder::new()
            .transition(0, 0, 1.0)
            .transition(1, 1, 1.0)
            .build()
            .unwrap();
        assert_eq!(
            stationary_distribution(&c).unwrap_err(),
            StationaryError::NotIrreducible
        );
    }

    #[test]
    fn periodic_chain_power_iteration_converges_via_averaging() {
        // Pure 2-cycle: period 2, but lazy averaging converges to the
        // Cesàro limit (1/2, 1/2), which is also the stationary vector.
        let c = ChainBuilder::new()
            .transition(0, 1, 1.0)
            .transition(1, 0, 1.0)
            .build()
            .unwrap();
        let pi = stationary_by_power_iteration(&c, 10_000, 1e-12).unwrap();
        assert!((pi[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn exhausted_budget_reports_last_delta() {
        // Sticky chain far from uniform start: cannot converge to
        // 1e-15 in 3 steps, and the error must carry the finite delta
        // actually observed on the last iteration.
        let c = ChainBuilder::new()
            .transition(0, 0, 0.999)
            .transition(0, 1, 0.001)
            .transition(1, 1, 0.5)
            .transition(1, 0, 0.5)
            .build()
            .unwrap();
        let err = stationary_by_power_iteration(&c, 3, 1e-15).unwrap_err();
        match err {
            StationaryError::NotConverged { iterations, delta } => {
                assert_eq!(iterations, 3);
                assert!(delta.is_finite() && delta > 0.0);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn random_walk_on_weighted_cycle() {
        // Walk on 3-cycle with asymmetric probabilities still doubly
        // stochastic? No — use a chain with known stationary: birth-
        // death 0<->1<->2 with p_up = 0.4 at 0→1, etc. Simpler: verify
        // the solution satisfies balance to high precision.
        let c = ChainBuilder::new()
            .transition(0, 1, 0.4)
            .transition(0, 0, 0.6)
            .transition(1, 2, 0.3)
            .transition(1, 0, 0.2)
            .transition(1, 1, 0.5)
            .transition(2, 1, 0.7)
            .transition(2, 2, 0.3)
            .build()
            .unwrap();
        let pi = stationary_distribution(&c).unwrap();
        assert!(balance_residual(&c, &pi) < 1e-12);
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(pi.iter().all(|&p| p > 0.0));
    }
}
