//! Implicit transition operators: `y = x·P` computed on the fly.
//!
//! The paper's chains are *generated* objects — the SCU system chain's
//! row at `(a, b)` is three closed-form entries, the FAI global
//! chain's row at `v_i` is two — so materializing a CSR matrix is a
//! convenience, not a necessity. [`TransitionOperator`] abstracts the
//! only two capabilities the iterative solvers actually use: the state
//! count and on-demand row generation. Everything downstream —
//! stationary power iteration ([`stationary_operator`]), Gauss–Seidel
//! hitting times ([`crate::hitting::operator_hitting_times`]), TV
//! mixing ([`crate::mixing::operator_lazy_mixing_time`]), and the
//! lifting kernel check ([`crate::lifting::RowResidualScratch`]) — is
//! generic over the operator, so a chain family can be solved at any
//! `n` whose *state count* fits in memory, with `O(1)` rows resident.
//!
//! [`crate::sparse::SparseChain`] implements the trait by delegating
//! to its CSR kernels, **bit-exactly**: an operator-generic solve on a
//! `SparseChain` performs the identical float operations in the
//! identical order as the historical CSR solve, so the sparse engine
//! remains the drop-in oracle for implicit operators.
//!
//! [`DenseBlockOperator`] is the cache-blocked dense kernel for small
//! sub-blocks that survive symmetry reduction: tiles of `B × B` stored
//! contiguously so the `y = x·P` sweep streams each tile once. Its
//! accumulation order differs from the CSR kernel, so it is compared
//! by tolerance, never byte-for-byte.

use std::time::Instant;

use pwf_obs::Metrics;

use crate::solve::{record_solve, PowerOptions, SolveStats};
use crate::sparse::StationarySolve;
use crate::stationary::StationaryError;

/// An implicit row-stochastic transition matrix: the minimal surface
/// the iterative solvers need, dyn-compatible so heterogeneous chain
/// families can share one solver instantiation.
///
/// Implementations must generate rows deterministically — two calls to
/// [`row_into`](Self::row_into) for the same `i` must produce the same
/// entries in the same order, with column indices strictly increasing
/// (the CSR invariant). Solvers rely on this for reproducible float
/// arithmetic.
pub trait TransitionOperator {
    /// Number of states.
    fn len(&self) -> usize;

    /// Whether the operator has no states (never true for a valid
    /// chain).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Generates row `i` into `row` as `(target, prob)` pairs with
    /// strictly increasing targets, replacing its previous contents.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    fn row_into(&self, i: usize, row: &mut Vec<(u32, f64)>);

    /// One step applied to a distribution: `out = dist·P`.
    ///
    /// The default implementation scatters row by row in ascending
    /// state order, skipping zero entries of `dist` — the identical
    /// float schedule as [`crate::sparse::SparseChain::step_into`], so
    /// implicit operators whose rows match a CSR chain's rows produce
    /// bit-identical iterates.
    ///
    /// # Panics
    ///
    /// Panics if either length differs from `len()`.
    fn apply_into(&self, dist: &[f64], out: &mut [f64]) {
        assert_eq!(dist.len(), self.len(), "distribution length mismatch");
        assert_eq!(out.len(), self.len(), "output length mismatch");
        out.fill(0.0);
        let mut row: Vec<(u32, f64)> = Vec::new();
        for (i, &qi) in dist.iter().enumerate() {
            if qi == 0.0 {
                continue;
            }
            self.row_into(i, &mut row);
            for &(j, p) in &row {
                out[j as usize] += qi * p;
            }
        }
    }

    /// Upper bound on the number of matrix rows the operator keeps
    /// resident in memory at any moment: `len()` for stored
    /// representations (CSR, dense), the batch size for out-of-core
    /// streaming, `1` for purely generated rows. Reported by
    /// `exp_markov_bench` as the memory half of the matrix-free
    /// trade-off.
    fn resident_rows(&self) -> usize;
}

/// Stationary distribution of any [`TransitionOperator`] by lazy power
/// iteration (`q ← q(I + P)/2`) from uniform, with the adaptive
/// geometric-extrapolation stopping rule of [`PowerOptions`] and
/// optional solver metrics (`markov.stationary.*`).
///
/// This is *the* stationary solver:
/// [`crate::sparse::SparseChain::stationary_with`] delegates here, and
/// for a `SparseChain` the iterates are bit-identical to the
/// historical CSR loop.
///
/// # Errors
///
/// Returns [`StationaryError::NotConverged`] when the budget runs out;
/// the error carries the last observed delta. (Irreducibility is
/// assumed, not checked.)
pub fn stationary_operator<O: TransitionOperator + ?Sized>(
    op: &O,
    opts: &PowerOptions,
    metrics: Option<&Metrics>,
) -> Result<StationarySolve, StationaryError> {
    let n = op.len();
    let start = Instant::now();
    let mut dist = vec![1.0 / n as f64; n];
    let mut next = vec![0.0; n];
    let mut delta = f64::INFINITY;
    let mut prev_delta = f64::INFINITY;
    for it in 1..=opts.max_iters {
        op.apply_into(&dist, &mut next);
        delta = 0.0;
        for (d, s) in dist.iter_mut().zip(&next) {
            let v = 0.5 * *d + 0.5 * s;
            delta += (v - *d).abs();
            *d = v;
        }
        let remaining = if opts.adaptive && prev_delta.is_finite() {
            // Geometric extrapolation: with observed decay rate
            // r = δ_t/δ_{t−1}, the distance left to the fixpoint
            // is ≈ δ·r/(1 − r). Fall back to the raw delta while
            // the rate estimate is unusable (first step, exact
            // convergence, or non-contracting transients); cap the
            // estimate below by δ so a transiently tiny rate can
            // never fake convergence.
            let rate = delta / prev_delta;
            if rate > 0.0 && rate < 1.0 {
                f64::max(delta, delta * rate / (1.0 - rate))
            } else {
                delta
            }
        } else {
            delta
        };
        prev_delta = delta;
        if remaining < opts.tol {
            let stats = SolveStats {
                iterations: it,
                residual: delta,
                wall_ms: start.elapsed().as_secs_f64() * 1e3,
            };
            record_solve(metrics, "stationary", &stats);
            return Ok(StationarySolve { pi: dist, stats });
        }
    }
    record_solve(
        metrics,
        "stationary",
        &SolveStats {
            iterations: opts.max_iters,
            residual: delta,
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
        },
    );
    Err(StationaryError::NotConverged {
        iterations: opts.max_iters,
        delta,
    })
}

/// Default tile edge for [`DenseBlockOperator`]: 64 × 64 tiles of
/// `f64` are 32 KiB — half a typical L1d — so one input tile row and
/// one output slice stay cache-resident through the inner loop.
pub const DEFAULT_BLOCK: usize = 64;

/// A dense transition matrix stored in contiguous `B × B` tiles, with
/// a cache-blocked `y = x·P` kernel.
///
/// This is the kernel for the dense sub-blocks that survive symmetry
/// reduction: small enough to store (`O(n²)` memory — keep `n` in the
/// thousands), hot enough that the row-major scatter's column-strided
/// writes dominate. Tiling makes every inner loop a unit-stride
/// multiply-accumulate over one resident tile.
///
/// The accumulation order differs from the CSR scatter, so results
/// agree with [`crate::sparse::SparseChain`] to rounding, not
/// bitwise.
#[derive(Debug, Clone)]
pub struct DenseBlockOperator {
    n: usize,
    block: usize,
    /// Tiles per dimension: `ceil(n / block)`.
    nb: usize,
    /// Tile `(ib, jb)` starts at `(ib·nb + jb)·block²`, row-major
    /// inside the tile, zero-padded at the fringe.
    tiles: Vec<f64>,
}

impl DenseBlockOperator {
    /// Densifies any operator into tiled form with the given tile
    /// edge.
    ///
    /// # Panics
    ///
    /// Panics if `block == 0` or the operator is empty.
    pub fn from_operator<O: TransitionOperator + ?Sized>(op: &O, block: usize) -> Self {
        assert!(block > 0, "tile edge must be positive");
        let n = op.len();
        assert!(n > 0, "cannot densify an empty operator");
        let nb = n.div_ceil(block);
        let mut tiles = vec![0.0; nb * nb * block * block];
        let mut row = Vec::new();
        for i in 0..n {
            op.row_into(i, &mut row);
            let (ib, r) = (i / block, i % block);
            for &(j, p) in &row {
                let (jb, c) = (j as usize / block, j as usize % block);
                tiles[(ib * nb + jb) * block * block + r * block + c] = p;
            }
        }
        DenseBlockOperator {
            n,
            block,
            nb,
            tiles,
        }
    }

    /// The tile edge in use.
    pub fn block(&self) -> usize {
        self.block
    }
}

impl TransitionOperator for DenseBlockOperator {
    fn len(&self) -> usize {
        self.n
    }

    fn row_into(&self, i: usize, row: &mut Vec<(u32, f64)>) {
        assert!(i < self.n, "row {i} out of bounds ({})", self.n);
        row.clear();
        let b = self.block;
        let (ib, r) = (i / b, i % b);
        for jb in 0..self.nb {
            let tile = &self.tiles[(ib * self.nb + jb) * b * b..][r * b..r * b + b];
            let col_base = jb * b;
            for (c, &p) in tile.iter().enumerate() {
                if p != 0.0 && col_base + c < self.n {
                    row.push(((col_base + c) as u32, p));
                }
            }
        }
    }

    fn apply_into(&self, dist: &[f64], out: &mut [f64]) {
        assert_eq!(dist.len(), self.n, "distribution length mismatch");
        assert_eq!(out.len(), self.n, "output length mismatch");
        out.fill(0.0);
        let b = self.block;
        for ib in 0..self.nb {
            let row_base = ib * b;
            let rows = b.min(self.n - row_base);
            for jb in 0..self.nb {
                let col_base = jb * b;
                let cols = b.min(self.n - col_base);
                let tile = &self.tiles[(ib * self.nb + jb) * b * b..][..b * b];
                let orow = &mut out[col_base..col_base + cols];
                for r in 0..rows {
                    let qi = dist[row_base + r];
                    if qi == 0.0 {
                        continue;
                    }
                    let trow = &tile[r * b..r * b + cols];
                    for (o, &t) in orow.iter_mut().zip(trow) {
                        *o += qi * t;
                    }
                }
            }
        }
    }

    fn resident_rows(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::{SparseChain, SparseChainBuilder};

    fn ring(n: usize) -> SparseChain<usize> {
        // Asymmetric ring with self-loops: irreducible, aperiodic-ish
        // under laziness, every row nontrivial.
        let mut b = SparseChainBuilder::new();
        for i in 0..n {
            b.transition(i, (i + 1) % n, 0.6)
                .transition(i, (i + 2) % n, 0.3)
                .transition(i, i, 0.1);
        }
        b.build().unwrap()
    }

    #[test]
    fn sparse_chain_apply_is_bit_exact_vs_step_into() {
        let c = ring(37);
        let dist: Vec<f64> = (0..c.len()).map(|i| (i % 5) as f64 / 74.0).collect();
        let mut a = vec![0.0; c.len()];
        let mut b = vec![0.0; c.len()];
        c.step_into(&dist, &mut a);
        TransitionOperator::apply_into(&c, &dist, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn default_apply_matches_csr_kernel_bitwise() {
        // The default row-scatter apply on rows copied out of the CSR
        // must replay the identical float schedule as step_into.
        struct RowView<'a>(&'a SparseChain<usize>);
        impl TransitionOperator for RowView<'_> {
            fn len(&self) -> usize {
                self.0.len()
            }
            fn row_into(&self, i: usize, row: &mut Vec<(u32, f64)>) {
                row.clear();
                row.extend(self.0.row(i));
            }
            fn resident_rows(&self) -> usize {
                1
            }
        }
        let c = ring(53);
        let dist: Vec<f64> = (0..c.len()).map(|i| (i % 7) as f64 / 159.0).collect();
        let mut want = vec![0.0; c.len()];
        let mut got = vec![0.0; c.len()];
        c.step_into(&dist, &mut want);
        RowView(&c).apply_into(&dist, &mut got);
        assert_eq!(want, got);
    }

    #[test]
    fn stationary_operator_is_bit_exact_vs_sparse_solver() {
        let c = ring(64);
        let opts = PowerOptions::new(200_000, 1e-12);
        let direct = c.stationary_with(&opts, None).unwrap();
        let via_op = stationary_operator(&c, &opts, None).unwrap();
        assert_eq!(direct.pi, via_op.pi);
        assert_eq!(direct.stats.iterations, via_op.stats.iterations);
        assert_eq!(direct.stats.residual, via_op.stats.residual);
    }

    #[test]
    fn dense_block_operator_matches_sparse_apply_to_rounding() {
        let c = ring(97);
        for block in [4usize, 16, 64, 128] {
            let d = DenseBlockOperator::from_operator(&c, block);
            assert_eq!(d.len(), c.len());
            assert_eq!(d.block(), block);
            let dist: Vec<f64> = (0..c.len()).map(|i| (i % 3) as f64 / 97.0).collect();
            let mut want = vec![0.0; c.len()];
            let mut got = vec![0.0; c.len()];
            c.step_into(&dist, &mut want);
            d.apply_into(&dist, &mut got);
            for (i, (a, b)) in want.iter().zip(&got).enumerate() {
                assert!(
                    (a - b).abs() < 1e-14,
                    "block {block}, state {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn dense_block_rows_reproduce_csr_rows() {
        let c = ring(41);
        let d = DenseBlockOperator::from_operator(&c, 8);
        let mut got = Vec::new();
        for i in 0..c.len() {
            d.row_into(i, &mut got);
            let want: Vec<(u32, f64)> = c.row(i).collect();
            assert_eq!(got, want, "row {i}");
        }
    }

    #[test]
    fn dense_block_stationary_agrees_with_sparse_to_tolerance() {
        let c = ring(50);
        let opts = PowerOptions::new(200_000, 1e-12);
        let pi_csr = c.stationary_with(&opts, None).unwrap().pi;
        let d = DenseBlockOperator::from_operator(&c, DEFAULT_BLOCK);
        let pi_blk = stationary_operator(&d, &opts, None).unwrap().pi;
        for (a, b) in pi_csr.iter().zip(&pi_blk) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn resident_rows_reflect_representation() {
        let c = ring(10);
        assert_eq!(TransitionOperator::resident_rows(&c), 10);
        let d = DenseBlockOperator::from_operator(&c, 4);
        assert_eq!(d.resident_rows(), 10);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn dense_block_row_out_of_bounds_panics() {
        let d = DenseBlockOperator::from_operator(&ring(5), 4);
        let mut row = Vec::new();
        d.row_into(5, &mut row);
    }
}
