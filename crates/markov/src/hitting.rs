//! Expected hitting times `h_ij = E[T_ij]` (paper, Section 3).
//!
//! For a fixed target `j`, the vector `h_·j` solves the linear system
//! `h_ij = 1 + Σ_{k ≠ j} p_ik h_kj` for `i ≠ j`, and the return time is
//! `h_jj = 1 + Σ_{k ≠ j} p_jk h_kj`.

use std::hash::Hash;

use crate::chain::MarkovChain;
use crate::linalg::{self, Matrix};
use crate::stationary::StationaryError;
use crate::structure;

/// Expected hitting times from every state to `target`.
///
/// Index `target` of the result holds the expected *return* time
/// `h_jj` (first revisit after leaving), matching Theorem 1's
/// `h_jj = 1/π_j` for irreducible chains.
///
/// # Errors
///
/// Returns [`StationaryError::NotIrreducible`] when some state cannot
/// reach `target` (the hitting time would be infinite), or a linear
/// algebra error.
///
/// # Panics
///
/// Panics if `target >= chain.len()`.
pub fn hitting_times<S: Clone + Eq + Hash>(
    chain: &MarkovChain<S>,
    target: usize,
) -> Result<Vec<f64>, StationaryError> {
    let n = chain.len();
    assert!(target < n, "target state {target} out of bounds ({n})");
    if !structure::is_irreducible(chain) {
        // A reducible chain may still have all states reaching the
        // target, but the paper only needs the irreducible case; be
        // conservative and refuse.
        return Err(StationaryError::NotIrreducible);
    }

    // Unknowns: h_kj for k ≠ target, in chain order skipping target.
    let reduced: Vec<usize> = (0..n).filter(|&k| k != target).collect();
    let m = reduced.len();
    let mut a = Matrix::zeros(m, m);
    let b = vec![1.0; m];
    for (row, &i) in reduced.iter().enumerate() {
        for (col, &k) in reduced.iter().enumerate() {
            a[(row, col)] = if i == k { 1.0 } else { 0.0 } - chain.prob(i, k);
        }
    }
    let h_reduced = linalg::solve(&a, &b)?;

    let mut h = vec![0.0; n];
    for (idx, &k) in reduced.iter().enumerate() {
        h[k] = h_reduced[idx];
    }
    // Return time for the target itself.
    let mut ret = 1.0;
    for (idx, &k) in reduced.iter().enumerate() {
        ret += chain.prob(target, k) * h_reduced[idx];
    }
    h[target] = ret;
    Ok(h)
}

/// Expected return time `h_jj` of a single state, as a convenience.
///
/// # Errors
///
/// Propagates the errors of [`hitting_times`].
///
/// # Panics
///
/// Panics if `state >= chain.len()`.
pub fn return_time<S: Clone + Eq + Hash>(
    chain: &MarkovChain<S>,
    state: usize,
) -> Result<f64, StationaryError> {
    Ok(hitting_times(chain, state)?[state])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ChainBuilder;
    use crate::stationary::stationary_distribution;

    #[test]
    fn symmetric_two_state_hitting_times() {
        // Flip with probability p: expected hitting time to the other
        // state is 1/p; return time is 2 (uniform stationary).
        let p = 0.25;
        let c = ChainBuilder::new()
            .transition(0, 1, p)
            .transition(0, 0, 1.0 - p)
            .transition(1, 0, p)
            .transition(1, 1, 1.0 - p)
            .build()
            .unwrap();
        let h = hitting_times(&c, 1).unwrap();
        assert!((h[0] - 1.0 / p).abs() < 1e-9);
        assert!((h[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn return_times_match_reciprocal_stationary() {
        // Theorem 1 cross-check on an asymmetric ergodic chain.
        let c = ChainBuilder::new()
            .transition(0, 1, 0.9)
            .transition(0, 0, 0.1)
            .transition(1, 2, 0.5)
            .transition(1, 0, 0.5)
            .transition(2, 0, 1.0)
            .build()
            .unwrap();
        let pi = stationary_distribution(&c).unwrap();
        #[allow(clippy::needless_range_loop)] // index loop is clearer here
        for j in 0..3 {
            let h = return_time(&c, j).unwrap();
            assert!(
                (h - 1.0 / pi[j]).abs() < 1e-8,
                "state {j}: return {h} vs 1/pi {}",
                1.0 / pi[j]
            );
        }
    }

    #[test]
    fn deterministic_cycle_hitting_times_are_path_lengths() {
        let n = 5;
        let mut b = ChainBuilder::new();
        for i in 0..n {
            b = b.transition(i, (i + 1) % n, 1.0);
        }
        let c = b.build().unwrap();
        let h = hitting_times(&c, 0).unwrap();
        #[allow(clippy::needless_range_loop)] // index loop is clearer here
        for i in 1..n {
            assert!((h[i] - (n - i) as f64).abs() < 1e-9);
        }
        assert!((h[0] - n as f64).abs() < 1e-9);
    }

    #[test]
    fn reducible_chain_is_rejected() {
        let c = ChainBuilder::new()
            .transition(0, 0, 1.0)
            .transition(1, 1, 1.0)
            .build()
            .unwrap();
        assert!(matches!(
            hitting_times(&c, 0),
            Err(StationaryError::NotIrreducible)
        ));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_target_panics() {
        let c = ChainBuilder::new().transition((), (), 1.0).build().unwrap();
        let _ = hitting_times(&c, 1);
    }
}
