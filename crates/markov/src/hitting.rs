//! Expected hitting times `h_ij = E[T_ij]` (paper, Section 3).
//!
//! For a fixed target `j`, the vector `h_·j` solves the linear system
//! `h_ij = 1 + Σ_{k ≠ j} p_ik h_kj` for `i ≠ j`, and the return time is
//! `h_jj = 1 + Σ_{k ≠ j} p_jk h_kj`.
//!
//! Two solvers: a dense direct solve ([`hitting_times`], the oracle
//! for small `n`) and sparse Gauss–Seidel
//! ([`sparse_hitting_times`]) — the reduced system matrix
//! `I − P_{−j}` is an M-matrix, for which Gauss–Seidel sweeps converge
//! monotonically from zero, in `O(nnz)` per sweep.

use std::hash::Hash;
use std::time::Instant;

use pwf_obs::Metrics;

use crate::chain::MarkovChain;
use crate::linalg::{self, Matrix};
use crate::operator::TransitionOperator;
use crate::solve::{record_solve, GaussSeidelOptions, SolveStats};
use crate::sparse::SparseChain;
use crate::stationary::StationaryError;
use crate::structure;

/// Expected hitting times from every state to `target`.
///
/// Index `target` of the result holds the expected *return* time
/// `h_jj` (first revisit after leaving), matching Theorem 1's
/// `h_jj = 1/π_j` for irreducible chains.
///
/// # Errors
///
/// Returns [`StationaryError::NotIrreducible`] when some state cannot
/// reach `target` (the hitting time would be infinite), or a linear
/// algebra error.
///
/// # Panics
///
/// Panics if `target >= chain.len()`.
pub fn hitting_times<S: Clone + Eq + Hash>(
    chain: &MarkovChain<S>,
    target: usize,
) -> Result<Vec<f64>, StationaryError> {
    let n = chain.len();
    assert!(target < n, "target state {target} out of bounds ({n})");
    if !structure::is_irreducible(chain) {
        // A reducible chain may still have all states reaching the
        // target, but the paper only needs the irreducible case; be
        // conservative and refuse.
        return Err(StationaryError::NotIrreducible);
    }

    // Unknowns: h_kj for k ≠ target, in chain order skipping target.
    let reduced: Vec<usize> = (0..n).filter(|&k| k != target).collect();
    let m = reduced.len();
    let mut a = Matrix::zeros(m, m);
    let b = vec![1.0; m];
    for (row, &i) in reduced.iter().enumerate() {
        for (col, &k) in reduced.iter().enumerate() {
            a[(row, col)] = if i == k { 1.0 } else { 0.0 } - chain.prob(i, k);
        }
    }
    let h_reduced = linalg::solve(&a, &b)?;

    let mut h = vec![0.0; n];
    for (idx, &k) in reduced.iter().enumerate() {
        h[k] = h_reduced[idx];
    }
    // Return time for the target itself.
    let mut ret = 1.0;
    for (idx, &k) in reduced.iter().enumerate() {
        ret += chain.prob(target, k) * h_reduced[idx];
    }
    h[target] = ret;
    Ok(h)
}

/// Expected hitting times to `target` on a sparse chain by
/// Gauss–Seidel sweeps over the reduced system, with optional solver
/// metrics (`markov.hitting.*`).
///
/// Index `target` of the result holds the expected *return* time, as
/// in [`hitting_times`].
///
/// # Errors
///
/// Returns [`StationaryError::NotIrreducible`] for reducible chains,
/// or [`StationaryError::NotConverged`] if the largest in-sweep update
/// stays above `opts.tol` for `opts.max_sweeps` sweeps.
///
/// # Panics
///
/// Panics if `target >= chain.len()`.
pub fn sparse_hitting_times<S: Clone + Eq + Hash>(
    chain: &SparseChain<S>,
    target: usize,
    opts: &GaussSeidelOptions,
    metrics: Option<&Metrics>,
) -> Result<Vec<f64>, StationaryError> {
    let n = chain.len();
    assert!(target < n, "target state {target} out of bounds ({n})");
    if !structure::is_irreducible_sparse(chain) {
        return Err(StationaryError::NotIrreducible);
    }
    operator_hitting_times(chain, target, opts, metrics)
}

/// Expected hitting times to `target` on any [`TransitionOperator`]
/// by Gauss–Seidel sweeps over the reduced system — the matrix-free
/// core behind [`sparse_hitting_times`], which for a CSR chain sweeps
/// the identical float schedule.
///
/// Irreducibility is **assumed, not checked**: an implicit operator
/// has no materialized adjacency to run SCC over, and the paper's
/// generated chains are irreducible by construction. If some state
/// cannot reach `target` the sweep diverges and the budget error is
/// returned. Callers with a stored chain get the check via
/// [`sparse_hitting_times`].
///
/// # Errors
///
/// Returns [`StationaryError::NotConverged`] if the largest in-sweep
/// update stays above `opts.tol` for `opts.max_sweeps` sweeps.
///
/// # Panics
///
/// Panics if `target >= op.len()`.
pub fn operator_hitting_times<O: TransitionOperator + ?Sized>(
    op: &O,
    target: usize,
    opts: &GaussSeidelOptions,
    metrics: Option<&Metrics>,
) -> Result<Vec<f64>, StationaryError> {
    let n = op.len();
    assert!(target < n, "target state {target} out of bounds ({n})");

    let start = Instant::now();
    let mut h = vec![0.0; n]; // h[target] pinned to 0 during sweeps
    let mut row: Vec<(u32, f64)> = Vec::new();
    let mut change = f64::INFINITY;
    for sweep in 1..=opts.max_sweeps {
        change = 0.0;
        for i in 0..n {
            if i == target {
                continue;
            }
            // h_i = (1 + Σ_{k ∉ {target, i}} p_ik h_k) / (1 − p_ii).
            let mut acc = 1.0;
            let mut self_p = 0.0;
            op.row_into(i, &mut row);
            for &(j, p) in &row {
                let j = j as usize;
                if j == target {
                    continue;
                }
                if j == i {
                    self_p += p;
                } else {
                    acc += p * h[j];
                }
            }
            // 1 − p_ii > 0: irreducibility (n ≥ 2 here) rules out an
            // absorbing non-target state.
            let v = acc / (1.0 - self_p);
            change = change.max((v - h[i]).abs());
            h[i] = v;
        }
        if change < opts.tol {
            // Return time of the target from the converged vector.
            let mut ret = 1.0;
            op.row_into(target, &mut row);
            for &(j, p) in &row {
                let j = j as usize;
                if j != target {
                    ret += p * h[j];
                }
            }
            h[target] = ret;
            record_solve(
                metrics,
                "hitting",
                &SolveStats {
                    iterations: sweep,
                    residual: change,
                    wall_ms: start.elapsed().as_secs_f64() * 1e3,
                },
            );
            return Ok(h);
        }
    }
    record_solve(
        metrics,
        "hitting",
        &SolveStats {
            iterations: opts.max_sweeps,
            residual: change,
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
        },
    );
    Err(StationaryError::NotConverged {
        iterations: opts.max_sweeps,
        delta: change,
    })
}

/// Expected return time `h_jj` of a single state, as a convenience.
///
/// # Errors
///
/// Propagates the errors of [`hitting_times`].
///
/// # Panics
///
/// Panics if `state >= chain.len()`.
pub fn return_time<S: Clone + Eq + Hash>(
    chain: &MarkovChain<S>,
    state: usize,
) -> Result<f64, StationaryError> {
    Ok(hitting_times(chain, state)?[state])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ChainBuilder;
    use crate::stationary::stationary_distribution;

    #[test]
    fn symmetric_two_state_hitting_times() {
        // Flip with probability p: expected hitting time to the other
        // state is 1/p; return time is 2 (uniform stationary).
        let p = 0.25;
        let c = ChainBuilder::new()
            .transition(0, 1, p)
            .transition(0, 0, 1.0 - p)
            .transition(1, 0, p)
            .transition(1, 1, 1.0 - p)
            .build()
            .unwrap();
        let h = hitting_times(&c, 1).unwrap();
        assert!((h[0] - 1.0 / p).abs() < 1e-9);
        assert!((h[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn return_times_match_reciprocal_stationary() {
        // Theorem 1 cross-check on an asymmetric ergodic chain.
        let c = ChainBuilder::new()
            .transition(0, 1, 0.9)
            .transition(0, 0, 0.1)
            .transition(1, 2, 0.5)
            .transition(1, 0, 0.5)
            .transition(2, 0, 1.0)
            .build()
            .unwrap();
        let pi = stationary_distribution(&c).unwrap();
        #[allow(clippy::needless_range_loop)] // index loop is clearer here
        for j in 0..3 {
            let h = return_time(&c, j).unwrap();
            assert!(
                (h - 1.0 / pi[j]).abs() < 1e-8,
                "state {j}: return {h} vs 1/pi {}",
                1.0 / pi[j]
            );
        }
    }

    #[test]
    fn deterministic_cycle_hitting_times_are_path_lengths() {
        let n = 5;
        let mut b = ChainBuilder::new();
        for i in 0..n {
            b = b.transition(i, (i + 1) % n, 1.0);
        }
        let c = b.build().unwrap();
        let h = hitting_times(&c, 0).unwrap();
        #[allow(clippy::needless_range_loop)] // index loop is clearer here
        for i in 1..n {
            assert!((h[i] - (n - i) as f64).abs() < 1e-9);
        }
        assert!((h[0] - n as f64).abs() < 1e-9);
    }

    #[test]
    fn reducible_chain_is_rejected() {
        let c = ChainBuilder::new()
            .transition(0, 0, 1.0)
            .transition(1, 1, 1.0)
            .build()
            .unwrap();
        assert!(matches!(
            hitting_times(&c, 0),
            Err(StationaryError::NotIrreducible)
        ));
    }

    #[test]
    fn gauss_seidel_matches_direct_solve() {
        // Asymmetric ergodic chain with self-loops; compare every
        // target against the dense oracle.
        let c = ChainBuilder::new()
            .transition(0, 1, 0.9)
            .transition(0, 0, 0.1)
            .transition(1, 2, 0.5)
            .transition(1, 0, 0.5)
            .transition(2, 0, 0.8)
            .transition(2, 2, 0.2)
            .build()
            .unwrap();
        let sparse = c.to_sparse();
        let opts = GaussSeidelOptions {
            max_sweeps: 100_000,
            tol: 1e-13,
        };
        for target in 0..3 {
            let dense = hitting_times(&c, target).unwrap();
            let gs = sparse_hitting_times(&sparse, target, &opts, None).unwrap();
            for (i, (a, b)) in dense.iter().zip(&gs).enumerate() {
                assert!(
                    (a - b).abs() < 1e-9,
                    "target {target}, state {i}: dense {a} vs GS {b}"
                );
            }
        }
    }

    #[test]
    fn gauss_seidel_on_cycle_is_exact() {
        let n = 50;
        let mut b = crate::sparse::SparseChainBuilder::new();
        for i in 0..n {
            b.transition(i, (i + 1) % n, 1.0);
        }
        let c = b.build().unwrap();
        let h = sparse_hitting_times(&c, 0, &GaussSeidelOptions::default(), None).unwrap();
        #[allow(clippy::needless_range_loop)] // index loop is clearer here
        for i in 1..n {
            assert!((h[i] - (n - i) as f64).abs() < 1e-8);
        }
        assert!((h[0] - n as f64).abs() < 1e-8);
    }

    #[test]
    fn gauss_seidel_rejects_reducible_and_records_metrics() {
        let mut b = crate::sparse::SparseChainBuilder::new();
        b.transition(0, 0, 1.0).transition(1, 1, 1.0);
        let c = b.build().unwrap();
        assert!(matches!(
            sparse_hitting_times(&c, 0, &GaussSeidelOptions::default(), None),
            Err(StationaryError::NotIrreducible)
        ));

        let m = pwf_obs::Metrics::new();
        let mut b = crate::sparse::SparseChainBuilder::new();
        b.transition(0, 1, 1.0)
            .transition(1, 0, 0.5)
            .transition(1, 1, 0.5);
        let c = b.build().unwrap();
        sparse_hitting_times(&c, 0, &GaussSeidelOptions::default(), Some(&m)).unwrap();
        assert!(m
            .snapshot()
            .counters
            .iter()
            .any(|(n, v)| n == "markov.hitting.solves" && *v == 1));
    }

    #[test]
    fn operator_solver_is_bit_exact_vs_sparse_path() {
        let mut b = crate::sparse::SparseChainBuilder::new();
        for i in 0..40usize {
            b.transition(i, (i + 1) % 40, 0.6)
                .transition(i, (i + 3) % 40, 0.4);
        }
        let c = b.build().unwrap();
        let opts = GaussSeidelOptions::default();
        for target in [0usize, 17, 39] {
            let via_sparse = sparse_hitting_times(&c, target, &opts, None).unwrap();
            let via_op = operator_hitting_times(&c, target, &opts, None).unwrap();
            assert_eq!(via_sparse, via_op, "target {target}");
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_target_panics() {
        let c = ChainBuilder::new().transition((), (), 1.0).build().unwrap();
        let _ = hitting_times(&c, 1);
    }
}
