//! Structural properties of chains: irreducibility, periodicity,
//! ergodicity (hypotheses of Theorems 1 and 2 in the paper).

use std::collections::VecDeque;
use std::hash::Hash;

use crate::chain::MarkovChain;

/// Structural classification of a chain, produced by [`analyze`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StructureReport {
    /// Whether every state reaches every other state.
    pub irreducible: bool,
    /// The period (gcd of closed-walk lengths through state 0's
    /// communicating class); `1` means aperiodic. Only meaningful when
    /// `irreducible` is true.
    pub period: usize,
}

impl StructureReport {
    /// Whether the chain is ergodic (irreducible and aperiodic), so
    /// Theorems 1–2 apply: a unique stationary distribution exists and
    /// every initial distribution converges to it.
    pub fn is_ergodic(&self) -> bool {
        self.irreducible && self.period == 1
    }
}

fn adjacency<S: Clone + Eq + Hash>(chain: &MarkovChain<S>) -> Vec<Vec<usize>> {
    (0..chain.len()).map(|i| chain.successors(i)).collect()
}

fn reachable_from(adj: &[Vec<usize>], start: usize) -> Vec<bool> {
    let mut seen = vec![false; adj.len()];
    let mut queue = VecDeque::from([start]);
    seen[start] = true;
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if !seen[v] {
                seen[v] = true;
                queue.push_back(v);
            }
        }
    }
    seen
}

/// Whether the chain's positive-probability graph is strongly
/// connected.
pub fn is_irreducible<S: Clone + Eq + Hash>(chain: &MarkovChain<S>) -> bool {
    let adj = adjacency(chain);
    if !reachable_from(&adj, 0).iter().all(|&b| b) {
        return false;
    }
    // Reverse graph reachability.
    let mut radj = vec![Vec::new(); chain.len()];
    for (u, outs) in adj.iter().enumerate() {
        for &v in outs {
            radj[v].push(u);
        }
    }
    reachable_from(&radj, 0).iter().all(|&b| b)
}

/// The period of the communicating class containing state 0, computed
/// by the BFS-level trick: for an edge `u → v` with BFS levels
/// `d(u), d(v)`, every value `d(u) + 1 − d(v)` is a multiple of the
/// period, and their gcd over all edges *is* the period.
///
/// For an irreducible chain this is the period of the whole chain.
pub fn period<S: Clone + Eq + Hash>(chain: &MarkovChain<S>) -> usize {
    let adj = adjacency(chain);
    let n = adj.len();
    let mut level = vec![usize::MAX; n];
    let mut queue = VecDeque::from([0usize]);
    level[0] = 0;
    let mut g: usize = 0;
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if level[v] == usize::MAX {
                level[v] = level[u] + 1;
                queue.push_back(v);
            } else {
                let diff = (level[u] + 1).abs_diff(level[v]);
                g = gcd(g, diff);
            }
        }
    }
    if g == 0 {
        // No closed walks discovered in the reachable part: degenerate
        // (e.g. a single absorbing path); report period 0 to signal it.
        0
    } else {
        g
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Whether the chain has at least one self-loop, a cheap sufficient
/// condition for aperiodicity the paper invokes ("If a Markov chain has
/// at least one self-loop, then it is aperiodic").
pub fn has_self_loop<S: Clone + Eq + Hash>(chain: &MarkovChain<S>) -> bool {
    (0..chain.len()).any(|i| chain.prob(i, i) > 0.0)
}

/// Computes the full structural report for a chain.
pub fn analyze<S: Clone + Eq + Hash>(chain: &MarkovChain<S>) -> StructureReport {
    StructureReport {
        irreducible: is_irreducible(chain),
        period: period(chain),
    }
}

/// Whether the chain is ergodic (irreducible + aperiodic).
pub fn is_ergodic<S: Clone + Eq + Hash>(chain: &MarkovChain<S>) -> bool {
    analyze(chain).is_ergodic()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ChainBuilder;

    fn cycle(n: usize) -> MarkovChain<usize> {
        let mut b = ChainBuilder::new();
        for i in 0..n {
            b = b.transition(i, (i + 1) % n, 1.0);
        }
        b.build().unwrap()
    }

    #[test]
    fn cycle_is_irreducible_with_period_n() {
        for n in 2..6 {
            let c = cycle(n);
            assert!(is_irreducible(&c), "cycle of length {n}");
            assert_eq!(period(&c), n);
            assert!(!is_ergodic(&c));
        }
    }

    #[test]
    fn lazy_cycle_is_ergodic() {
        let c = ChainBuilder::new()
            .transition(0, 1, 0.5)
            .transition(0, 0, 0.5)
            .transition(1, 0, 0.5)
            .transition(1, 1, 0.5)
            .build()
            .unwrap();
        assert!(has_self_loop(&c));
        assert!(is_ergodic(&c));
        assert_eq!(period(&c), 1);
    }

    #[test]
    fn disconnected_chain_is_reducible() {
        let c = ChainBuilder::new()
            .transition(0, 0, 1.0)
            .transition(1, 1, 1.0)
            .build()
            .unwrap();
        assert!(!is_irreducible(&c));
        assert!(!is_ergodic(&c));
    }

    #[test]
    fn absorbing_state_is_reducible() {
        let c = ChainBuilder::new()
            .transition(0, 1, 1.0)
            .transition(1, 1, 1.0)
            .build()
            .unwrap();
        assert!(!is_irreducible(&c));
    }

    #[test]
    fn even_odd_bipartite_has_period_two() {
        // 4-cycle with chords preserving parity: period 2.
        let c = ChainBuilder::new()
            .transition(0, 1, 0.5)
            .transition(0, 3, 0.5)
            .transition(1, 2, 0.5)
            .transition(1, 0, 0.5)
            .transition(2, 3, 0.5)
            .transition(2, 1, 0.5)
            .transition(3, 0, 0.5)
            .transition(3, 2, 0.5)
            .build()
            .unwrap();
        assert!(is_irreducible(&c));
        assert_eq!(period(&c), 2);
    }

    #[test]
    fn single_state_self_loop_is_ergodic() {
        let c = ChainBuilder::new().transition((), (), 1.0).build().unwrap();
        assert!(is_ergodic(&c));
    }

    #[test]
    fn report_matches_components() {
        let c = cycle(3);
        let r = analyze(&c);
        assert_eq!(r.irreducible, is_irreducible(&c));
        assert_eq!(r.period, period(&c));
    }
}
