//! Structural properties of chains: irreducibility, periodicity,
//! ergodicity (hypotheses of Theorems 1 and 2 in the paper).
//!
//! All traversals run on an [`Adjacency`] — a CSR positive-probability
//! graph extracted once per analysis from either chain representation
//! — so dense chains pay one `O(n²)` matrix scan up front instead of
//! re-scanning rows inside every BFS/DFS step, and sparse chains pay
//! `O(nnz)`. Irreducibility is Tarjan's strongly-connected-components
//! algorithm (iterative, one pass); the period uses the BFS-level gcd
//! trick.

use std::collections::VecDeque;
use std::hash::Hash;

use crate::chain::MarkovChain;
use crate::sparse::SparseChain;

/// Structural classification of a chain, produced by [`analyze`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StructureReport {
    /// Whether every state reaches every other state.
    pub irreducible: bool,
    /// The period (gcd of closed-walk lengths through state 0's
    /// communicating class); `1` means aperiodic. Only meaningful when
    /// `irreducible` is true.
    pub period: usize,
}

impl StructureReport {
    /// Whether the chain is ergodic (irreducible and aperiodic), so
    /// Theorems 1–2 apply: a unique stationary distribution exists and
    /// every initial distribution converges to it.
    pub fn is_ergodic(&self) -> bool {
        self.irreducible && self.period == 1
    }
}

/// The positive-probability graph of a chain in CSR form: the one
/// object every structural traversal runs on, built exactly once per
/// analysis.
#[derive(Debug, Clone)]
pub struct Adjacency {
    row_ptr: Vec<usize>,
    cols: Vec<u32>,
}

impl Adjacency {
    /// Extracts the adjacency of a dense chain in one matrix scan.
    pub fn from_dense<S: Clone + Eq + Hash>(chain: &MarkovChain<S>) -> Self {
        let n = chain.len();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut cols = Vec::new();
        row_ptr.push(0);
        for i in 0..n {
            for j in 0..n {
                if chain.prob(i, j) > 0.0 {
                    cols.push(j as u32);
                }
            }
            row_ptr.push(cols.len());
        }
        Adjacency { row_ptr, cols }
    }

    /// Extracts the adjacency of a sparse chain (drops explicit zero
    /// entries, if any).
    pub fn from_sparse<S: Clone + Eq + Hash>(chain: &SparseChain<S>) -> Self {
        let n = chain.len();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut cols = Vec::with_capacity(chain.nnz());
        row_ptr.push(0);
        for i in 0..n {
            for (j, p) in chain.row(i) {
                if p > 0.0 {
                    cols.push(j);
                }
            }
            row_ptr.push(cols.len());
        }
        Adjacency { row_ptr, cols }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Out-neighbours of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of bounds.
    pub fn neighbors(&self, u: usize) -> &[u32] {
        &self.cols[self.row_ptr[u]..self.row_ptr[u + 1]]
    }

    /// Number of strongly connected components (iterative Tarjan).
    pub fn scc_count(&self) -> usize {
        let n = self.len();
        const UNVISITED: usize = usize::MAX;
        let mut disc = vec![UNVISITED; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        // Explicit DFS frames: (vertex, next out-edge offset).
        let mut frames: Vec<(usize, usize)> = Vec::new();
        let mut next_disc = 0usize;
        let mut components = 0usize;

        for root in 0..n {
            if disc[root] != UNVISITED {
                continue;
            }
            disc[root] = next_disc;
            low[root] = next_disc;
            next_disc += 1;
            stack.push(root);
            on_stack[root] = true;
            frames.push((root, 0));

            while let Some(frame) = frames.last_mut() {
                let u = frame.0;
                let edges = &self.cols[self.row_ptr[u]..self.row_ptr[u + 1]];
                if frame.1 < edges.len() {
                    let v = edges[frame.1] as usize;
                    frame.1 += 1;
                    if disc[v] == UNVISITED {
                        disc[v] = next_disc;
                        low[v] = next_disc;
                        next_disc += 1;
                        stack.push(v);
                        on_stack[v] = true;
                        frames.push((v, 0));
                    } else if on_stack[v] {
                        low[u] = low[u].min(disc[v]);
                    }
                } else {
                    frames.pop();
                    if let Some(parent) = frames.last() {
                        let p = parent.0;
                        low[p] = low[p].min(low[u]);
                    }
                    if low[u] == disc[u] {
                        components += 1;
                        loop {
                            let w = stack.pop().expect("Tarjan stack underflow");
                            on_stack[w] = false;
                            if w == u {
                                break;
                            }
                        }
                    }
                }
            }
        }
        components
    }

    /// Whether the graph is strongly connected (one SCC, non-empty).
    pub fn is_strongly_connected(&self) -> bool {
        !self.is_empty() && self.scc_count() == 1
    }

    /// The period of the communicating class containing vertex 0,
    /// computed by the BFS-level trick: for an edge `u → v` with BFS
    /// levels `d(u), d(v)`, every value `d(u) + 1 − d(v)` is a
    /// multiple of the period, and their gcd over all edges *is* the
    /// period. Returns 0 for the degenerate no-closed-walk case.
    pub fn period(&self) -> usize {
        let n = self.len();
        if n == 0 {
            return 0;
        }
        let mut level = vec![usize::MAX; n];
        let mut queue = VecDeque::from([0usize]);
        level[0] = 0;
        let mut g: usize = 0;
        while let Some(u) = queue.pop_front() {
            for &v in self.neighbors(u) {
                let v = v as usize;
                if level[v] == usize::MAX {
                    level[v] = level[u] + 1;
                    queue.push_back(v);
                } else {
                    let diff = (level[u] + 1).abs_diff(level[v]);
                    g = gcd(g, diff);
                }
            }
        }
        g
    }

    /// The [`StructureReport`] of this graph (one traversal pass for
    /// each of irreducibility and period, sharing the adjacency).
    pub fn report(&self) -> StructureReport {
        StructureReport {
            irreducible: self.is_strongly_connected(),
            period: self.period(),
        }
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Whether the chain's positive-probability graph is strongly
/// connected.
pub fn is_irreducible<S: Clone + Eq + Hash>(chain: &MarkovChain<S>) -> bool {
    Adjacency::from_dense(chain).is_strongly_connected()
}

/// The period of the communicating class containing state 0; see
/// [`Adjacency::period`]. For an irreducible chain this is the period
/// of the whole chain.
pub fn period<S: Clone + Eq + Hash>(chain: &MarkovChain<S>) -> usize {
    Adjacency::from_dense(chain).period()
}

/// Whether the chain has at least one self-loop, a cheap sufficient
/// condition for aperiodicity the paper invokes ("If a Markov chain has
/// at least one self-loop, then it is aperiodic").
pub fn has_self_loop<S: Clone + Eq + Hash>(chain: &MarkovChain<S>) -> bool {
    (0..chain.len()).any(|i| chain.prob(i, i) > 0.0)
}

/// Computes the full structural report for a dense chain, building the
/// adjacency once and sharing it between the irreducibility and period
/// traversals.
pub fn analyze<S: Clone + Eq + Hash>(chain: &MarkovChain<S>) -> StructureReport {
    Adjacency::from_dense(chain).report()
}

/// Whether the chain is ergodic (irreducible + aperiodic).
pub fn is_ergodic<S: Clone + Eq + Hash>(chain: &MarkovChain<S>) -> bool {
    analyze(chain).is_ergodic()
}

/// [`is_irreducible`] for sparse chains.
pub fn is_irreducible_sparse<S: Clone + Eq + Hash>(chain: &SparseChain<S>) -> bool {
    Adjacency::from_sparse(chain).is_strongly_connected()
}

/// [`period`] for sparse chains.
pub fn period_sparse<S: Clone + Eq + Hash>(chain: &SparseChain<S>) -> usize {
    Adjacency::from_sparse(chain).period()
}

/// [`has_self_loop`] for sparse chains.
pub fn has_self_loop_sparse<S: Clone + Eq + Hash>(chain: &SparseChain<S>) -> bool {
    (0..chain.len()).any(|i| chain.row(i).any(|(j, p)| j as usize == i && p > 0.0))
}

/// [`analyze`] for sparse chains: one `O(nnz)` adjacency extraction
/// shared between both traversals.
pub fn analyze_sparse<S: Clone + Eq + Hash>(chain: &SparseChain<S>) -> StructureReport {
    Adjacency::from_sparse(chain).report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ChainBuilder;
    use crate::sparse::SparseChainBuilder;

    fn cycle(n: usize) -> MarkovChain<usize> {
        let mut b = ChainBuilder::new();
        for i in 0..n {
            b = b.transition(i, (i + 1) % n, 1.0);
        }
        b.build().unwrap()
    }

    #[test]
    fn cycle_is_irreducible_with_period_n() {
        for n in 2..6 {
            let c = cycle(n);
            assert!(is_irreducible(&c), "cycle of length {n}");
            assert_eq!(period(&c), n);
            assert!(!is_ergodic(&c));
        }
    }

    #[test]
    fn lazy_cycle_is_ergodic() {
        let c = ChainBuilder::new()
            .transition(0, 1, 0.5)
            .transition(0, 0, 0.5)
            .transition(1, 0, 0.5)
            .transition(1, 1, 0.5)
            .build()
            .unwrap();
        assert!(has_self_loop(&c));
        assert!(is_ergodic(&c));
        assert_eq!(period(&c), 1);
    }

    #[test]
    fn disconnected_chain_is_reducible() {
        let c = ChainBuilder::new()
            .transition(0, 0, 1.0)
            .transition(1, 1, 1.0)
            .build()
            .unwrap();
        assert!(!is_irreducible(&c));
        assert!(!is_ergodic(&c));
        assert_eq!(Adjacency::from_dense(&c).scc_count(), 2);
    }

    #[test]
    fn absorbing_state_is_reducible() {
        let c = ChainBuilder::new()
            .transition(0, 1, 1.0)
            .transition(1, 1, 1.0)
            .build()
            .unwrap();
        assert!(!is_irreducible(&c));
    }

    #[test]
    fn even_odd_bipartite_has_period_two() {
        // 4-cycle with chords preserving parity: period 2.
        let c = ChainBuilder::new()
            .transition(0, 1, 0.5)
            .transition(0, 3, 0.5)
            .transition(1, 2, 0.5)
            .transition(1, 0, 0.5)
            .transition(2, 3, 0.5)
            .transition(2, 1, 0.5)
            .transition(3, 0, 0.5)
            .transition(3, 2, 0.5)
            .build()
            .unwrap();
        assert!(is_irreducible(&c));
        assert_eq!(period(&c), 2);
    }

    #[test]
    fn single_state_self_loop_is_ergodic() {
        let c = ChainBuilder::new().transition((), (), 1.0).build().unwrap();
        assert!(is_ergodic(&c));
    }

    #[test]
    fn report_matches_components() {
        let c = cycle(3);
        let r = analyze(&c);
        assert_eq!(r.irreducible, is_irreducible(&c));
        assert_eq!(r.period, period(&c));
    }

    #[test]
    fn tarjan_counts_nested_components() {
        // 0 → 1 ⇄ 2, 3 alone with self-loop: three SCCs ({0}, {1,2}, {3}).
        let c = ChainBuilder::new()
            .transition(0, 1, 1.0)
            .transition(1, 2, 0.5)
            .transition(1, 1, 0.5)
            .transition(2, 1, 1.0)
            .transition(3, 3, 1.0)
            .build()
            .unwrap();
        assert_eq!(Adjacency::from_dense(&c).scc_count(), 3);
        assert!(!is_irreducible(&c));
    }

    #[test]
    fn sparse_analysis_matches_dense() {
        // Same 3-cycle in both representations.
        let dense = cycle(3);
        let mut b = SparseChainBuilder::new();
        for i in 0..3usize {
            b.transition(i, (i + 1) % 3, 1.0);
        }
        let sparse = b.build().unwrap();
        assert_eq!(analyze_sparse(&sparse), analyze(&dense));
        assert!(is_irreducible_sparse(&sparse));
        assert_eq!(period_sparse(&sparse), 3);
        assert!(!has_self_loop_sparse(&sparse));
    }

    #[test]
    fn sparse_self_loop_detection() {
        let mut b = SparseChainBuilder::new();
        b.transition(0, 1, 0.5)
            .transition(0, 0, 0.5)
            .transition(1, 0, 1.0);
        let c = b.build().unwrap();
        assert!(has_self_loop_sparse(&c));
        assert!(analyze_sparse(&c).is_ergodic());
    }

    #[test]
    fn deep_path_does_not_overflow_stack() {
        // 40k-state cycle: the recursive Tarjan would blow the stack.
        let n = 40_000usize;
        let mut b = SparseChainBuilder::new();
        for i in 0..n {
            b.transition(i, (i + 1) % n, 1.0);
        }
        let c = b.build().unwrap();
        let adj = Adjacency::from_sparse(&c);
        assert_eq!(adj.scc_count(), 1);
        assert_eq!(adj.period(), n);
    }
}
