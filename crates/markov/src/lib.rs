//! Markov-chain substrate for the *practically-wait-free* workspace.
//!
//! Implements exactly the toolkit of Section 3 of Alistarh,
//! Censor-Hillel & Shavit, *"Are Lock-Free Concurrent Algorithms
//! Practically Wait-Free?"*:
//!
//! * finite, time-invariant chains over labelled state sets
//!   ([`chain::MarkovChain`]),
//! * structural checks — irreducibility, periodicity, ergodicity
//!   ([`structure`]),
//! * stationary distributions and return times `h_jj = 1/π_j`
//!   ([`stationary`], Theorem 1),
//! * expected hitting times ([`hitting`]),
//! * ergodic flow `Q_ij = π_i p_ij` ([`flow`]),
//! * chain **liftings** and numerical verification of the flow
//!   homomorphism and Lemma 1's stationary collapse ([`lifting`]).
//!
//! Chains here are exact constructions from algorithm state spaces, so
//! everything is dense and double precision; see [`linalg`] for the
//! small solver.
//!
//! # Examples
//!
//! ```
//! use pwf_markov::chain::ChainBuilder;
//! use pwf_markov::stationary::stationary_distribution;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let chain = ChainBuilder::new()
//!     .transition("work", "done", 0.5)
//!     .transition("work", "work", 0.5)
//!     .transition("done", "work", 1.0)
//!     .build()?;
//! let pi = stationary_distribution(&chain)?;
//! assert!((pi[0] - 2.0 / 3.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod flow;
pub mod hitting;
pub mod lifting;
pub mod linalg;
pub mod mixing;
pub mod sparse;
pub mod stationary;
pub mod structure;

pub use chain::{ChainBuilder, ChainError, MarkovChain};
pub use flow::ErgodicFlow;
pub use hitting::{hitting_times, return_time};
pub use lifting::{verify_lifting, LiftingError, LiftingReport};
pub use linalg::{LinalgError, Matrix};
pub use mixing::{lazy_mixing_time, total_variation, MixingReport};
pub use sparse::{SparseChain, SparseChainBuilder};
pub use stationary::{return_times, stationary_distribution, StationaryError};
pub use structure::{analyze, is_ergodic, StructureReport};
