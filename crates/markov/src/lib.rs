//! Markov-chain substrate for the *practically-wait-free* workspace.
//!
//! Implements exactly the toolkit of Section 3 of Alistarh,
//! Censor-Hillel & Shavit, *"Are Lock-Free Concurrent Algorithms
//! Practically Wait-Free?"*:
//!
//! * finite, time-invariant chains over labelled state sets
//!   ([`chain::MarkovChain`]),
//! * structural checks — irreducibility, periodicity, ergodicity
//!   ([`structure`]),
//! * stationary distributions and return times `h_jj = 1/π_j`
//!   ([`stationary`], Theorem 1),
//! * expected hitting times ([`hitting`]),
//! * ergodic flow `Q_ij = π_i p_ij` ([`flow`]),
//! * chain **liftings** and numerical verification of the flow
//!   homomorphism and Lemma 1's stationary collapse ([`lifting`]).
//!
//! Chains here are exact constructions from algorithm state spaces.
//! The substrate is **operator-first**: the iterative solvers — lazy
//! power iteration with adaptive stopping
//! ([`operator::stationary_operator`]), Gauss–Seidel for hitting-time
//! systems ([`hitting::operator_hitting_times`]), and total-variation
//! mixing bounds ([`mixing::operator_lazy_mixing_time`]) — are generic
//! over the implicit [`operator::TransitionOperator`], which generates
//! `y = x·P` rows on the fly from state encodings. The CSR-backed
//! [`sparse::SparseChain`] implements the trait by delegating to its
//! own kernels, so operator solves on a stored chain are bit-identical
//! to the historical sparse paths and the sparse engine remains the
//! small-`n` oracle for implicit operators; chains past RAM stream
//! through the out-of-core spill ([`ooc::SpilledChain`]), and dense
//! sub-blocks that survive symmetry reduction get the cache-blocked
//! kernel ([`operator::DenseBlockOperator`]). Lifting claims are
//! verified row-by-row ([`lifting::verify_lifting_sparse`],
//! [`lifting::kernel_residual_sparse`]) or matrix-free from
//! combinatorially enumerated orbit representatives
//! ([`lifting::RowResidualScratch`]). The dense
//! [`chain::MarkovChain`] with direct `O(n³)` solves ([`linalg`]) is
//! retained as the cross-check oracle for small `n`; the two convert
//! via [`sparse::SparseChain::to_dense`] and
//! [`chain::MarkovChain::to_sparse`].
//!
//! # Examples
//!
//! ```
//! use pwf_markov::chain::ChainBuilder;
//! use pwf_markov::stationary::stationary_distribution;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let chain = ChainBuilder::new()
//!     .transition("work", "done", 0.5)
//!     .transition("work", "work", 0.5)
//!     .transition("done", "work", 1.0)
//!     .build()?;
//! let pi = stationary_distribution(&chain)?;
//! assert!((pi[0] - 2.0 / 3.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod flow;
pub mod hitting;
pub mod lifting;
pub mod linalg;
pub mod mixing;
pub mod ooc;
pub mod operator;
pub mod solve;
pub mod sparse;
pub mod stationary;
pub mod structure;

pub use chain::{ChainBuilder, ChainError, MarkovChain};
pub use flow::{sparse_conservation_residual, ErgodicFlow};
pub use hitting::{hitting_times, operator_hitting_times, return_time, sparse_hitting_times};
pub use lifting::{
    kernel_residual_sparse, verify_lifting, verify_lifting_sparse, LiftingError, LiftingReport,
    RowResidualScratch,
};
pub use linalg::{LinalgError, Matrix};
pub use mixing::{
    lazy_mixing_time, operator_lazy_mixing_time, sparse_lazy_mixing_time, total_variation,
    MixingReport,
};
pub use ooc::SpilledChain;
pub use operator::{stationary_operator, DenseBlockOperator, TransitionOperator};
pub use solve::{GaussSeidelOptions, PowerOptions, SolveStats};
pub use sparse::{SparseChain, SparseChainBuilder, StationarySolve};
pub use stationary::{return_times, stationary_distribution, StationaryError};
pub use structure::{analyze, analyze_sparse, is_ergodic, Adjacency, StructureReport};
