//! Ergodic flow `Q_ij = π_i p_ij` (paper, Section 3).
//!
//! For an ergodic chain the flow satisfies `Σ_i Q_ij = Σ_i Q_ji = π_j`
//! and `Σ_{i,j} Q_ij = 1`; these conservation identities are exactly
//! what the lifting homomorphism (Section 3, "Lifting Markov Chains")
//! is stated over.

use std::hash::Hash;

use crate::chain::MarkovChain;
use crate::linalg::Matrix;
use crate::stationary::{stationary_distribution, StationaryError};

/// The ergodic flow of a chain together with the stationary
/// distribution it was derived from.
#[derive(Debug, Clone)]
pub struct ErgodicFlow {
    pi: Vec<f64>,
    q: Matrix,
}

impl ErgodicFlow {
    /// Computes the ergodic flow of an irreducible chain.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`stationary_distribution`].
    pub fn compute<S: Clone + Eq + Hash>(chain: &MarkovChain<S>) -> Result<Self, StationaryError> {
        let pi = stationary_distribution(chain)?;
        let n = chain.len();
        let mut q = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                q[(i, j)] = pi[i] * chain.prob(i, j);
            }
        }
        Ok(ErgodicFlow { pi, q })
    }

    /// The stationary distribution `π`.
    pub fn stationary(&self) -> &[f64] {
        &self.pi
    }

    /// The flow value `Q_ij`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn flow(&self, i: usize, j: usize) -> f64 {
        self.q[(i, j)]
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.pi.len()
    }

    /// Whether the flow is over zero states (never for computed flows).
    pub fn is_empty(&self) -> bool {
        self.pi.is_empty()
    }

    /// Total flow `Σ_{i,j} Q_ij`; equals 1 up to round-off.
    pub fn total(&self) -> f64 {
        let n = self.len();
        let mut t = 0.0;
        for i in 0..n {
            for j in 0..n {
                t += self.q[(i, j)];
            }
        }
        t
    }

    /// Maximum violation of the conservation identities
    /// `Σ_i Q_ij = Σ_i Q_ji = π_j`.
    pub fn conservation_residual(&self) -> f64 {
        let n = self.len();
        let mut worst: f64 = 0.0;
        for j in 0..n {
            let inflow: f64 = (0..n).map(|i| self.q[(i, j)]).sum();
            let outflow: f64 = (0..n).map(|i| self.q[(j, i)]).sum();
            worst = worst.max((inflow - self.pi[j]).abs());
            worst = worst.max((outflow - self.pi[j]).abs());
        }
        worst
    }
}

/// Maximum violation of the flow conservation identities
/// `Σ_i Q_ij = Σ_i Q_ji = π_j` for a sparse chain, with the flow
/// `Q_ij = π_i p_ij` computed on the fly (`O(nnz)`, nothing
/// materialized).
///
/// # Panics
///
/// Panics if `pi.len() != chain.len()`.
pub fn sparse_conservation_residual<S: Clone + Eq + Hash>(
    chain: &crate::sparse::SparseChain<S>,
    pi: &[f64],
) -> f64 {
    let n = chain.len();
    assert_eq!(pi.len(), n, "distribution length must match chain");
    let mut inflow = vec![0.0; n];
    let mut worst: f64 = 0.0;
    for (i, &pi_i) in pi.iter().enumerate() {
        let mut out = 0.0;
        for (j, p) in chain.row(i) {
            let q = pi_i * p;
            inflow[j as usize] += q;
            out += q;
        }
        worst = worst.max((out - pi_i).abs());
    }
    for (inf, &p) in inflow.iter().zip(pi) {
        worst = worst.max((inf - p).abs());
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ChainBuilder;

    fn asymmetric_chain() -> MarkovChain<u8> {
        ChainBuilder::new()
            .transition(0, 1, 0.8)
            .transition(0, 0, 0.2)
            .transition(1, 2, 0.6)
            .transition(1, 1, 0.4)
            .transition(2, 0, 1.0)
            .build()
            .unwrap()
    }

    #[test]
    fn total_flow_is_one() {
        let f = ErgodicFlow::compute(&asymmetric_chain()).unwrap();
        assert!((f.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn flow_is_conserved() {
        let f = ErgodicFlow::compute(&asymmetric_chain()).unwrap();
        assert!(f.conservation_residual() < 1e-12);
    }

    #[test]
    fn flow_values_match_definition() {
        let c = asymmetric_chain();
        let f = ErgodicFlow::compute(&c).unwrap();
        let pi = f.stationary().to_vec();
        #[allow(clippy::needless_range_loop)] // index loop is clearer here
        for i in 0..3 {
            for j in 0..3 {
                assert!((f.flow(i, j) - pi[i] * c.prob(i, j)).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn reducible_chain_is_rejected() {
        let c = ChainBuilder::new()
            .transition(0, 0, 1.0)
            .transition(1, 1, 1.0)
            .build()
            .unwrap();
        assert!(ErgodicFlow::compute(&c).is_err());
    }

    #[test]
    fn sparse_conservation_matches_dense() {
        let c = asymmetric_chain();
        let f = ErgodicFlow::compute(&c).unwrap();
        let sparse = c.to_sparse();
        let r = sparse_conservation_residual(&sparse, f.stationary());
        assert!(r < 1e-12, "residual {r}");
        // A wrong distribution must show a large residual.
        let bad = sparse_conservation_residual(&sparse, &[0.5, 0.25, 0.25]);
        assert!(bad > 1e-3);
    }
}
