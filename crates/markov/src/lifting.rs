//! Markov-chain liftings (paper, Section 3, following Chen–Lovász–Pak
//! and Hayes–Sinclair).
//!
//! A chain `M'` over `S'` is a *lifting* of `M` over `S` if there is a
//! map `f : S' → S` such that the ergodic flows satisfy
//!
//! ```text
//! Q_ij = Σ_{x ∈ f⁻¹(i), y ∈ f⁻¹(j)} Q'_xy     for all i, j ∈ S,
//! ```
//!
//! which immediately implies the stationary collapse of Lemma 1:
//! `π(v) = Σ_{x ∈ f⁻¹(v)} π'(x)`.
//!
//! The paper's central analytical device (Lemmas 5, 10, 13) is that the
//! *system* chain of an algorithm is a lifting of its *individual*
//! chain; this module verifies such claims numerically for exact chain
//! constructions.

use std::fmt;
use std::hash::Hash;

use pwf_obs::Metrics;

use crate::chain::MarkovChain;
use crate::flow::ErgodicFlow;
use crate::operator::TransitionOperator;
use crate::solve::PowerOptions;
use crate::sparse::SparseChain;
use crate::stationary::StationaryError;

/// Outcome of a successful lifting verification.
#[derive(Debug, Clone)]
pub struct LiftingReport {
    /// Maximum absolute violation of the flow homomorphism.
    pub flow_residual: f64,
    /// Maximum absolute violation of the stationary collapse (Lemma 1).
    pub stationary_residual: f64,
    /// Number of states in the lifted (bigger) chain.
    pub lifted_states: usize,
    /// Number of states in the base (smaller) chain.
    pub base_states: usize,
}

/// Why a lifting verification failed.
#[derive(Debug)]
pub enum LiftingError {
    /// The map sent a lifted state to a label absent from the base
    /// chain.
    UnmappedState {
        /// Index of the offending lifted state.
        lifted_index: usize,
    },
    /// Some base state has an empty preimage, so the map cannot induce
    /// a lifting.
    EmptyPreimage {
        /// Index of the base state with no preimage.
        base_index: usize,
    },
    /// The flow homomorphism is violated beyond tolerance.
    FlowMismatch {
        /// Base source state.
        from: usize,
        /// Base destination state.
        to: usize,
        /// Flow in the base chain.
        base_flow: f64,
        /// Aggregated flow from the lifted chain.
        lifted_flow: f64,
    },
    /// A stationary computation failed on one of the chains.
    Stationary(StationaryError),
}

impl fmt::Display for LiftingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiftingError::UnmappedState { lifted_index } => {
                write!(f, "lifted state {lifted_index} maps outside the base chain")
            }
            LiftingError::EmptyPreimage { base_index } => {
                write!(
                    f,
                    "base state {base_index} has no preimage under the lifting map"
                )
            }
            LiftingError::FlowMismatch {
                from,
                to,
                base_flow,
                lifted_flow,
            } => write!(
                f,
                "flow mismatch on base edge {from} -> {to}: base {base_flow}, lifted {lifted_flow}"
            ),
            LiftingError::Stationary(e) => write!(f, "stationary computation failed: {e}"),
        }
    }
}

impl std::error::Error for LiftingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LiftingError::Stationary(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StationaryError> for LiftingError {
    fn from(e: StationaryError) -> Self {
        LiftingError::Stationary(e)
    }
}

/// Verifies that `base` is a lifting image of `lifted` under `f`, i.e.
/// that collapsing `lifted` through `f` reproduces `base`'s ergodic
/// flow, within `tol`.
///
/// Both chains must be irreducible (the paper's chains are ergodic).
///
/// # Errors
///
/// See [`LiftingError`] for the failure cases.
pub fn verify_lifting<S2, S1>(
    lifted: &MarkovChain<S2>,
    base: &MarkovChain<S1>,
    f: impl Fn(&S2) -> S1,
    tol: f64,
) -> Result<LiftingReport, LiftingError>
where
    S2: Clone + Eq + Hash,
    S1: Clone + Eq + Hash,
{
    // Map every lifted state to a base index, checking surjectivity.
    let image = image_map(lifted.states(), |s| base.state_index(s), base.len(), f)?;

    let lifted_flow = ErgodicFlow::compute(lifted)?;
    let base_flow = ErgodicFlow::compute(base)?;

    // Aggregate lifted flow through f.
    let nb = base.len();
    let mut agg = vec![vec![0.0; nb]; nb];
    for x in 0..lifted.len() {
        for y in 0..lifted.len() {
            let q = lifted_flow.flow(x, y);
            if q != 0.0 {
                agg[image[x]][image[y]] += q;
            }
        }
    }

    let mut worst_flow: f64 = 0.0;
    for (i, row) in agg.iter().enumerate() {
        for (j, &lifted_q) in row.iter().enumerate() {
            let base_q = base_flow.flow(i, j);
            let diff = (lifted_q - base_q).abs();
            if diff > tol {
                return Err(LiftingError::FlowMismatch {
                    from: i,
                    to: j,
                    base_flow: base_q,
                    lifted_flow: lifted_q,
                });
            }
            worst_flow = worst_flow.max(diff);
        }
    }

    // Lemma 1: stationary collapse.
    let mut collapsed = vec![0.0; nb];
    for (x, &i) in image.iter().enumerate() {
        collapsed[i] += lifted_flow.stationary()[x];
    }
    let worst_pi = collapsed
        .iter()
        .zip(base_flow.stationary())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);

    Ok(LiftingReport {
        flow_residual: worst_flow,
        stationary_residual: worst_pi,
        lifted_states: lifted.len(),
        base_states: base.len(),
    })
}

fn image_map<S2, S1>(
    lifted_states: &[S2],
    base_index: impl Fn(&S1) -> Option<usize>,
    base_len: usize,
    f: impl Fn(&S2) -> S1,
) -> Result<Vec<usize>, LiftingError> {
    let mut image = Vec::with_capacity(lifted_states.len());
    for (x, label) in lifted_states.iter().enumerate() {
        match base_index(&f(label)) {
            Some(i) => image.push(i),
            None => return Err(LiftingError::UnmappedState { lifted_index: x }),
        }
    }
    let mut covered = vec![false; base_len];
    for &i in &image {
        covered[i] = true;
    }
    if let Some(base_index) = covered.iter().position(|&c| !c) {
        return Err(LiftingError::EmptyPreimage { base_index });
    }
    Ok(image)
}

/// Verifies the lifting on sparse chains, row by row: stationary
/// distributions come from the lazy power-iteration solver (under
/// `opts`, publishing `markov.stationary.*` metrics when given), and
/// the lifted ergodic flow is aggregated one CSR row at a time into a
/// base-sized accumulator — `O(nnz)` flow work and `O(base²)` memory,
/// never `O(lifted²)`.
///
/// # Errors
///
/// Same failure cases as [`verify_lifting`], plus solver
/// non-convergence surfaced as [`LiftingError::Stationary`].
pub fn verify_lifting_sparse<S2, S1>(
    lifted: &SparseChain<S2>,
    base: &SparseChain<S1>,
    f: impl Fn(&S2) -> S1,
    tol: f64,
    opts: &PowerOptions,
    metrics: Option<&Metrics>,
) -> Result<LiftingReport, LiftingError>
where
    S2: Clone + Eq + Hash,
    S1: Clone + Eq + Hash,
{
    let nb = base.len();
    let image = image_map(lifted.states(), |s| base.state_index(s), nb, f)?;

    let pi_lifted = lifted.stationary_with(opts, metrics)?.pi;
    let pi_base = base.stationary_with(opts, metrics)?.pi;

    // Aggregate the lifted flow through f, one sparse row at a time.
    let mut agg = vec![0.0; nb * nb];
    for (x, &ix) in image.iter().enumerate() {
        let pi_x = pi_lifted[x];
        if pi_x == 0.0 {
            continue;
        }
        for (y, p) in lifted.row(x) {
            agg[ix * nb + image[y as usize]] += pi_x * p;
        }
    }
    // Base flow, densified into the same shape (base is small).
    let mut base_q = vec![0.0; nb * nb];
    for (i, &pi_i) in pi_base.iter().enumerate() {
        for (j, p) in base.row(i) {
            base_q[i * nb + j as usize] += pi_i * p;
        }
    }

    let mut worst_flow: f64 = 0.0;
    for i in 0..nb {
        for j in 0..nb {
            let lifted_q = agg[i * nb + j];
            let bq = base_q[i * nb + j];
            let diff = (lifted_q - bq).abs();
            if diff > tol {
                return Err(LiftingError::FlowMismatch {
                    from: i,
                    to: j,
                    base_flow: bq,
                    lifted_flow: lifted_q,
                });
            }
            worst_flow = worst_flow.max(diff);
        }
    }

    // Lemma 1: stationary collapse.
    let mut collapsed = vec![0.0; nb];
    for (x, &i) in image.iter().enumerate() {
        collapsed[i] += pi_lifted[x];
    }
    let worst_pi = collapsed
        .iter()
        .zip(&pi_base)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);

    Ok(LiftingReport {
        flow_residual: worst_flow,
        stationary_residual: worst_pi,
        lifted_states: lifted.len(),
        base_states: nb,
    })
}

/// Maximum violation of *strong lumpability* (the kernel-level lifting
/// condition): for every lifted state `x` and base state `j`,
///
/// ```text
/// Σ_{y : f(y) = j} P'(x, y)  =  P(f(x), j).
/// ```
///
/// This is strictly stronger than the flow homomorphism — it implies
/// it for *any* stationary distribution (`Q_ij = Σ_{x ∈ f⁻¹(i)} π'_x ·
/// P(i, j) = π_i P(i, j)`), so checking it needs no solves at all:
/// pure `O(nnz)` row arithmetic. The paper's SCU/FAI/parallel liftings
/// all satisfy it.
///
/// # Errors
///
/// [`LiftingError::UnmappedState`] / [`LiftingError::EmptyPreimage`]
/// as in [`verify_lifting`].
pub fn kernel_residual_sparse<S2, S1>(
    lifted: &SparseChain<S2>,
    base: &SparseChain<S1>,
    f: impl Fn(&S2) -> S1,
) -> Result<f64, LiftingError>
where
    S2: Clone + Eq + Hash,
    S1: Clone + Eq + Hash,
{
    let nb = base.len();
    let image = image_map(lifted.states(), |s| base.state_index(s), nb, f)?;

    let mut collapsed = vec![0.0; nb];
    let mut touched: Vec<usize> = Vec::new();
    let mut worst: f64 = 0.0;
    for (x, &ix) in image.iter().enumerate() {
        for (y, p) in lifted.row(x) {
            let j = image[y as usize];
            if collapsed[j] == 0.0 {
                touched.push(j);
            }
            collapsed[j] += p;
        }
        // Compare the collapsed row against base row f(x), then reset.
        for (j, p) in base.row(ix) {
            let j = j as usize;
            if collapsed[j] == 0.0 {
                touched.push(j);
            }
            collapsed[j] -= p;
        }
        for &j in &touched {
            worst = worst.max(collapsed[j].abs());
            collapsed[j] = 0.0;
        }
        touched.clear();
    }
    Ok(worst)
}

/// Reusable scratch for matrix-free kernel checks: compares
/// caller-collapsed lifted rows against an implicit base operator's
/// rows, one row at a time.
///
/// This is the orbit-enumeration counterpart of
/// [`kernel_residual_sparse`]: instead of materializing the lifted
/// chain and reducing an enumerated state space, the caller enumerates
/// canonical orbit representatives combinatorially, collapses each
/// representative's row through the lifting map itself (dynamics, not
/// matrices), and hands the collapsed row here. The comparison uses
/// the same scatter/subtract/reset arithmetic as the stored-chain
/// check — `O(row support)` per call with no allocation after
/// warm-up — against a base row generated on the fly, so neither
/// chain is ever stored.
#[derive(Debug, Default)]
pub struct RowResidualScratch {
    /// Base-indexed accumulator, kept all-zero between calls.
    acc: Vec<f64>,
    touched: Vec<usize>,
    row: Vec<(u32, f64)>,
}

impl RowResidualScratch {
    /// Fresh scratch; the accumulator grows to the base size on first
    /// use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maximum violation of the kernel condition on one row: compares
    /// `collapsed` — the lifted row `Σ_{y : f(y) = j} P'(x, y)` of
    /// some state `x` with `f(x) = base_row`, given as
    /// `(base_target, prob)` pairs (any order, duplicates allowed and
    /// summed) — against the base operator's row `P(base_row, ·)`,
    /// over the union of supports.
    ///
    /// # Panics
    ///
    /// Panics if `base_row` or any collapsed target is out of bounds.
    pub fn residual<O: TransitionOperator + ?Sized>(
        &mut self,
        base: &O,
        base_row: usize,
        collapsed: &[(usize, f64)],
    ) -> f64 {
        let nb = base.len();
        assert!(base_row < nb, "base row {base_row} out of bounds ({nb})");
        if self.acc.len() < nb {
            self.acc.resize(nb, 0.0);
        }
        for &(j, p) in collapsed {
            assert!(j < nb, "collapsed target {j} out of bounds ({nb})");
            if self.acc[j] == 0.0 {
                self.touched.push(j);
            }
            self.acc[j] += p;
        }
        base.row_into(base_row, &mut self.row);
        for &(j, p) in &self.row {
            let j = j as usize;
            if self.acc[j] == 0.0 {
                self.touched.push(j);
            }
            self.acc[j] -= p;
        }
        let mut worst: f64 = 0.0;
        for &j in &self.touched {
            worst = worst.max(self.acc[j].abs());
            self.acc[j] = 0.0;
        }
        self.touched.clear();
        worst
    }
}

/// Collapses a distribution on the lifted chain's states through `f`
/// into a distribution on the base chain's states (the operation of
/// Lemma 1 applied to an arbitrary state vector).
///
/// # Errors
///
/// Returns [`LiftingError::UnmappedState`] if `f` maps a lifted state
/// outside the base chain.
///
/// # Panics
///
/// Panics if `dist.len() != lifted.len()`.
pub fn collapse_distribution<S2, S1>(
    lifted: &MarkovChain<S2>,
    base: &MarkovChain<S1>,
    f: impl Fn(&S2) -> S1,
    dist: &[f64],
) -> Result<Vec<f64>, LiftingError>
where
    S2: Clone + Eq + Hash,
    S1: Clone + Eq + Hash,
{
    assert_eq!(
        dist.len(),
        lifted.len(),
        "distribution must match lifted chain"
    );
    let mut out = vec![0.0; base.len()];
    for (x, label) in lifted.states().iter().enumerate() {
        let i = base
            .state_index(&f(label))
            .ok_or(LiftingError::UnmappedState { lifted_index: x })?;
        out[i] += dist[x];
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ChainBuilder;

    /// A 4-state chain that is a lifting of a 2-state chain under
    /// "parity of the label".
    fn lifted_pair() -> (MarkovChain<u8>, MarkovChain<u8>) {
        // Lifted: states 0,2 map to base 0; states 1,3 map to base 1.
        // Uniform walk between the classes.
        let lifted = ChainBuilder::new()
            .transition(0u8, 1, 0.25)
            .transition(0, 3, 0.25)
            .transition(0, 0, 0.5)
            .transition(2, 1, 0.25)
            .transition(2, 3, 0.25)
            .transition(2, 2, 0.5)
            .transition(1, 0, 0.25)
            .transition(1, 2, 0.25)
            .transition(1, 1, 0.5)
            .transition(3, 0, 0.25)
            .transition(3, 2, 0.25)
            .transition(3, 3, 0.5)
            .build()
            .unwrap();
        let base = ChainBuilder::new()
            .transition(0u8, 1, 0.5)
            .transition(0, 0, 0.5)
            .transition(1, 0, 0.5)
            .transition(1, 1, 0.5)
            .build()
            .unwrap();
        (lifted, base)
    }

    #[test]
    fn valid_lifting_verifies() {
        let (lifted, base) = lifted_pair();
        let report = verify_lifting(&lifted, &base, |&s| s % 2, 1e-9).unwrap();
        assert!(report.flow_residual < 1e-12);
        assert!(report.stationary_residual < 1e-12);
        assert_eq!(report.lifted_states, 4);
        assert_eq!(report.base_states, 2);
    }

    #[test]
    fn identity_is_a_lifting() {
        let (_, base) = lifted_pair();
        let report = verify_lifting(&base, &base, |&s| s, 1e-12).unwrap();
        assert!(report.flow_residual < 1e-15);
    }

    #[test]
    fn wrong_base_chain_fails_flow_check() {
        let (lifted, _) = lifted_pair();
        // Base with badly skewed probabilities cannot match the flows.
        let wrong = ChainBuilder::new()
            .transition(0u8, 1, 0.9)
            .transition(0, 0, 0.1)
            .transition(1, 0, 0.9)
            .transition(1, 1, 0.1)
            .build()
            .unwrap();
        assert!(matches!(
            verify_lifting(&lifted, &wrong, |&s| s % 2, 1e-9),
            Err(LiftingError::FlowMismatch { .. })
        ));
    }

    #[test]
    fn unmapped_state_is_reported() {
        let (lifted, base) = lifted_pair();
        assert!(matches!(
            verify_lifting(&lifted, &base, |&s| s + 10, 1e-9),
            Err(LiftingError::UnmappedState { .. })
        ));
    }

    #[test]
    fn non_surjective_map_is_reported() {
        let (lifted, base) = lifted_pair();
        assert!(matches!(
            verify_lifting(&lifted, &base, |_| 0u8, 1e-9),
            Err(LiftingError::EmptyPreimage { base_index: 1 })
        ));
    }

    #[test]
    fn sparse_verification_matches_dense() {
        let (lifted, base) = lifted_pair();
        let dense_report = verify_lifting(&lifted, &base, |&s| s % 2, 1e-9).unwrap();
        let report = verify_lifting_sparse(
            &lifted.to_sparse(),
            &base.to_sparse(),
            |&s| s % 2,
            1e-9,
            &PowerOptions::new(200_000, 1e-12),
            None,
        )
        .unwrap();
        assert_eq!(report.lifted_states, dense_report.lifted_states);
        assert_eq!(report.base_states, dense_report.base_states);
        assert!(report.flow_residual < 1e-9);
        assert!(report.stationary_residual < 1e-9);
    }

    #[test]
    fn sparse_verification_rejects_wrong_base() {
        let (lifted, _) = lifted_pair();
        let wrong = ChainBuilder::new()
            .transition(0u8, 1, 0.9)
            .transition(0, 0, 0.1)
            .transition(1, 0, 0.9)
            .transition(1, 1, 0.1)
            .build()
            .unwrap();
        assert!(matches!(
            verify_lifting_sparse(
                &lifted.to_sparse(),
                &wrong.to_sparse(),
                |&s| s % 2,
                1e-9,
                &PowerOptions::default(),
                None,
            ),
            Err(LiftingError::FlowMismatch { .. })
        ));
    }

    #[test]
    fn kernel_residual_is_zero_for_lumpable_lifting() {
        let (lifted, base) = lifted_pair();
        let r = kernel_residual_sparse(&lifted.to_sparse(), &base.to_sparse(), |&s| s % 2).unwrap();
        assert!(r < 1e-15, "kernel residual {r}");
    }

    #[test]
    fn kernel_residual_detects_non_lumpable_map() {
        // Identity-ish chain where collapsing rows through parity does
        // NOT reproduce a 2-state chain with the wrong probabilities.
        let (lifted, _) = lifted_pair();
        let wrong = ChainBuilder::new()
            .transition(0u8, 1, 0.9)
            .transition(0, 0, 0.1)
            .transition(1, 0, 0.9)
            .transition(1, 1, 0.1)
            .build()
            .unwrap();
        let r =
            kernel_residual_sparse(&lifted.to_sparse(), &wrong.to_sparse(), |&s| s % 2).unwrap();
        assert!(r > 0.1, "kernel residual {r}");
    }

    #[test]
    fn sparse_errors_match_dense_errors() {
        let (lifted, base) = lifted_pair();
        let (sl, sb) = (lifted.to_sparse(), base.to_sparse());
        assert!(matches!(
            kernel_residual_sparse(&sl, &sb, |&s| s + 10),
            Err(LiftingError::UnmappedState { .. })
        ));
        assert!(matches!(
            kernel_residual_sparse(&sl, &sb, |_| 0u8),
            Err(LiftingError::EmptyPreimage { base_index: 1 })
        ));
    }

    #[test]
    fn row_residual_scratch_matches_stored_kernel_check() {
        // Feed the scratch exactly what the stored-chain check
        // computes internally: the per-row collapses of the lifted
        // chain. Both paths must agree on the worst residual.
        let (lifted, base) = lifted_pair();
        let (sl, sb) = (lifted.to_sparse(), base.to_sparse());
        let want = kernel_residual_sparse(&sl, &sb, |&s| s % 2).unwrap();
        let mut scratch = RowResidualScratch::new();
        let mut worst: f64 = 0.0;
        for x in 0..sl.len() {
            let base_row = (sl.state(x) % 2) as usize;
            let collapsed: Vec<(usize, f64)> = sl
                .row(x)
                .map(|(y, p)| ((sl.state(y as usize) % 2) as usize, p))
                .collect();
            worst = worst.max(scratch.residual(&sb, base_row, &collapsed));
        }
        assert_eq!(worst, want);
    }

    #[test]
    fn row_residual_scratch_flags_mismatched_row() {
        let skew = ChainBuilder::new()
            .transition(0u8, 1, 0.9)
            .transition(0, 0, 0.1)
            .transition(1, 0, 0.2)
            .transition(1, 1, 0.8)
            .build()
            .unwrap()
            .to_sparse();
        let mut scratch = RowResidualScratch::new();
        // A collapsed row that is not skew's row 0 (off by 0.4)…
        let r = scratch.residual(&skew, 0, &[(0, 0.5), (1, 0.5)]);
        assert!((r - 0.4).abs() < 1e-15, "residual {r}");
        // …and one that is, with duplicate targets summed: residual 0.
        let r0 = scratch.residual(&skew, 0, &[(1, 0.45), (0, 0.1), (1, 0.45)]);
        assert_eq!(r0, 0.0);
    }

    #[test]
    fn collapse_distribution_preserves_mass() {
        let (lifted, base) = lifted_pair();
        // Builder state order is first-appearance: [0, 1, 3, 2].
        let d = collapse_distribution(&lifted, &base, |&s| s % 2, &[0.1, 0.2, 0.3, 0.4]).unwrap();
        assert!((d[0] - 0.5).abs() < 1e-12);
        assert!((d[1] - 0.5).abs() < 1e-12);
    }
}
