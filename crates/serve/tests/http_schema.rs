//! Schema pins for the service's wire formats, validated with the
//! runner's own zero-dependency JSON parser (the same approach as the
//! runner's `perfetto_schema` suite): the `/predict` response body,
//! the error shape, and the `/metrics` plain-text grammar are
//! contracts — dashboards and the CI gate parse them — so their shape
//! is locked here, field by field.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

use pwf_obs::ObsHandle;
use pwf_runner::json::Json;
use pwf_serve::server::{start, ServerConfig};

fn boot() -> (pwf_serve::server::ServerHandle, SocketAddr) {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    };
    let server = start(&config, ObsHandle::collecting(Some(1 << 12))).unwrap();
    let addr = server.addr();
    (server, addr)
}

fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {target} HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        if line.trim_end().is_empty() {
            break;
        }
    }
    let mut body = String::new();
    reader.read_to_string(&mut body).unwrap();
    (status, body)
}

/// Every `/predict` response is `{"query": {...}, "result": {...}}`
/// with the full canonical key echoed and a `model` discriminator in
/// the result.
#[test]
fn predict_response_schema_is_pinned() {
    let (server, addr) = boot();
    for (target, model, extra_fields) in [
        (
            "/predict?alg=scu&q=2&s=1&n=64",
            "theorem4",
            vec![
                "alpha",
                "system_latency",
                "individual_latency",
                "completion_rate",
            ],
        ),
        (
            "/predict?alg=fai&n=32",
            "lemma12",
            vec![
                "system_latency_bound",
                "individual_latency_bound",
                "completion_rate_bound",
            ],
        ),
        (
            "/predict?alg=parallel&q=3&n=16",
            "lemma11",
            vec!["system_latency", "individual_latency", "completion_rate"],
        ),
        (
            "/predict?alg=scu&n=4&layer=chain",
            "exact_chain",
            vec![
                "individual_states",
                "system_states",
                "system_latency",
                "lifting_flow_residual",
                "fairness_identity",
            ],
        ),
        (
            "/predict?alg=scu&n=8&layer=chain",
            "sparse_chain",
            vec!["system_states", "kernel_residual", "symmetry_classes"],
        ),
        (
            "/predict?alg=fai&n=4&layer=sim&steps=5000",
            "simulation",
            vec![
                "total_completions",
                "completion_rate",
                "mean_individual_latency",
            ],
        ),
    ] {
        let (status, body) = get(addr, target);
        assert_eq!(status, 200, "{target}: {body}");
        let doc = Json::parse(&body).unwrap_or_else(|e| panic!("{target}: bad JSON: {e}"));

        // The echoed query carries the complete canonical key.
        let query = doc
            .get("query")
            .unwrap_or_else(|| panic!("{target}: no query"));
        for field in ["alg", "layer"] {
            assert!(
                query.get(field).and_then(Json::as_str).is_some(),
                "{target}: query.{field} must be a string"
            );
        }
        for field in ["q", "s", "n", "steps", "seed"] {
            assert!(
                query.get(field).and_then(Json::as_u64).is_some(),
                "{target}: query.{field} must be an integer"
            );
        }

        let result = doc
            .get("result")
            .unwrap_or_else(|| panic!("{target}: no result"));
        assert_eq!(
            result.get("model").and_then(Json::as_str),
            Some(model),
            "{target}: model discriminator"
        );
        for field in extra_fields {
            assert!(
                result.get(field).is_some(),
                "{target}: result.{field} missing"
            );
        }
    }
    server.shutdown();
}

/// Error responses are `{"error": <string>, "status": <int>}` and the
/// status field matches the HTTP status line.
#[test]
fn error_response_schema_is_pinned() {
    let (server, addr) = boot();
    for (target, expected) in [
        ("/predict?alg=bogus&n=4", 400),
        ("/predict?alg=scu", 400),
        ("/predict?alg=fai&n=11&layer=chain", 400),
        ("/nowhere", 404),
    ] {
        let (status, body) = get(addr, target);
        assert_eq!(status, expected, "{target}");
        let doc = Json::parse(&body).unwrap();
        assert!(
            doc.get("error")
                .and_then(Json::as_str)
                .is_some_and(|m| !m.is_empty()),
            "{target}: error message"
        );
        assert_eq!(
            doc.get("status").and_then(Json::as_u64),
            Some(u64::from(expected)),
            "{target}: status echo"
        );
    }
    server.shutdown();
}

/// The `/metrics` grammar: a comment header, then `counter NAME INT`,
/// `gauge NAME FLOAT`, and
/// `hist NAME count=.. mean=.. min=.. max=.. p50=.. p90=.. p99=.. p999=..`
/// lines, in that kind order, sorted by name within each kind.
#[test]
fn metrics_text_format_is_pinned() {
    let (server, addr) = boot();
    // Generate some traffic so every record kind is populated.
    for _ in 0..3 {
        let (status, _) = get(addr, "/predict?alg=scu&q=2&s=1&n=64");
        assert_eq!(status, 200);
    }
    let (status, text) = get(addr, "/metrics");
    assert_eq!(status, 200);

    let mut lines = text.lines();
    assert_eq!(lines.next(), Some("# pwf-serve metrics"));

    let mut kinds_seen: Vec<&str> = Vec::new();
    let mut names_by_kind: std::collections::HashMap<&str, Vec<&str>> =
        std::collections::HashMap::new();
    for line in lines {
        let mut parts = line.split_whitespace();
        let kind = parts
            .next()
            .unwrap_or_else(|| panic!("empty line in {text}"));
        let name = parts
            .next()
            .unwrap_or_else(|| panic!("no name in {line:?}"));
        match kind {
            "counter" => {
                let value = parts
                    .next()
                    .unwrap_or_else(|| panic!("no value in {line:?}"));
                assert!(value.parse::<u64>().is_ok(), "counter value in {line:?}");
                assert!(parts.next().is_none(), "trailing tokens in {line:?}");
            }
            "gauge" => {
                let value = parts
                    .next()
                    .unwrap_or_else(|| panic!("no value in {line:?}"));
                assert!(value.parse::<f64>().is_ok(), "gauge value in {line:?}");
                assert!(parts.next().is_none(), "trailing tokens in {line:?}");
            }
            "hist" => {
                let fields: Vec<(&str, &str)> = parts
                    .map(|p| {
                        p.split_once('=')
                            .unwrap_or_else(|| panic!("bad field {p:?}"))
                    })
                    .collect();
                let keys: Vec<&str> = fields.iter().map(|(k, _)| *k).collect();
                assert_eq!(
                    keys,
                    vec!["count", "mean", "min", "max", "p50", "p90", "p99", "p999"],
                    "hist fields in {line:?}"
                );
                for (key, value) in fields {
                    if key == "mean" {
                        assert!(value.parse::<f64>().is_ok(), "hist {key} in {line:?}");
                    } else {
                        assert!(value.parse::<u64>().is_ok(), "hist {key} in {line:?}");
                    }
                }
            }
            other => panic!("unknown record kind {other:?} in {line:?}"),
        }
        if kinds_seen.last() != Some(&kind) {
            kinds_seen.push(kind);
        }
        names_by_kind.entry(kind).or_default().push(name);
    }
    // Kind order is pinned: counters, then gauges, then histograms.
    assert_eq!(kinds_seen, vec!["counter", "gauge", "hist"]);
    // Names sorted within each kind (stable diffs, binary-searchable).
    for (kind, names) in &names_by_kind {
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, &sorted, "{kind} names must be sorted");
    }

    // The contract counters the CI gate greps for.
    for required in [
        "counter serve.requests 3",
        "counter serve.cache_hits 2",
        "counter serve.computed 1",
        "counter serve.cache.hit_total 2",
        "counter serve.dedup.leaders 1",
        "counter serve.shed_total 0",
        "gauge serve.cache.entries 1.000",
        "gauge serve.queue_depth 0.000",
        "gauge serve.dedup.inflight 0.000",
    ] {
        assert!(
            text.lines().any(|l| l == required),
            "missing {required:?} in:\n{text}"
        );
    }
    assert!(
        text.lines()
            .any(|l| l.starts_with("hist serve.latency_us ")),
        "latency histogram missing in:\n{text}"
    );
    server.shutdown();
}

/// The `X-Pwf-Source` header is part of the contract: computed on the
/// first request, cache on the repeat.
#[test]
fn source_header_is_pinned() {
    let (server, addr) = boot();
    let source_of = |target: &str| -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {target} HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        let mut text = String::new();
        BufReader::new(stream).read_to_string(&mut text).unwrap();
        text.lines()
            .find_map(|l| l.strip_prefix("x-pwf-source: "))
            .unwrap_or_default()
            .to_string()
    };
    assert_eq!(source_of("/predict?alg=fai&n=16"), "computed");
    assert_eq!(source_of("/predict?alg=fai&n=16"), "cache");
    server.shutdown();
}
