//! Integration tests for in-flight request coalescing: the
//! lost-wakeup guarantee under real concurrency, at the coalescer
//! layer, at the engine layer, and over HTTP against a live server.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use pwf_obs::ObsHandle;
use pwf_serve::coalesce::{Coalescer, Role};
use pwf_serve::engine::{Engine, EngineConfig, Source};
use pwf_serve::predict::parse_key;

fn key(spec: &[(&str, &str)]) -> pwf_serve::predict::PredictKey {
    let pairs: Vec<(String, String)> = spec
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    parse_key(&pairs).unwrap()
}

/// The headline property: N concurrent identical requests execute the
/// computation exactly once, and every waiter receives the result —
/// no lost wakeups, no stragglers recomputing.
#[test]
fn n_concurrent_identical_requests_execute_exactly_once() {
    const N: usize = 32;
    let coalescer: Coalescer<u64> = Coalescer::new();
    let executions = AtomicUsize::new(0);
    let gate = Barrier::new(N);

    let results: Vec<(Result<u64, String>, Role)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..N)
            .map(|_| {
                let coalescer = &coalescer;
                let executions = &executions;
                let gate = &gate;
                scope.spawn(move || {
                    gate.wait();
                    coalescer.run(
                        "the-key",
                        || {
                            executions.fetch_add(1, Ordering::SeqCst);
                            // Long enough that every barrier-released
                            // thread arrives while the flight is open.
                            std::thread::sleep(Duration::from_millis(100));
                            Ok(42)
                        },
                        |_| {},
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(
        executions.load(Ordering::SeqCst),
        1,
        "exactly one execution across {N} identical concurrent requests"
    );
    let leaders = results.iter().filter(|(_, r)| *r == Role::Leader).count();
    assert_eq!(leaders, 1, "exactly one leader");
    for (result, _) in &results {
        assert_eq!(result.as_ref().unwrap(), &42, "every waiter got the result");
    }
    let stats = coalescer.stats();
    assert_eq!(stats.leaders, 1);
    assert_eq!(stats.joins as usize, N - 1);
    assert_eq!(coalescer.inflight_len(), 0, "flight deregistered");
}

/// Back-to-back waves: coalescing within a wave, fresh execution per
/// wave (the map is fully cleaned up in between).
#[test]
fn sequential_waves_each_execute_once() {
    const N: usize = 8;
    const WAVES: usize = 5;
    let coalescer: Arc<Coalescer<usize>> = Arc::new(Coalescer::new());
    for wave in 0..WAVES {
        let executions = AtomicUsize::new(0);
        let gate = Barrier::new(N);
        let results: Vec<usize> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..N)
                .map(|_| {
                    let coalescer = Arc::clone(&coalescer);
                    let executions = &executions;
                    let gate = &gate;
                    scope.spawn(move || {
                        gate.wait();
                        let (result, _) = coalescer.run(
                            "wave-key",
                            || {
                                executions.fetch_add(1, Ordering::SeqCst);
                                std::thread::sleep(Duration::from_millis(20));
                                Ok(wave)
                            },
                            |_| {},
                        );
                        result.unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(executions.load(Ordering::SeqCst), 1, "wave {wave}");
        assert!(results.iter().all(|&r| r == wave), "wave {wave} results");
    }
    assert_eq!(coalescer.stats().leaders, WAVES as u64);
}

/// The same property through the full engine: concurrent identical
/// /predict computations dedup to one execution, later requests hit
/// the cache, and all bodies are byte-identical.
#[test]
fn engine_coalesces_concurrent_identical_predictions() {
    const N: usize = 16;
    let engine = Engine::new(&EngineConfig::default(), ObsHandle::collecting(None));
    // Slow enough to hold the flight open: a 2M-step simulation.
    let slow = key(&[
        ("alg", "scu"),
        ("n", "32"),
        ("layer", "sim"),
        ("steps", "2000000"),
    ]);
    let gate = Barrier::new(N);

    let served: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..N)
            .map(|_| {
                let engine = &engine;
                let slow = &slow;
                let gate = &gate;
                scope.spawn(move || {
                    gate.wait();
                    engine.serve(slow).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let computed = served
        .iter()
        .filter(|s| s.source == Source::Computed)
        .count();
    let coalesced = served
        .iter()
        .filter(|s| s.source == Source::Coalesced)
        .count();
    assert_eq!(computed, 1, "one leader computed");
    assert_eq!(coalesced, N - 1, "everyone else joined in flight");
    let reference = &served[0].body;
    assert!(
        served.iter().all(|s| s.body == *reference),
        "all bodies byte-identical"
    );
    // Afterwards the key is in the cache — no recomputation.
    assert_eq!(engine.serve(&slow).unwrap().source, Source::Cache);
    let stats = engine.stats();
    assert_eq!(stats.dedup.leaders, 1);
    assert_eq!(stats.dedup.joins as usize, N - 1);
}

/// Distinct keys do not coalesce: concurrency across different
/// requests is preserved.
#[test]
fn distinct_keys_do_not_coalesce() {
    let coalescer: Coalescer<u64> = Coalescer::new();
    let gate = Barrier::new(4);
    std::thread::scope(|scope| {
        for i in 0..4u64 {
            let coalescer = &coalescer;
            let gate = &gate;
            scope.spawn(move || {
                gate.wait();
                let (result, role) = coalescer.run(
                    &format!("key-{i}"),
                    || {
                        std::thread::sleep(Duration::from_millis(20));
                        Ok(i)
                    },
                    |_| {},
                );
                assert_eq!(result.unwrap(), i);
                assert_eq!(role, Role::Leader);
            });
        }
    });
    let stats = coalescer.stats();
    assert_eq!(stats.leaders, 4);
    assert_eq!(stats.joins, 0);
}
