//! Property-based tests for the LRU result cache: for arbitrary
//! operation sequences, the intrusive-list implementation must agree
//! with a trivially-correct reference model (a `Vec` ordered by
//! recency), and the TTL machinery must respect its edge semantics.

// Proptest is an external crate gated behind `heavy-deps` so the
// default workspace builds with zero crates.io dependencies; enable
// the feature to run this suite.
#![cfg(feature = "heavy-deps")]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use pwf_serve::lru::{Clock, LruCache};

/// A reference model: most-recently-used first, evicts from the back.
struct ModelLru {
    capacity: usize,
    entries: Vec<(String, u32)>,
}

impl ModelLru {
    fn new(capacity: usize) -> Self {
        ModelLru {
            capacity,
            entries: Vec::new(),
        }
    }

    fn get(&mut self, key: &str) -> Option<u32> {
        let pos = self.entries.iter().position(|(k, _)| k == key)?;
        let entry = self.entries.remove(pos);
        let value = entry.1;
        self.entries.insert(0, entry);
        Some(value)
    }

    fn put(&mut self, key: &str, value: u32) {
        if let Some(pos) = self.entries.iter().position(|(k, _)| k == key) {
            self.entries.remove(pos);
        } else if self.entries.len() == self.capacity {
            self.entries.pop();
        }
        self.entries.insert(0, (key.to_string(), value));
    }

    fn keys(&self) -> Vec<String> {
        self.entries.iter().map(|(k, _)| k.clone()).collect()
    }
}

/// One scripted cache operation.
#[derive(Debug, Clone)]
enum Op {
    Get(u8),
    Put(u8, u32),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    // Keys are drawn from a small universe so gets hit often and
    // capacity pressure is constant.
    let op = prop_oneof![
        (0u8..12).prop_map(Op::Get),
        ((0u8..12), (0u32..1_000_000)).prop_map(|(k, v)| Op::Put(k, v)),
    ];
    prop::collection::vec(op, 1..200)
}

fn manual_clock() -> (Arc<AtomicU64>, Clock) {
    let tick = Arc::new(AtomicU64::new(0));
    let t = Arc::clone(&tick);
    (tick, Arc::new(move || t.load(Ordering::Relaxed)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Without TTL, every operation sequence leaves the real cache and
    /// the reference model with identical contents, recency order, and
    /// get results.
    #[test]
    fn agrees_with_the_reference_model(ops in ops(), capacity in 1usize..8) {
        let mut real: LruCache<u32> = LruCache::new(capacity, None);
        let mut model = ModelLru::new(capacity);
        for op in &ops {
            match op {
                Op::Get(k) => {
                    let key = format!("k{k}");
                    prop_assert_eq!(real.get(&key), model.get(&key));
                }
                Op::Put(k, v) => {
                    let key = format!("k{k}");
                    real.put(&key, *v);
                    model.put(&key, *v);
                }
            }
            prop_assert_eq!(real.keys_by_recency(), model.keys());
            prop_assert!(real.len() <= capacity);
        }
    }

    /// A capacity-1 cache is exactly "the last key written".
    #[test]
    fn capacity_one_is_last_writer_wins(writes in prop::collection::vec((0u8..6, (0u32..1_000_000)), 1..50)) {
        let mut cache: LruCache<u32> = LruCache::new(1, None);
        for (k, v) in &writes {
            cache.put(&format!("k{k}"), *v);
        }
        let (last_k, last_v) = writes.last().unwrap();
        prop_assert_eq!(cache.len(), 1);
        prop_assert_eq!(cache.get(&format!("k{last_k}")), Some(*last_v));
    }

    /// Zero TTL degrades the cache to a pass-through: no get ever
    /// returns a value, regardless of the write pattern.
    #[test]
    fn zero_ttl_never_serves(writes in prop::collection::vec(0u8..6, 1..50)) {
        let (_tick, clock) = manual_clock();
        let mut cache: LruCache<u32> = LruCache::with_clock(4, Some(0), clock);
        for (i, k) in writes.iter().enumerate() {
            let key = format!("k{k}");
            cache.put(&key, i as u32);
            prop_assert_eq!(cache.get(&key), None);
        }
        prop_assert_eq!(cache.stats().hits, 0);
    }

    /// An entry is alive strictly below its TTL and dead at or past
    /// it, wherever the boundary lands.
    #[test]
    fn ttl_boundary_is_exact(ttl in 1u64..1000, age in 0u64..2000) {
        let (tick, clock) = manual_clock();
        let mut cache: LruCache<u32> = LruCache::with_clock(2, Some(ttl), clock);
        cache.put("k", 7);
        tick.store(age, Ordering::Relaxed);
        let alive = cache.get("k").is_some();
        prop_assert_eq!(alive, age < ttl, "age {} vs ttl {}", age, ttl);
    }

    /// Gets protect an entry from eviction: after touching `hot`, a
    /// round of inserts up to capacity-1 fresh keys must not push it
    /// out.
    #[test]
    fn get_promotes_out_of_the_victim_slot(capacity in 2usize..8) {
        let mut cache: LruCache<u32> = LruCache::new(capacity, None);
        cache.put("hot", 1);
        // Fill the rest, making "hot" the LRU.
        for i in 0..capacity - 1 {
            cache.put(&format!("cold{i}"), 0);
        }
        prop_assert_eq!(cache.keys_by_recency().last().map(String::as_str), Some("hot"));
        // Touch it, then insert capacity-1 fresh keys: every cold key
        // cycles out, "hot" survives.
        prop_assert_eq!(cache.get("hot"), Some(1));
        for i in 0..capacity - 1 {
            cache.put(&format!("fresh{i}"), 0);
        }
        prop_assert_eq!(cache.get("hot"), Some(1));
    }
}
