//! Traffic shaping: a concurrency limit with bounded queueing and
//! load shedding.
//!
//! At most `max_active` requests execute at once; up to `max_queue`
//! more may wait (FIFO-fair in aggregate — wakeups race, but the
//! waiting count is strictly bounded); anything beyond that is shed
//! immediately with HTTP 429, and a waiter that outlasts
//! `max_wait` gives up with 503 rather than camping on a wedged
//! upstream. Shedding at the door instead of queueing without bound
//! is what keeps p999 meaningful under overload.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why admission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// Active and queue limits were both full: shed (HTTP 429).
    Shed,
    /// Queued longer than the configured maximum wait (HTTP 503).
    TimedOut,
}

#[derive(Debug, Default)]
struct Gate {
    active: usize,
    waiting: usize,
}

/// The shaper: shared admission state plus counters.
#[derive(Debug)]
pub struct Shaper {
    gate: Mutex<Gate>,
    freed: Condvar,
    max_active: usize,
    max_queue: usize,
    max_wait: Duration,
    shed: AtomicU64,
    timeouts: AtomicU64,
    queued: AtomicU64,
}

/// Aggregate shaper counters for the metrics endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShaperStats {
    /// Requests shed at the door (queue full).
    pub shed: u64,
    /// Requests that timed out while queued.
    pub timeouts: u64,
    /// Requests that had to queue before admission.
    pub queued: u64,
    /// Requests currently executing.
    pub active: usize,
    /// Requests currently waiting.
    pub waiting: usize,
}

/// An admission token; releasing it (drop) frees one slot and wakes a
/// waiter.
#[derive(Debug)]
pub struct Permit {
    shaper: Arc<Shaper>,
    /// Time spent queued before admission (zero on the fast path).
    pub queue_wait: Duration,
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut gate = self.shaper.gate.lock().expect("shaper gate poisoned");
        gate.active -= 1;
        drop(gate);
        self.shaper.freed.notify_one();
    }
}

impl Shaper {
    /// Creates a shaper admitting `max_active` concurrent requests
    /// with a queue of `max_queue` and a per-request queue budget of
    /// `max_wait`.
    ///
    /// # Panics
    ///
    /// Panics if `max_active == 0`.
    pub fn new(max_active: usize, max_queue: usize, max_wait: Duration) -> Arc<Self> {
        assert!(max_active > 0, "need at least one active slot");
        Arc::new(Shaper {
            gate: Mutex::new(Gate::default()),
            freed: Condvar::new(),
            max_active,
            max_queue,
            max_wait,
            shed: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            queued: AtomicU64::new(0),
        })
    }

    /// Requests admission: immediate when a slot is free, queued up to
    /// the limits otherwise.
    ///
    /// # Errors
    ///
    /// [`Rejection::Shed`] when both the active and queue limits are
    /// full, [`Rejection::TimedOut`] when queued past `max_wait`.
    pub fn admit(self: &Arc<Self>) -> Result<Permit, Rejection> {
        let mut gate = self.gate.lock().expect("shaper gate poisoned");
        if gate.active < self.max_active {
            gate.active += 1;
            return Ok(Permit {
                shaper: Arc::clone(self),
                queue_wait: Duration::ZERO,
            });
        }
        if gate.waiting >= self.max_queue {
            self.shed.fetch_add(1, Ordering::Relaxed);
            return Err(Rejection::Shed);
        }
        gate.waiting += 1;
        self.queued.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let deadline = self.max_wait;
        loop {
            let remaining = match deadline.checked_sub(started.elapsed()) {
                Some(r) if !r.is_zero() => r,
                _ => {
                    gate.waiting -= 1;
                    self.timeouts.fetch_add(1, Ordering::Relaxed);
                    return Err(Rejection::TimedOut);
                }
            };
            let (g, timeout) = self
                .freed
                .wait_timeout(gate, remaining)
                .expect("shaper gate poisoned");
            gate = g;
            if gate.active < self.max_active {
                gate.waiting -= 1;
                gate.active += 1;
                return Ok(Permit {
                    shaper: Arc::clone(self),
                    queue_wait: started.elapsed(),
                });
            }
            if timeout.timed_out() {
                gate.waiting -= 1;
                self.timeouts.fetch_add(1, Ordering::Relaxed);
                return Err(Rejection::TimedOut);
            }
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ShaperStats {
        let gate = self.gate.lock().expect("shaper gate poisoned");
        ShaperStats {
            shed: self.shed.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            queued: self.queued.load(Ordering::Relaxed),
            active: gate.active,
            waiting: gate.waiting,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    #[test]
    fn admits_up_to_the_limit_then_sheds() {
        let shaper = Shaper::new(2, 0, Duration::from_secs(1));
        let a = shaper.admit().unwrap();
        let b = shaper.admit().unwrap();
        assert_eq!(shaper.admit().unwrap_err(), Rejection::Shed);
        drop(a);
        let c = shaper.admit().unwrap();
        drop(b);
        drop(c);
        let stats = shaper.stats();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.active, 0);
    }

    #[test]
    fn queued_requests_are_admitted_when_slots_free() {
        let shaper = Shaper::new(1, 8, Duration::from_secs(10));
        let first = shaper.admit().unwrap();
        let gate = Arc::new(Barrier::new(5));
        let admitted: Vec<bool> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let shaper = Arc::clone(&shaper);
                    let gate = Arc::clone(&gate);
                    scope.spawn(move || {
                        gate.wait();
                        shaper.admit().map(drop).is_ok()
                    })
                })
                .collect();
            gate.wait();
            // Let the waiters park, then open the slot.
            std::thread::sleep(Duration::from_millis(50));
            drop(first);
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(admitted.iter().all(|&ok| ok));
        let stats = shaper.stats();
        assert!(stats.queued >= 1, "at least one request had to queue");
        assert_eq!(stats.active, 0);
        assert_eq!(stats.waiting, 0);
    }

    #[test]
    fn queue_wait_times_out() {
        let shaper = Shaper::new(1, 4, Duration::from_millis(50));
        let held = shaper.admit().unwrap();
        let started = Instant::now();
        assert_eq!(shaper.admit().unwrap_err(), Rejection::TimedOut);
        assert!(started.elapsed() >= Duration::from_millis(50));
        drop(held);
        assert_eq!(shaper.stats().timeouts, 1);
    }
}
