//! The built-in loadgen: `pwf serve --selftest`.
//!
//! Boots a server on an ephemeral port, precomputes the expected body
//! for every key in a small working set by calling
//! [`predict::compute`] directly, then drives tens of thousands of
//! keep-alive requests from seeded client threads — a Zipf-skewed key
//! popularity so the cache and the coalescer both engage — and
//! asserts **zero drift**: every served body byte-identical to the
//! direct computation. Client-side latency lands in merged log2
//! histograms (p50/p99/p999), and the whole report goes to
//! `BENCH_serve.json`.
//!
//! Round zero is special: all clients synchronize on a barrier and
//! request the same cold, slow simulation key at the same instant, so
//! in-flight deduplication provably fires (one leader, the rest
//! joiners) before the randomized traffic starts.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use pwf_obs::{Histogram, LatencySummary, ObsHandle};
use pwf_rng::{SeedableRng, Xoshiro256PlusPlus, Zipf};
use pwf_runner::json::Json;

use crate::engine::EngineConfig;
use crate::predict::{self, PredictKey};
use crate::server::{start, ServerConfig};

/// Loadgen knobs.
#[derive(Debug, Clone)]
pub struct SelftestConfig {
    /// Total successful requests to drive (the acceptance floor is
    /// 10,000).
    pub requests: u64,
    /// Concurrent client threads.
    pub clients: usize,
    /// Master seed for the per-client request streams.
    pub seed: u64,
    /// Write `BENCH_serve.json` into the working directory.
    pub write_bench: bool,
}

impl Default for SelftestConfig {
    fn default() -> Self {
        SelftestConfig {
            requests: 30_000,
            clients: 64,
            seed: 0x5E1F,
            write_bench: true,
        }
    }
}

impl SelftestConfig {
    /// The reduced profile (`--fast`): still at the 10,000-request
    /// acceptance floor, fewer clients.
    pub fn fast() -> Self {
        SelftestConfig {
            requests: 10_000,
            clients: 32,
            ..Self::default()
        }
    }
}

/// What the loadgen measured.
#[derive(Debug, Clone)]
pub struct SelftestReport {
    /// Successful (HTTP 200, drift-checked) requests.
    pub completed: u64,
    /// Responses whose body differed from the direct computation.
    pub drift: u64,
    /// 429/503 rejections that were retried.
    pub rejected_retries: u64,
    /// Responses served from the result cache.
    pub from_cache: u64,
    /// Responses that joined an in-flight computation.
    pub coalesced: u64,
    /// Responses computed fresh.
    pub computed: u64,
    /// Client-observed request latency (µs).
    pub latency: LatencySummary,
    /// Wall-clock duration of the drive phase.
    pub wall: Duration,
    /// Distinct keys in the working set.
    pub keys: usize,
}

impl SelftestReport {
    /// Successful requests per wall-clock second.
    pub fn throughput_rps(&self) -> f64 {
        self.completed as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Fraction of successes served from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        self.from_cache as f64 / self.completed.max(1) as f64
    }
}

/// The request working set: enough variety to touch every layer and
/// every algorithm family, small enough that the cache and coalescer
/// see heavy key reuse.
fn working_set() -> Vec<PredictKey> {
    let pairs = |spec: &[(&str, &str)]| -> PredictKey {
        let pairs: Vec<(String, String)> = spec
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        predict::parse_key(&pairs).expect("working-set keys are valid")
    };
    vec![
        // Theory: microsecond-fast closed forms.
        pairs(&[("alg", "scu"), ("q", "0"), ("s", "1"), ("n", "64")]),
        pairs(&[("alg", "scu"), ("q", "2"), ("s", "1"), ("n", "64")]),
        pairs(&[("alg", "scu"), ("q", "4"), ("s", "2"), ("n", "256")]),
        pairs(&[("alg", "fai"), ("n", "128")]),
        pairs(&[("alg", "parallel"), ("q", "3"), ("n", "512")]),
        // Chain: exact dense analyses (milliseconds).
        pairs(&[("alg", "scu"), ("n", "4"), ("layer", "chain")]),
        pairs(&[("alg", "scu"), ("n", "6"), ("layer", "chain")]),
        pairs(&[("alg", "fai"), ("n", "5"), ("layer", "chain")]),
        pairs(&[
            ("alg", "parallel"),
            ("q", "2"),
            ("n", "6"),
            ("layer", "chain"),
        ]),
        // Sim: seeded runs, tens of milliseconds.
        pairs(&[
            ("alg", "scu"),
            ("n", "16"),
            ("layer", "sim"),
            ("steps", "50000"),
        ]),
        pairs(&[
            ("alg", "fai"),
            ("n", "8"),
            ("layer", "sim"),
            ("steps", "50000"),
        ]),
        pairs(&[
            ("alg", "parallel"),
            ("q", "2"),
            ("n", "8"),
            ("layer", "sim"),
            ("steps", "50000"),
        ]),
    ]
}

/// The deliberately slow cold key for the dedup round: a simulation
/// long enough that every barrier-released client arrives while it is
/// still in flight.
fn dedup_key() -> PredictKey {
    let spec = [
        ("alg".to_string(), "scu".to_string()),
        ("n".to_string(), "32".to_string()),
        ("layer".to_string(), "sim".to_string()),
        ("steps".to_string(), "2000000".to_string()),
    ];
    predict::parse_key(&spec).expect("dedup key is valid")
}

/// One keep-alive client connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Issues one GET; returns `(status, x-pwf-source, body)`.
    fn get(&mut self, target: &str) -> std::io::Result<(u16, String, String)> {
        write!(
            self.writer,
            "GET {target} HTTP/1.1\r\nHost: selftest\r\n\r\n"
        )?;
        self.writer.flush()?;
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| std::io::Error::other(format!("bad status line {line:?}")))?;
        let mut source = String::new();
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            self.reader.read_line(&mut header)?;
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                let value = value.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.parse().map_err(std::io::Error::other)?;
                } else if name.eq_ignore_ascii_case("x-pwf-source") {
                    source = value.to_string();
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body).map_err(std::io::Error::other)?;
        Ok((status, source, body))
    }
}

/// Per-client tallies, merged after the drive.
#[derive(Default)]
struct ClientTally {
    completed: u64,
    drift: u64,
    rejected: u64,
    from_cache: u64,
    coalesced: u64,
    computed: u64,
    latency: Histogram,
    errors: Vec<String>,
}

/// Runs the full selftest: boot, precompute, drive, verify, report.
///
/// # Errors
///
/// Any gate failure (drift, missing dedup/cache engagement, transport
/// errors) or I/O failure, as a human-readable message.
pub fn run(config: &SelftestConfig, obs: ObsHandle) -> Result<SelftestReport, String> {
    let keys = working_set();
    let dedup = dedup_key();

    // Ground truth first: the drift gate compares every response
    // against these bytes.
    let mut expected: Vec<(String, Arc<String>)> = Vec::with_capacity(keys.len() + 1);
    for key in keys.iter().chain(std::iter::once(&dedup)) {
        let body = predict::compute(key).map_err(|e| format!("direct compute for {key}: {e}"))?;
        expected.push((key.canonical(), Arc::new(body)));
    }
    let expected = Arc::new(expected);

    let server_config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        engine: EngineConfig {
            max_active: config.clients.max(8),
            max_queue: config.clients * 4,
            ..EngineConfig::default()
        },
        max_conns: config.clients + 8,
    };
    let server = start(&server_config, obs).map_err(|e| format!("starting server: {e}"))?;
    let addr = server.addr();

    let remaining = AtomicU64::new(config.requests);
    let gate = Barrier::new(config.clients);
    let zipf = Zipf::new(keys.len(), 1.1);
    let started = Instant::now();

    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|client_id| {
                let keys = &keys;
                let dedup = &dedup;
                let expected = Arc::clone(&expected);
                let remaining = &remaining;
                let gate = &gate;
                let zipf = &zipf;
                let seed = config.seed ^ (client_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                scope.spawn(move || {
                    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
                    let mut tally = ClientTally::default();
                    let mut client = match Client::connect(addr) {
                        Ok(client) => client,
                        Err(e) => {
                            tally
                                .errors
                                .push(format!("client {client_id}: connect: {e}"));
                            gate.wait();
                            return tally;
                        }
                    };
                    // Round zero: everyone slams the same cold slow key.
                    gate.wait();
                    drive_one(&mut client, dedup, &expected, &mut tally, remaining, addr);
                    // Randomized traffic until the global budget drains.
                    while remaining.load(Ordering::Relaxed) > 0 {
                        // Zipf ranks are 1-based.
                        let key = &keys[zipf.sample(&mut rng) - 1];
                        if !drive_one(&mut client, key, &expected, &mut tally, remaining, addr) {
                            // Transport failure: reconnect once, give up
                            // on repeat.
                            match Client::connect(addr) {
                                Ok(fresh) => client = fresh,
                                Err(e) => {
                                    tally
                                        .errors
                                        .push(format!("client {client_id}: reconnect: {e}"));
                                    break;
                                }
                            }
                        }
                    }
                    tally
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = started.elapsed();

    let stats = server.engine().stats();
    server.shutdown();

    let mut completed = 0u64;
    let mut drift = 0u64;
    let mut rejected = 0u64;
    let mut from_cache = 0u64;
    let mut coalesced = 0u64;
    let mut computed = 0u64;
    let mut latency = Histogram::new();
    let mut errors: Vec<String> = Vec::new();
    for tally in &tallies {
        completed += tally.completed;
        drift += tally.drift;
        rejected += tally.rejected;
        from_cache += tally.from_cache;
        coalesced += tally.coalesced;
        computed += tally.computed;
        latency.merge(&tally.latency);
        errors.extend(tally.errors.iter().cloned());
    }

    if !errors.is_empty() {
        return Err(format!(
            "{} client transport errors, first: {}",
            errors.len(),
            errors[0]
        ));
    }
    if drift > 0 {
        return Err(format!(
            "DRIFT: {drift} responses differed from direct computation"
        ));
    }
    if completed < config.requests {
        return Err(format!(
            "only {completed} of {} requests completed",
            config.requests
        ));
    }
    if from_cache == 0 || stats.cache.hits == 0 {
        return Err("cache never engaged (zero hits)".to_string());
    }
    if coalesced == 0 || stats.dedup.joins == 0 {
        return Err("dedup never engaged (zero in-flight joins)".to_string());
    }

    let summary = LatencySummary::from_histogram(&latency)
        .ok_or_else(|| "no latency samples recorded".to_string())?;
    Ok(SelftestReport {
        completed,
        drift,
        rejected_retries: rejected,
        from_cache,
        coalesced,
        computed,
        latency: summary,
        wall,
        keys: keys.len() + 1,
    })
}

/// Issues one request and classifies the outcome. Returns `false` on a
/// transport error (caller reconnects).
fn drive_one(
    client: &mut Client,
    key: &PredictKey,
    expected: &[(String, Arc<String>)],
    tally: &mut ClientTally,
    remaining: &AtomicU64,
    addr: std::net::SocketAddr,
) -> bool {
    let canonical = key.canonical();
    let target = format!("/predict?{canonical}");
    loop {
        let begin = Instant::now();
        let (status, source, body) = match client.get(&target) {
            Ok(reply) => reply,
            Err(_) => return false,
        };
        match status {
            200 => {
                tally.latency.record(begin.elapsed().as_micros() as u64);
                let reference = expected
                    .iter()
                    .find(|(k, _)| *k == canonical)
                    .map(|(_, body)| body);
                match reference {
                    Some(reference) if **reference == body => {}
                    _ => tally.drift += 1,
                }
                match source.as_str() {
                    "cache" => tally.from_cache += 1,
                    "coalesced" => tally.coalesced += 1,
                    _ => tally.computed += 1,
                }
                // Claim one unit of the global budget (saturating: a
                // success after the budget drains still counts).
                let _ = remaining
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
                tally.completed += 1;
                return true;
            }
            429 | 503 => {
                // Shed or queue-timeout: brief backoff, then retry the
                // same key on a fresh connection (the server closed
                // rejected ones are still keep-alive, but reconnect
                // defensively after repeated rejections).
                tally.rejected += 1;
                std::thread::sleep(Duration::from_millis(2));
                if tally.rejected % 64 == 0 {
                    match Client::connect(addr) {
                        Ok(fresh) => *client = fresh,
                        Err(_) => return false,
                    }
                }
            }
            other => {
                tally
                    .errors
                    .push(format!("unexpected status {other} for {canonical}"));
                tally.drift += 1;
                return true;
            }
        }
    }
}

/// Renders the report (plus server-side stats) as the
/// `BENCH_serve.json` document.
pub fn bench_json(report: &SelftestReport, config: &SelftestConfig) -> Json {
    let latency = |s: &LatencySummary| {
        Json::Obj(vec![
            ("count".into(), Json::Int(s.count as i128)),
            ("mean_us".into(), Json::Num(s.mean)),
            ("min_us".into(), Json::Int(s.min as i128)),
            ("max_us".into(), Json::Int(s.max as i128)),
            ("p50_us".into(), Json::Int(s.p50 as i128)),
            ("p90_us".into(), Json::Int(s.p90 as i128)),
            ("p99_us".into(), Json::Int(s.p99 as i128)),
            ("p999_us".into(), Json::Int(s.p999 as i128)),
        ])
    };
    Json::Obj(vec![
        ("experiment".into(), Json::Str("exp_serve_bench".into())),
        ("requests".into(), Json::Int(config.requests as i128)),
        ("clients".into(), Json::Int(config.clients as i128)),
        ("completed".into(), Json::Int(report.completed as i128)),
        ("drift".into(), Json::Int(report.drift as i128)),
        ("keys".into(), Json::Int(report.keys as i128)),
        ("from_cache".into(), Json::Int(report.from_cache as i128)),
        ("coalesced".into(), Json::Int(report.coalesced as i128)),
        ("computed".into(), Json::Int(report.computed as i128)),
        (
            "rejected_retries".into(),
            Json::Int(report.rejected_retries as i128),
        ),
        ("cache_hit_rate".into(), Json::Num(report.cache_hit_rate())),
        ("throughput_rps".into(), Json::Num(report.throughput_rps())),
        ("wall_s".into(), Json::Num(report.wall.as_secs_f64())),
        ("latency".into(), latency(&report.latency)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn working_set_keys_are_distinct_and_computable() {
        let keys = working_set();
        let canon: std::collections::HashSet<String> = keys.iter().map(|k| k.canonical()).collect();
        assert_eq!(canon.len(), keys.len(), "keys must be distinct");
        assert!(!canon.contains(&dedup_key().canonical()));
    }

    #[test]
    fn small_selftest_passes_all_gates() {
        // A miniature run: the full profile is exercised by
        // `pwf serve --selftest` in CI; this keeps `cargo test` quick.
        let config = SelftestConfig {
            requests: 400,
            clients: 16,
            seed: 7,
            write_bench: false,
        };
        let report = run(&config, ObsHandle::collecting(None)).unwrap();
        assert!(report.completed >= 400);
        assert_eq!(report.drift, 0);
        assert!(report.from_cache > 0, "cache engaged");
        assert!(report.coalesced > 0, "dedup engaged");
        assert!(report.latency.count >= report.completed);
        let doc = bench_json(&report, &config);
        assert_eq!(
            doc.get("experiment").and_then(Json::as_str),
            Some("exp_serve_bench")
        );
    }
}
