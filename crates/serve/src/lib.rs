//! pwf-serve: the latency-prediction service.
//!
//! A zero-dependency HTTP/1.1 server over `std::net` that answers
//! `GET /predict` by invoking the repo's own analysis layers —
//! closed-form theory, Markov-chain analysis, and the seeded
//! simulator — behind three production layers:
//!
//! 1. **traffic shaping** ([`shaper`]): a concurrency limit with
//!    bounded queueing and 429 shedding;
//! 2. **result caching** ([`lru`]): a fixed-capacity LRU keyed on the
//!    canonical query, with optional TTL;
//! 3. **in-flight deduplication** ([`coalesce`]): identical concurrent
//!    requests join one execution (no lost wakeups by construction).
//!
//! The service is itself an instance of the system the paper studies:
//! request tickets are drawn from the lock-free fetch-and-increment
//! counter of `pwf-hardware` (Algorithm 5), and its CAS retry counts
//! feed a `serve.ticket_steps` histogram — a live sample of the
//! step distribution whose tail the paper's Markov analysis predicts.
//!
//! [`selftest`] is the built-in loadgen (`pwf serve --selftest`):
//! tens of thousands of concurrent requests through dedup + cache,
//! gated on zero drift against direct computation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod coalesce;
pub mod engine;
pub mod http;
pub mod lru;
pub mod predict;
pub mod selftest;
pub mod server;
pub mod shaper;

pub use coalesce::{CoalesceStats, Coalescer, Role};
pub use engine::{Engine, EngineConfig, ServeError, Served, Source};
pub use lru::{CacheStats, LruCache};
pub use predict::{compute, parse_key, PredictKey};
pub use selftest::{SelftestConfig, SelftestReport};
pub use server::{start, ServerConfig, ServerHandle};
pub use shaper::{Rejection, Shaper, ShaperStats};
