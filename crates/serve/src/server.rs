//! The HTTP server: a bounded thread-per-connection acceptor over
//! `std::net`, routing onto the [`Engine`](crate::engine::Engine).
//!
//! Routes:
//!
//! * `GET /predict?alg=…&q=…&s=…&n=…&layer=…` — a prediction, served
//!   through shaping → cache → coalescing;
//! * `GET /metrics` — the `serve.*` counters, gauges, and latency
//!   histograms in a pinned plain-text format;
//! * `GET /trace` — the request-span ring as Perfetto JSON (when
//!   tracing is enabled);
//! * `GET /flight` — the most recent flight dump (404 until the tail
//!   watchdog trips);
//! * `GET /healthz` — liveness.
//!
//! Every connection carries its own pwf-obs [`ThreadRecorder`]: each
//! request becomes an `OpStart`/`OpEnd` span pair (arg = route tag /
//! status code, tick = microseconds since server start), so a busy
//! server renders in the Perfetto UI exactly like a simulator run.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pwf_obs::{EventKind, ObsHandle};
use pwf_runner::json::Json;

use crate::engine::{Engine, EngineConfig, ServeError, Served};
use crate::http::{parse_request, ParseError, Request, Response};
use crate::predict;

/// Per-connection socket read timeout: bounds how long an idle
/// keep-alive connection can pin a thread after shutdown.
const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Engine (cache / dedup / shaper) knobs.
    pub engine: EngineConfig,
    /// Most connection threads alive at once; excess connections are
    /// answered `503` and closed without spawning.
    pub max_conns: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            engine: EngineConfig::default(),
            max_conns: 256,
        }
    }
}

/// A running server; dropping it (or calling
/// [`shutdown`](ServerHandle::shutdown)) stops the acceptor.
pub struct ServerHandle {
    addr: SocketAddr,
    engine: Arc<Engine>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish()
    }
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine, for stats inspection.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Stops accepting and joins the acceptor thread. Connection
    /// threads drain on their own (read timeout or peer close).
    pub fn shutdown(mut self) {
        self.stop_acceptor();
    }

    fn stop_acceptor(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Unblock the blocking accept with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = acceptor.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_acceptor();
    }
}

/// Binds and starts serving on a background acceptor thread.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn start(config: &ServerConfig, obs: ObsHandle) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let engine = Engine::new(&config.engine, obs.clone());
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let max_conns = config.max_conns.max(1);

    let acceptor = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let obs = obs.clone();
        std::thread::Builder::new()
            .name("pwf-serve-accept".into())
            .spawn(move || {
                let live = Arc::new(AtomicUsize::new(0));
                let mut conn_id: u32 = 0;
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    if live.load(Ordering::SeqCst) >= max_conns {
                        // Full house: refuse at the door without a
                        // thread.
                        let mut stream = stream;
                        let _ = Response::text(503, "connection limit reached\n")
                            .write_to(&mut stream, false);
                        if let Some(metrics) = obs.metrics() {
                            metrics.counter_add("serve.conn_refused", 1);
                        }
                        continue;
                    }
                    conn_id = conn_id.wrapping_add(1);
                    live.fetch_add(1, Ordering::SeqCst);
                    let engine = Arc::clone(&engine);
                    let conn_live = Arc::clone(&live);
                    let stop = Arc::clone(&stop);
                    let obs = obs.clone();
                    let spawned = std::thread::Builder::new()
                        .name(format!("pwf-serve-conn-{conn_id}"))
                        .spawn(move || {
                            handle_connection(stream, &engine, &obs, conn_id, started, &stop);
                            conn_live.fetch_sub(1, Ordering::SeqCst);
                        });
                    if spawned.is_err() {
                        live.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            })?
    };

    Ok(ServerHandle {
        addr,
        engine,
        stop,
        acceptor: Some(acceptor),
    })
}

/// Route tags for trace spans (`OpStart.arg`).
const TAG_PREDICT: u64 = 1;
const TAG_METRICS: u64 = 2;
const TAG_TRACE: u64 = 3;
const TAG_HEALTHZ: u64 = 4;
const TAG_FLIGHT: u64 = 5;
const TAG_OTHER: u64 = 0;

fn route_tag(path: &str) -> u64 {
    match path {
        "/predict" => TAG_PREDICT,
        "/metrics" => TAG_METRICS,
        "/trace" => TAG_TRACE,
        "/healthz" => TAG_HEALTHZ,
        "/flight" => TAG_FLIGHT,
        _ => TAG_OTHER,
    }
}

/// One connection's keep-alive loop.
fn handle_connection(
    stream: TcpStream,
    engine: &Arc<Engine>,
    obs: &ObsHandle,
    conn_id: u32,
    started: Instant,
    stop: &Arc<AtomicBool>,
) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let mut recorder = obs.trace().map(|collector| collector.recorder(conn_id));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut writer = stream;

    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let request = match parse_request(&mut reader) {
            Ok(request) => request,
            Err(ParseError::ConnectionClosed) => break,
            Err(ParseError::Io(_)) => break,
            Err(ParseError::Malformed(message)) => {
                let _ = error_response(400, &message).write_to(&mut writer, false);
                break;
            }
        };
        let tick = started.elapsed().as_micros() as u64;
        if let Some(recorder) = recorder.as_mut() {
            recorder.record(EventKind::OpStart, tick, route_tag(&request.path));
        }
        let keep_alive = request.keep_alive;
        let response = route(&request, engine, started);
        if let Some(recorder) = recorder.as_mut() {
            recorder.record(
                EventKind::OpEnd,
                started.elapsed().as_micros() as u64,
                u64::from(response.status),
            );
        }
        if response.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
            break;
        }
    }
    let _ = writer.flush();
    if let Some(recorder) = recorder {
        recorder.finish();
    }
}

/// A JSON error body (shape pinned by the schema tests).
fn error_response(status: u16, message: &str) -> Response {
    let body = Json::Obj(vec![
        ("error".into(), Json::Str(message.to_string())),
        ("status".into(), Json::Int(i128::from(status))),
    ])
    .render();
    Response::json(status, body)
}

/// Dispatches one parsed request.
fn route(request: &Request, engine: &Arc<Engine>, started: Instant) -> Response {
    if request.method != "GET" {
        return error_response(405, "only GET is supported");
    }
    match request.path.as_str() {
        "/predict" => predict_route(request, engine),
        "/metrics" => Response::text(200, render_metrics(engine)),
        "/trace" => trace_route(engine, started),
        "/flight" => flight_route(engine),
        "/healthz" => Response::text(200, "ok\n"),
        other => error_response(404, &format!("no route {other:?}")),
    }
}

fn predict_route(request: &Request, engine: &Arc<Engine>) -> Response {
    let key = match predict::parse_key(&request.query) {
        Ok(key) => key,
        Err(message) => return error_response(400, &message),
    };
    match engine.serve(&key) {
        Ok(Served {
            body,
            source,
            ticket,
        }) => Response::json(200, body.as_ref().clone())
            .header("x-pwf-source", source.name())
            .header("x-pwf-ticket", ticket.to_string()),
        Err(ServeError::Overloaded) => error_response(429, "overloaded: request shed"),
        Err(ServeError::QueueTimeout) => error_response(503, "queue admission timed out"),
        Err(ServeError::Failed(message)) => error_response(500, &message),
        Err(ServeError::SloBreach { latency_us, slo_us }) => error_response(
            504,
            &format!("slo breach: served in {latency_us}us against an slo of {slo_us}us"),
        ),
    }
}

/// The most recent flight dump (404 until the watchdog trips).
fn flight_route(engine: &Arc<Engine>) -> Response {
    match engine.flight() {
        Some(dump) => Response::json(200, dump.to_json()),
        None => error_response(404, "no flight dump captured (watchdog has not tripped)"),
    }
}

fn trace_route(engine: &Arc<Engine>, started: Instant) -> Response {
    match engine.obs().trace() {
        Some(collector) => {
            let _ = started;
            let events = collector.events();
            let body = pwf_obs::trace_json(&events, "pwf-serve", collector.ticks_per_us());
            Response::json(200, body)
        }
        None => error_response(404, "tracing is not enabled on this server"),
    }
}

/// Renders the metrics endpoint body. Format (pinned by the schema
/// tests): one record per line —
///
/// ```text
/// # pwf-serve metrics
/// counter serve.requests 1234
/// gauge serve.cache.entries 12
/// hist serve.latency_us count=100 mean=41.250 min=2 max=950 p50=31 p90=127 p99=511 p999=1023
/// ```
///
/// sorted by kind then name, counters/quantiles as integers, gauges
/// and means with three decimals.
pub fn render_metrics(engine: &Arc<Engine>) -> String {
    let stats = engine.stats();
    let mut out = String::from("# pwf-serve metrics\n");
    let mut counters: Vec<(String, u64)> = Vec::new();
    let mut gauges: Vec<(String, f64)> = vec![
        ("serve.cache.entries".into(), stats.cache_len as f64),
        ("serve.shaper.active".into(), stats.shaper.active as f64),
        ("serve.shaper.waiting".into(), stats.shaper.waiting as f64),
        ("serve.queue_depth".into(), stats.shaper.waiting as f64),
        ("serve.dedup.inflight".into(), stats.inflight as f64),
    ];
    let mut hists: Vec<(String, pwf_obs::LatencySummary)> = Vec::new();
    if let Some(metrics) = engine.obs().metrics() {
        let snapshot = metrics.snapshot();
        counters.extend(snapshot.counters);
        gauges.extend(snapshot.gauges);
        hists.extend(snapshot.histograms);
    }
    // The layer-native counters exist even when the obs registry is
    // disabled; surface them under stable names either way.
    for (name, value) in [
        ("serve.cache.hit_total", stats.cache.hits),
        ("serve.cache.miss_total", stats.cache.misses),
        ("serve.cache.evictions", stats.cache.evictions),
        ("serve.cache.expirations", stats.cache.expirations),
        ("serve.dedup.leaders", stats.dedup.leaders),
        ("serve.dedup.joins", stats.dedup.joins),
        ("serve.shaper.shed_total", stats.shaper.shed),
        ("serve.shed_total", stats.shaper.shed),
        ("serve.shaper.timeouts", stats.shaper.timeouts),
        ("serve.shaper.queued_total", stats.shaper.queued),
    ] {
        counters.push((name.to_string(), value));
    }
    counters.sort();
    counters.dedup_by(|a, b| a.0 == b.0);
    gauges.sort_by(|a, b| a.0.cmp(&b.0));
    hists.sort_by(|a, b| a.0.cmp(&b.0));
    for (name, value) in &counters {
        out.push_str(&format!("counter {name} {value}\n"));
    }
    for (name, value) in &gauges {
        out.push_str(&format!("gauge {name} {value:.3}\n"));
    }
    for (name, h) in &hists {
        out.push_str(&format!(
            "hist {name} count={} mean={:.3} min={} max={} p50={} p90={} p99={} p999={}\n",
            h.count, h.mean, h.min, h.max, h.p50, h.p90, h.p99, h.p999
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, Read as _};

    fn get(addr: SocketAddr, target: &str) -> (u16, Vec<(String, String)>, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {target} HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        let mut headers = Vec::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
            }
        }
        let mut body = String::new();
        reader.read_to_string(&mut body).unwrap();
        (status, headers, body)
    }

    fn ephemeral() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            ..ServerConfig::default()
        }
    }

    #[test]
    fn end_to_end_predict_metrics_healthz() {
        let server = start(&ephemeral(), ObsHandle::collecting(Some(1 << 12))).unwrap();
        let addr = server.addr();

        let (status, _, body) = get(addr, "/healthz");
        assert_eq!((status, body.as_str()), (200, "ok\n"));

        let (status, headers, body) = get(addr, "/predict?alg=scu&q=2&s=1&n=64");
        assert_eq!(status, 200);
        let source = headers.iter().find(|(n, _)| n == "x-pwf-source").unwrap();
        assert_eq!(source.1, "computed");
        let doc = Json::parse(&body).unwrap();
        assert_eq!(
            doc.get("query")
                .and_then(|q| q.get("alg"))
                .and_then(Json::as_str),
            Some("scu")
        );

        // Same query again: served from cache, byte-identical.
        let (status, headers, again) = get(addr, "/predict?alg=scu&q=2&s=1&n=64");
        assert_eq!(status, 200);
        assert_eq!(
            headers.iter().find(|(n, _)| n == "x-pwf-source").unwrap().1,
            "cache"
        );
        assert_eq!(again, body);

        let (status, _, metrics) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(metrics.starts_with("# pwf-serve metrics\n"));
        assert!(
            metrics.contains("counter serve.cache_hits 1\n"),
            "{metrics}"
        );
        assert!(metrics.contains("counter serve.requests 2\n"), "{metrics}");

        let (status, _, errors) = get(addr, "/predict?alg=nope&n=4");
        assert_eq!(status, 400);
        assert!(Json::parse(&errors).unwrap().get("error").is_some());

        let (status, _, _) = get(addr, "/nope");
        assert_eq!(status, 404);

        server.shutdown();
    }

    #[test]
    fn trace_endpoint_exports_request_spans() {
        let server = start(&ephemeral(), ObsHandle::collecting(Some(1 << 12))).unwrap();
        let addr = server.addr();
        let _ = get(addr, "/predict?alg=fai&n=4");
        let (status, _, trace) = get(addr, "/trace");
        assert_eq!(status, 200);
        let doc = Json::parse(&trace).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        assert!(!events.is_empty(), "request spans must appear in the trace");
        server.shutdown();
    }

    #[test]
    fn flight_route_serves_the_dump_after_a_trip() {
        let mut config = ephemeral();
        config.engine.arm_us = Some(1);
        let server = start(&config, ObsHandle::collecting(Some(1 << 12))).unwrap();
        let addr = server.addr();

        let (status, _, _) = get(addr, "/flight");
        assert_eq!(status, 404, "no dump before the watchdog trips");

        // A real multi-millisecond simulation against a 1 µs arm.
        let (status, _, _) = get(addr, "/predict?alg=scu&n=16&layer=sim&steps=200000");
        assert_eq!(status, 200);

        let (status, _, body) = get(addr, "/flight");
        assert_eq!(status, 200);
        let doc = Json::parse(&body).unwrap();
        assert_eq!(
            doc.get("reason").and_then(Json::as_str),
            Some("tail exceedance")
        );
        assert!(doc.get("offenders").and_then(Json::as_array).is_some());
        assert!(
            doc.get("trace")
                .and_then(|t| t.get("traceEvents"))
                .is_some(),
            "embedded Perfetto trace rides along"
        );
        server.shutdown();
    }

    #[test]
    fn slo_5xx_turns_breaches_into_504() {
        let mut config = ephemeral();
        config.engine.slo_us = Some(1);
        config.engine.slo_fail = true;
        let server = start(&config, ObsHandle::disabled()).unwrap();
        let (status, _, body) = get(
            server.addr(),
            "/predict?alg=scu&n=16&layer=sim&steps=200000",
        );
        assert_eq!(status, 504);
        assert!(Json::parse(&body).unwrap().get("error").is_some());
        server.shutdown();
    }

    #[test]
    fn trace_route_is_404_without_tracing() {
        let server = start(&ephemeral(), ObsHandle::disabled()).unwrap();
        let (status, _, _) = get(server.addr(), "/trace");
        assert_eq!(status, 404);
        server.shutdown();
    }
}
