//! The prediction request path: query parsing, canonical cache keys,
//! and the layer dispatch into the repo's theory / chain / simulator
//! engines.
//!
//! A request names an algorithm family, its parameters, a process
//! count, and which layer of the reproduction should answer:
//!
//! * `layer=theory` — closed forms (Theorems 4–5, Lemmas 11–12):
//!   microseconds of compute;
//! * `layer=chain` — exact or sparse Markov-chain analysis
//!   (`pwf-markov` through `pwf-core`): milliseconds to seconds;
//! * `layer=sim` — a seeded discrete-time simulation (`pwf-sim`):
//!   deterministic for a given `(steps, seed)`, so it caches and
//!   coalesces like any pure function.
//!
//! Every response body is a pure function of the canonical key — no
//! timestamps, no per-request state — which is what makes the LRU
//! cache and the drift gate ("server output byte-identical to direct
//! invocation") sound.

use pwf_core::chain_analysis::{analyze, analyze_scu_large, ChainFamily};
use pwf_core::{AlgorithmSpec, SimExperiment};
use pwf_markov::solve::PowerOptions;
use pwf_runner::json::Json;
use pwf_theory::bounds::{fai_system_latency_bound, ScuPrediction};

/// Hard cap on `n` (largest value any layer accepts).
pub const MAX_N: usize = 4096;

/// Hard cap on simulated steps per request.
pub const MAX_STEPS: u64 = 10_000_000;

/// Largest `n` the chain layer accepts for `SCU(0,1)` (sparse path).
pub const MAX_CHAIN_SCU_N: usize = 64;

/// Default simulated steps when the query does not say.
pub const DEFAULT_STEPS: u64 = 200_000;

/// Default simulation seed when the query does not say.
pub const DEFAULT_SEED: u64 = 0x5EED;

/// Which algorithm family a request asks about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Alg {
    /// `SCU(q, s)` (Algorithm 2).
    Scu,
    /// Fetch-and-increment via augmented CAS (Algorithm 5).
    Fai,
    /// Parallel code with `q`-step calls (Algorithm 4).
    Parallel,
}

impl Alg {
    /// Stable query-string spelling.
    pub fn name(self) -> &'static str {
        match self {
            Alg::Scu => "scu",
            Alg::Fai => "fai",
            Alg::Parallel => "parallel",
        }
    }
}

/// Which analysis layer answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layer {
    /// Closed-form predictions.
    Theory,
    /// Markov-chain analysis.
    Chain,
    /// Seeded simulation.
    Sim,
}

impl Layer {
    /// Stable query-string spelling.
    pub fn name(self) -> &'static str {
        match self {
            Layer::Theory => "theory",
            Layer::Chain => "chain",
            Layer::Sim => "sim",
        }
    }
}

/// A validated, canonicalized prediction request — the cache and
/// coalescing key.
///
/// Fields irrelevant to the `(alg, layer)` combination are forced to
/// zero during validation so spelling variants of the same question
/// (`seed=7` on a theory query, say) cannot fragment the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PredictKey {
    /// Algorithm family.
    pub alg: Alg,
    /// Preamble length `q` (scu, parallel).
    pub q: usize,
    /// Scan length `s` (scu only).
    pub s: usize,
    /// Process count.
    pub n: usize,
    /// Answering layer.
    pub layer: Layer,
    /// Simulated steps (sim only; zero elsewhere).
    pub steps: u64,
    /// Simulation seed (sim only; zero elsewhere).
    pub seed: u64,
}

impl PredictKey {
    /// The canonical string form — what the cache, the coalescer, and
    /// the metrics key on.
    pub fn canonical(&self) -> String {
        format!(
            "alg={}&q={}&s={}&n={}&layer={}&steps={}&seed={}",
            self.alg.name(),
            self.q,
            self.s,
            self.n,
            self.layer.name(),
            self.steps,
            self.seed
        )
    }
}

impl std::fmt::Display for PredictKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.canonical())
    }
}

fn parse_field<T: std::str::FromStr>(
    pairs: &[(String, String)],
    name: &str,
    default: T,
) -> Result<T, String> {
    match pairs.iter().find(|(k, _)| k == name) {
        Some((_, v)) => v
            .parse()
            .map_err(|_| format!("parameter {name:?} is not a valid number: {v:?}")),
        None => Ok(default),
    }
}

/// Parses and validates query parameters into a canonical key.
///
/// # Errors
///
/// A human-readable message naming the offending parameter (the
/// server turns it into HTTP 400).
pub fn parse_key(pairs: &[(String, String)]) -> Result<PredictKey, String> {
    let alg = match pairs.iter().find(|(k, _)| k == "alg") {
        Some((_, v)) => match v.as_str() {
            "scu" => Alg::Scu,
            "fai" => Alg::Fai,
            "parallel" => Alg::Parallel,
            other => return Err(format!("unknown alg {other:?} (scu | fai | parallel)")),
        },
        None => Alg::Scu,
    };
    let layer = match pairs.iter().find(|(k, _)| k == "layer") {
        Some((_, v)) => match v.as_str() {
            "theory" => Layer::Theory,
            "chain" => Layer::Chain,
            "sim" => Layer::Sim,
            other => return Err(format!("unknown layer {other:?} (theory | chain | sim)")),
        },
        None => Layer::Theory,
    };
    let n: usize = parse_field(pairs, "n", 0)?;
    if n == 0 {
        return Err("parameter \"n\" is required and must be at least 1".into());
    }
    if n > MAX_N {
        return Err(format!("n = {n} exceeds the service cap of {MAX_N}"));
    }
    let mut q: usize = parse_field(pairs, "q", 0)?;
    let mut s: usize = parse_field(pairs, "s", 1)?;
    let mut steps: u64 = parse_field(pairs, "steps", DEFAULT_STEPS)?;
    let mut seed: u64 = parse_field(pairs, "seed", DEFAULT_SEED)?;

    // Per-family parameter validity.
    match alg {
        Alg::Scu => {
            if s == 0 {
                return Err("scu needs a scan length s >= 1".into());
            }
            if q > 1_000_000 {
                return Err("q exceeds the service cap of 1000000".into());
            }
        }
        Alg::Fai => {
            // q and s are meaningless: canonicalize them away.
            q = 0;
            s = 0;
        }
        Alg::Parallel => {
            if q == 0 {
                return Err("parallel needs a preamble length q >= 1".into());
            }
            s = 0;
        }
    }

    // Per-layer caps and canonicalization.
    match layer {
        Layer::Theory | Layer::Chain => {
            steps = 0;
            seed = 0;
        }
        Layer::Sim => {
            if steps == 0 {
                return Err("sim needs steps >= 1".into());
            }
            if steps > MAX_STEPS {
                return Err(format!(
                    "steps = {steps} exceeds the service cap of {MAX_STEPS}"
                ));
            }
        }
    }
    if layer == Layer::Chain {
        match alg {
            Alg::Scu => {
                if (q, s) != (0, 1) {
                    return Err(
                        "the chain layer covers scu only at (q=0, s=1); use layer=theory or layer=sim for other (q, s)"
                            .into(),
                    );
                }
                if n > MAX_CHAIN_SCU_N {
                    return Err(format!(
                        "chain-layer scu caps at n = {MAX_CHAIN_SCU_N} (sparse symmetry-reduced analysis)"
                    ));
                }
            }
            Alg::Fai => {
                if n > 10 {
                    return Err("chain-layer fai caps at n = 10 (2^n - 1 individual states)".into());
                }
            }
            Alg::Parallel => {
                let states = (q as f64 + 1.0).powi(n as i32);
                if states > 20_000.0 {
                    return Err(format!(
                        "chain-layer parallel needs (q+1)^n <= 20000 states, got {states:.0}"
                    ));
                }
            }
        }
    }
    Ok(PredictKey {
        alg,
        q,
        s,
        n,
        layer,
        steps,
        seed,
    })
}

/// Echo of the canonical key as the response's `query` object.
fn query_json(key: &PredictKey) -> Json {
    Json::Obj(vec![
        ("alg".into(), Json::Str(key.alg.name().into())),
        ("q".into(), Json::Int(key.q as i128)),
        ("s".into(), Json::Int(key.s as i128)),
        ("n".into(), Json::Int(key.n as i128)),
        ("layer".into(), Json::Str(key.layer.name().into())),
        ("steps".into(), Json::Int(key.steps as i128)),
        ("seed".into(), Json::Int(key.seed as i128)),
    ])
}

fn theory_result(key: &PredictKey) -> Json {
    match key.alg {
        Alg::Scu => {
            let p = ScuPrediction::new(key.q, key.s, key.n);
            Json::Obj(vec![
                ("model".into(), Json::Str("theorem4".into())),
                ("alpha".into(), Json::Num(p.alpha)),
                ("system_latency".into(), Json::Num(p.system_latency())),
                (
                    "individual_latency".into(),
                    Json::Num(p.individual_latency()),
                ),
                ("completion_rate".into(), Json::Num(p.completion_rate())),
                (
                    "worst_case_system_latency".into(),
                    Json::Num(p.worst_case_system_latency()),
                ),
                (
                    "worst_case_completion_rate".into(),
                    Json::Num(p.worst_case_completion_rate()),
                ),
            ])
        }
        Alg::Fai => {
            let w = fai_system_latency_bound(key.n);
            Json::Obj(vec![
                ("model".into(), Json::Str("lemma12".into())),
                ("system_latency_bound".into(), Json::Num(w)),
                (
                    "individual_latency_bound".into(),
                    Json::Num(key.n as f64 * w),
                ),
                ("completion_rate_bound".into(), Json::Num(1.0 / w)),
            ])
        }
        Alg::Parallel => {
            let w = key.q as f64;
            Json::Obj(vec![
                ("model".into(), Json::Str("lemma11".into())),
                ("system_latency".into(), Json::Num(w)),
                ("individual_latency".into(), Json::Num(key.n as f64 * w)),
                ("completion_rate".into(), Json::Num(1.0 / w)),
            ])
        }
    }
}

/// Re-checks the chain-layer caps [`parse_key`] enforces. The chain
/// builders *panic* on out-of-range `n`; a panicking leader would
/// strand every coalesced joiner, so a hand-built key that skipped
/// validation must fail softly here instead.
fn chain_guard(key: &PredictKey) -> Result<(), String> {
    let ok = match key.alg {
        Alg::Scu => (key.q, key.s) == (0, 1) && key.n >= 1 && key.n <= MAX_CHAIN_SCU_N,
        Alg::Fai => key.n >= 1 && key.n <= 10,
        Alg::Parallel => key.n >= 1 && (key.q as f64 + 1.0).powi(key.n as i32) <= 20_000.0,
    };
    if ok {
        Ok(())
    } else {
        Err(format!("chain layer cannot answer {key}"))
    }
}

fn chain_result(key: &PredictKey) -> Result<Json, String> {
    chain_guard(key)?;
    let family = match key.alg {
        Alg::Scu => ChainFamily::Scu01,
        Alg::Fai => ChainFamily::FetchAndInc,
        Alg::Parallel => ChainFamily::Parallel { q: key.q },
    };
    // SCU past the dense enumeration wall takes the sparse
    // symmetry-reduced path; the kernel-check sampling seed is a fixed
    // constant so the response stays a pure function of the key.
    if key.alg == Alg::Scu && key.n > 7 {
        let opts = PowerOptions::new(500_000, 1e-12);
        let report = analyze_scu_large(key.n, 2, 0x5EED_C4A1, &opts, None)
            .map_err(|e| format!("sparse chain analysis failed: {e}"))?;
        return Ok(Json::Obj(vec![
            ("model".into(), Json::Str("sparse_chain".into())),
            (
                "system_states".into(),
                Json::Int(report.system_states as i128),
            ),
            ("system_latency".into(), Json::Num(report.system_latency)),
            (
                "individual_latency".into(),
                Json::Num(report.individual_latency),
            ),
            (
                "completion_rate".into(),
                Json::Num(1.0 / report.system_latency),
            ),
            ("kernel_residual".into(), Json::Num(report.kernel_residual)),
            ("symmetry_classes".into(), Json::Int(report.classes as i128)),
        ]));
    }
    let report = analyze(family, key.n).map_err(|e| format!("chain analysis failed: {e}"))?;
    Ok(Json::Obj(vec![
        ("model".into(), Json::Str("exact_chain".into())),
        (
            "individual_states".into(),
            Json::Int(report.individual_states as i128),
        ),
        (
            "system_states".into(),
            Json::Int(report.system_states as i128),
        ),
        ("system_latency".into(), Json::Num(report.system_latency)),
        (
            "individual_latency".into(),
            Json::Num(report.individual_latency),
        ),
        (
            "completion_rate".into(),
            Json::Num(1.0 / report.system_latency),
        ),
        (
            "lifting_flow_residual".into(),
            Json::Num(report.lifting_flow_residual),
        ),
        (
            "fairness_identity".into(),
            Json::Num(report.fairness_identity()),
        ),
    ]))
}

fn sim_result(key: &PredictKey) -> Result<Json, String> {
    if key.n == 0 || key.n > MAX_N || key.steps == 0 || key.steps > MAX_STEPS {
        return Err(format!("sim layer cannot answer {key}"));
    }
    let spec = match key.alg {
        Alg::Scu => AlgorithmSpec::Scu { q: key.q, s: key.s },
        Alg::Fai => AlgorithmSpec::FetchAndInc,
        Alg::Parallel => AlgorithmSpec::Parallel { q: key.q },
    };
    let report = SimExperiment::new(spec, key.n, key.steps)
        .seed(key.seed)
        .run()
        .map_err(|e| format!("simulation failed: {e}"))?;
    let opt_num = |v: Option<f64>| v.map(Json::Num).unwrap_or(Json::Null);
    Ok(Json::Obj(vec![
        ("model".into(), Json::Str("simulation".into())),
        (
            "total_completions".into(),
            Json::Int(report.total_completions as i128),
        ),
        ("completion_rate".into(), Json::Num(report.completion_rate)),
        ("system_latency".into(), opt_num(report.system_latency)),
        (
            "mean_individual_latency".into(),
            opt_num(report.mean_individual_latency()),
        ),
        (
            "min_progress_bound".into(),
            report
                .minimal_progress_bound
                .map(|v| Json::Int(v as i128))
                .unwrap_or(Json::Null),
        ),
    ]))
}

/// Computes the canonical response body for a key: the pure function
/// the cache, the coalescer, and the drift gate all agree on.
///
/// # Errors
///
/// A message describing the failed analysis (the server turns it into
/// HTTP 500; validation errors are caught earlier by [`parse_key`]).
pub fn compute(key: &PredictKey) -> Result<String, String> {
    let result = match key.layer {
        Layer::Theory => theory_result(key),
        Layer::Chain => chain_result(key)?,
        Layer::Sim => sim_result(key)?,
    };
    Ok(Json::Obj(vec![
        ("query".into(), query_json(key)),
        ("result".into(), result),
    ])
    .render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(spec: &[(&str, &str)]) -> Vec<(String, String)> {
        spec.iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn canonicalization_zeroes_irrelevant_fields() {
        // A theory query's seed/steps must not fragment the cache.
        let a = parse_key(&pairs(&[("alg", "scu"), ("n", "8"), ("seed", "7")])).unwrap();
        let b = parse_key(&pairs(&[("alg", "scu"), ("n", "8"), ("seed", "9")])).unwrap();
        assert_eq!(a.canonical(), b.canonical());
        // fai ignores q and s entirely.
        let c = parse_key(&pairs(&[
            ("alg", "fai"),
            ("n", "4"),
            ("q", "3"),
            ("s", "2"),
        ]))
        .unwrap();
        assert_eq!((c.q, c.s), (0, 0));
    }

    #[test]
    fn validation_rejects_bad_queries() {
        for bad in [
            vec![("alg", "scu")],                                             // missing n
            vec![("alg", "scu"), ("n", "0")],                                 // n = 0
            vec![("alg", "scu"), ("n", "8"), ("s", "0")],                     // s = 0
            vec![("alg", "nope"), ("n", "4")],                                // unknown alg
            vec![("alg", "scu"), ("n", "4"), ("layer", "nope")],              // unknown layer
            vec![("alg", "scu"), ("n", "x")],                                 // non-numeric
            vec![("alg", "parallel"), ("n", "4")],                            // parallel q = 0
            vec![("alg", "scu"), ("n", "9999999")],                           // over cap
            vec![("alg", "fai"), ("n", "11"), ("layer", "chain")],            // fai chain cap
            vec![("alg", "scu"), ("n", "4"), ("q", "2"), ("layer", "chain")], // scu chain (q,s)
        ] {
            assert!(
                parse_key(&pairs(&bad)).is_err(),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn compute_is_deterministic_per_key() {
        for spec in [
            vec![("alg", "scu"), ("q", "2"), ("s", "1"), ("n", "64")],
            vec![("alg", "scu"), ("n", "4"), ("layer", "chain")],
            vec![("alg", "fai"), ("n", "6"), ("layer", "chain")],
            vec![
                ("alg", "scu"),
                ("n", "8"),
                ("layer", "sim"),
                ("steps", "20000"),
            ],
        ] {
            let key = parse_key(&pairs(&spec)).unwrap();
            let a = compute(&key).unwrap();
            let b = compute(&key).unwrap();
            assert_eq!(a, b, "{key} must be reproducible");
            assert!(a.contains("\"query\""), "{key} echoes its query");
        }
    }

    #[test]
    fn theory_matches_the_closed_forms() {
        let key = parse_key(&pairs(&[
            ("alg", "scu"),
            ("q", "2"),
            ("s", "1"),
            ("n", "64"),
        ]))
        .unwrap();
        let body = compute(&key).unwrap();
        let doc = Json::parse(&body).unwrap();
        let w = doc
            .get("result")
            .and_then(|r| r.get("system_latency"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!(
            (w - (2.0 + 8.0)).abs() < 1e-12,
            "q + s*sqrt(n) = 10, got {w}"
        );
    }

    #[test]
    fn sparse_and_exact_chain_agree_near_the_wall() {
        let exact = parse_key(&pairs(&[("alg", "scu"), ("n", "7"), ("layer", "chain")])).unwrap();
        let sparse = parse_key(&pairs(&[("alg", "scu"), ("n", "8"), ("layer", "chain")])).unwrap();
        let w = |body: &str| {
            Json::parse(body)
                .unwrap()
                .get("result")
                .and_then(|r| r.get("system_latency"))
                .and_then(Json::as_f64)
                .unwrap()
        };
        let w7 = w(&compute(&exact).unwrap());
        let w8 = w(&compute(&sparse).unwrap());
        // W grows slowly in n; adjacent sizes land close together.
        assert!(
            w7 > 1.0 && w8 > w7 && w8 < w7 + 1.0,
            "W(7) = {w7}, W(8) = {w8}"
        );
    }
}
