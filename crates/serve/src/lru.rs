//! The result cache: a fixed-capacity LRU map with optional TTL
//! expiry, O(1) on every operation.
//!
//! Recency is an intrusive doubly-linked list threaded through a slab
//! of slots (indices, not pointers — no `unsafe`), the same shape
//! production caches use (apollo-router's `cache/` keeps an LRU of
//! deduplicated query plans the same way). The clock is injected so
//! TTL behaviour is testable without sleeping: production uses a
//! monotonic `Instant`-based microsecond clock, tests drive a manual
//! tick.
//!
//! TTL semantics: an entry is expired once `age >= ttl`, so a zero
//! TTL means "never serve from cache" (the knob degrades the cache to
//! a pass-through instead of dividing by zero somewhere), and
//! `ttl: None` means entries never expire.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Absent-link sentinel for the intrusive list.
const NIL: usize = usize::MAX;

/// A microsecond clock the cache samples on every put/get.
pub type Clock = Arc<dyn Fn() -> u64 + Send + Sync>;

/// A monotonic microsecond clock starting at construction time.
pub fn monotonic_clock() -> Clock {
    let start = Instant::now();
    Arc::new(move || start.elapsed().as_micros() as u64)
}

#[derive(Debug)]
struct Slot<V> {
    key: String,
    value: V,
    stored_at_us: u64,
    prev: usize,
    next: usize,
}

/// Counters the cache exposes to the metrics endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Gets served from a live entry.
    pub hits: u64,
    /// Gets that found nothing (or only an expired entry).
    pub misses: u64,
    /// Entries pushed out by capacity pressure.
    pub evictions: u64,
    /// Entries dropped because their TTL had passed.
    pub expirations: u64,
}

/// A fixed-capacity LRU cache with optional TTL.
pub struct LruCache<V> {
    capacity: usize,
    /// TTL in microseconds; `None` = entries never expire.
    ttl_us: Option<u64>,
    clock: Clock,
    map: HashMap<String, usize>,
    slots: Vec<Slot<V>>,
    free: Vec<usize>,
    /// Most-recently-used slot index, or [`NIL`].
    head: usize,
    /// Least-recently-used slot index, or [`NIL`].
    tail: usize,
    stats: CacheStats,
}

impl<V> std::fmt::Debug for LruCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LruCache")
            .field("capacity", &self.capacity)
            .field("ttl_us", &self.ttl_us)
            .field("len", &self.map.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl<V: Clone> LruCache<V> {
    /// Creates a cache holding at most `capacity` entries whose age is
    /// measured by the monotonic wall clock.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` (use a zero TTL for "cache nothing").
    pub fn new(capacity: usize, ttl_us: Option<u64>) -> Self {
        Self::with_clock(capacity, ttl_us, monotonic_clock())
    }

    /// [`new`](Self::new) with an injected clock (tests drive a manual
    /// tick through this).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_clock(capacity: usize, ttl_us: Option<u64>, clock: Clock) -> Self {
        assert!(
            capacity > 0,
            "capacity must be positive; use ttl 0 to disable"
        );
        LruCache {
            capacity,
            ttl_us,
            clock,
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            stats: CacheStats::default(),
        }
    }

    /// Live entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Unlinks `idx` from the recency list.
    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    /// Links `idx` in at the MRU head.
    fn link_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Removes `idx` entirely, returning its slot to the free list.
    fn remove_slot(&mut self, idx: usize) {
        self.unlink(idx);
        self.map.remove(&self.slots[idx].key);
        self.free.push(idx);
    }

    fn expired(&self, idx: usize, now: u64) -> bool {
        match self.ttl_us {
            Some(ttl) => now.saturating_sub(self.slots[idx].stored_at_us) >= ttl,
            None => false,
        }
    }

    /// Looks up `key`, promoting a live entry to most-recently-used.
    /// An expired entry counts as a miss and is dropped on the spot.
    pub fn get(&mut self, key: &str) -> Option<V> {
        let now = (self.clock)();
        match self.map.get(key).copied() {
            Some(idx) if self.expired(idx, now) => {
                self.remove_slot(idx);
                self.stats.expirations += 1;
                self.stats.misses += 1;
                None
            }
            Some(idx) => {
                self.unlink(idx);
                self.link_front(idx);
                self.stats.hits += 1;
                Some(self.slots[idx].value.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry if the cache is full.
    pub fn put(&mut self, key: &str, value: V) {
        let now = (self.clock)();
        if let Some(idx) = self.map.get(key).copied() {
            self.slots[idx].value = value;
            self.slots[idx].stored_at_us = now;
            self.unlink(idx);
            self.link_front(idx);
            return;
        }
        if self.map.len() == self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "full cache has a tail");
            // An entry that was already dead counts as expiry, not
            // capacity pressure.
            if self.expired(victim, now) {
                self.stats.expirations += 1;
            } else {
                self.stats.evictions += 1;
            }
            self.remove_slot(victim);
        }
        let slot = Slot {
            key: key.to_string(),
            value,
            stored_at_us: now,
            prev: NIL,
            next: NIL,
        };
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = slot;
                idx
            }
            None => {
                self.slots.push(slot);
                self.slots.len() - 1
            }
        };
        self.map.insert(key.to_string(), idx);
        self.link_front(idx);
    }

    /// Keys in recency order, most-recently-used first (test hook; the
    /// property suite checks eviction order through this).
    pub fn keys_by_recency(&self) -> Vec<String> {
        let mut keys = Vec::with_capacity(self.map.len());
        let mut idx = self.head;
        while idx != NIL {
            keys.push(self.slots[idx].key.clone());
            idx = self.slots[idx].next;
        }
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A manually-advanced clock for TTL tests.
    fn manual_clock() -> (Arc<AtomicU64>, Clock) {
        let tick = Arc::new(AtomicU64::new(0));
        let t = Arc::clone(&tick);
        (tick, Arc::new(move || t.load(Ordering::Relaxed)))
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let mut c: LruCache<u32> = LruCache::new(2, None);
        assert_eq!(c.get("a"), None);
        c.put("a", 1);
        assert_eq!(c.get("a"), Some(1));
        let stats = c.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let mut c: LruCache<u32> = LruCache::new(2, None);
        c.put("a", 1);
        c.put("b", 2);
        // Touch "a" so "b" is the LRU when "c" arrives.
        assert_eq!(c.get("a"), Some(1));
        c.put("c", 3);
        assert_eq!(c.get("b"), None);
        assert_eq!(c.get("a"), Some(1));
        assert_eq!(c.get("c"), Some(3));
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.keys_by_recency(), vec!["c", "a"]);
    }

    #[test]
    fn put_refreshes_value_and_recency_without_eviction() {
        let mut c: LruCache<u32> = LruCache::new(2, None);
        c.put("a", 1);
        c.put("b", 2);
        c.put("a", 10);
        assert_eq!(c.len(), 2);
        assert_eq!(c.keys_by_recency(), vec!["a", "b"]);
        assert_eq!(c.get("a"), Some(10));
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn capacity_one_cache_holds_exactly_the_last_key() {
        let mut c: LruCache<u32> = LruCache::new(1, None);
        for (i, key) in ["a", "b", "c"].iter().enumerate() {
            c.put(key, i as u32);
            assert_eq!(c.len(), 1);
            assert_eq!(c.keys_by_recency(), vec![key.to_string()]);
        }
        assert_eq!(c.get("c"), Some(2));
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn ttl_expires_entries() {
        let (tick, clock) = manual_clock();
        let mut c: LruCache<u32> = LruCache::with_clock(4, Some(100), clock);
        c.put("a", 1);
        tick.store(99, Ordering::Relaxed);
        assert_eq!(c.get("a"), Some(1));
        tick.store(100, Ordering::Relaxed);
        assert_eq!(c.get("a"), None);
        assert_eq!(c.stats().expirations, 1);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn zero_ttl_caches_nothing() {
        let (_tick, clock) = manual_clock();
        let mut c: LruCache<u32> = LruCache::with_clock(4, Some(0), clock);
        c.put("a", 1);
        // Same instant: age 0 >= ttl 0, already expired.
        assert_eq!(c.get("a"), None);
        assert_eq!(c.stats().expirations, 1);
    }

    #[test]
    fn refresh_resets_ttl() {
        let (tick, clock) = manual_clock();
        let mut c: LruCache<u32> = LruCache::with_clock(4, Some(100), clock);
        c.put("a", 1);
        tick.store(80, Ordering::Relaxed);
        c.put("a", 2);
        tick.store(150, Ordering::Relaxed);
        assert_eq!(c.get("a"), Some(2));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = LruCache::<u32>::new(0, None);
    }
}
