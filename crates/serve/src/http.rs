//! A minimal HTTP/1.1 layer over `std::io` streams: request parsing
//! and response writing, nothing more.
//!
//! The server only ever needs `GET` with a query string, keep-alive,
//! and a handful of status codes, so the implementation is a small
//! hand-rolled parser with hard limits on line and header sizes (a
//! malformed or hostile peer costs one bounded read, never unbounded
//! memory).

use std::io::{BufRead, Write};

/// Longest accepted request line or header line, in bytes.
const MAX_LINE: usize = 8 * 1024;

/// Most headers accepted per request.
const MAX_HEADERS: usize = 64;

/// A parsed request: method, decoded path, and decoded query pairs in
/// arrival order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method, uppercased (`GET`, `HEAD`, …).
    pub method: String,
    /// The path component, percent-decoded (`/predict`).
    pub path: String,
    /// Query parameters, percent-decoded, in arrival order.
    pub query: Vec<(String, String)>,
    /// Whether the peer asked to keep the connection open after the
    /// response (HTTP/1.1 default unless `Connection: close`).
    pub keep_alive: bool,
}

impl Request {
    /// First value of the named query parameter.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed.
#[derive(Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The peer closed the connection before sending a request line —
    /// the normal end of a keep-alive connection, not an error to log.
    ConnectionClosed,
    /// The request was malformed or exceeded a size limit.
    Malformed(String),
    /// Reading from the socket failed (timeout, reset, …).
    Io(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::ConnectionClosed => write!(f, "connection closed"),
            ParseError::Malformed(m) => write!(f, "malformed request: {m}"),
            ParseError::Io(m) => write!(f, "read error: {m}"),
        }
    }
}

/// Reads one CRLF- (or LF-) terminated line with a size cap.
fn read_line(reader: &mut impl BufRead) -> Result<String, ParseError> {
    let mut buf = Vec::new();
    loop {
        let chunk = reader
            .fill_buf()
            .map_err(|e| ParseError::Io(e.to_string()))?;
        if chunk.is_empty() {
            if buf.is_empty() {
                return Err(ParseError::ConnectionClosed);
            }
            return Err(ParseError::Malformed("truncated line".into()));
        }
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            buf.extend_from_slice(&chunk[..pos]);
            reader.consume(pos + 1);
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
            return String::from_utf8(buf)
                .map_err(|_| ParseError::Malformed("non-UTF-8 line".into()));
        }
        buf.extend_from_slice(chunk);
        let n = chunk.len();
        reader.consume(n);
        if buf.len() > MAX_LINE {
            return Err(ParseError::Malformed("line exceeds limit".into()));
        }
    }
}

/// Percent-decodes a URL component (`%41` → `A`, `+` → space in query
/// values). Invalid escapes pass through literally rather than
/// failing the whole request.
pub fn percent_decode(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h)
                        .ok()
                        .and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits a query string into decoded `(key, value)` pairs.
fn parse_query(query: &str) -> Vec<(String, String)> {
    query
        .split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(part), String::new()),
        })
        .collect()
}

/// Parses one request off the stream (request line + headers; GET has
/// no body). Blocks until a full head arrives or the peer closes.
///
/// # Errors
///
/// [`ParseError::ConnectionClosed`] at clean EOF before a request
/// line; [`ParseError::Malformed`] on grammar or limit violations;
/// [`ParseError::Io`] on socket errors.
pub fn parse_request(reader: &mut impl BufRead) -> Result<Request, ParseError> {
    let line = read_line(reader)?;
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m.to_ascii_uppercase(), t, v),
        _ => return Err(ParseError::Malformed(format!("bad request line {line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed(format!("bad version {version:?}")));
    }

    // Headers: only Connection matters to this server; the rest are
    // consumed and dropped (bounded in count and size).
    let mut keep_alive = true;
    for _ in 0..MAX_HEADERS {
        let header = read_line(reader).map_err(|e| match e {
            ParseError::ConnectionClosed => ParseError::Malformed("truncated headers".into()),
            other => other,
        })?;
        if header.is_empty() {
            let (path, query) = match target.split_once('?') {
                Some((p, q)) => (percent_decode(p), parse_query(q)),
                None => (percent_decode(target), Vec::new()),
            };
            return Ok(Request {
                method,
                path,
                query,
                keep_alive,
            });
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("connection") && value.trim().eq_ignore_ascii_case("close")
            {
                keep_alive = false;
            }
        }
    }
    Err(ParseError::Malformed("too many headers".into()))
}

/// A response ready to serialize: status, content type, extra headers,
/// body.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Additional headers (name, value).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Appends a header.
    #[must_use]
    pub fn header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// The standard reason phrase for the status codes this server
    /// emits.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }

    /// Serializes head and body onto the stream (one write-visible
    /// flush; `keep_alive` selects the advertised connection policy).
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn write_to(&self, stream: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(text: &str) -> Result<Request, ParseError> {
        parse_request(&mut BufReader::new(text.as_bytes()))
    }

    #[test]
    fn parses_get_with_query() {
        let req = parse("GET /predict?alg=scu&q=2&s=1&n=64 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/predict");
        assert_eq!(req.param("alg"), Some("scu"));
        assert_eq!(req.param("n"), Some("64"));
        assert_eq!(req.param("missing"), None);
        assert!(req.keep_alive);
    }

    #[test]
    fn connection_close_is_honored() {
        let req = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn percent_decoding_applies_to_path_and_query() {
        let req = parse("GET /pre%64ict?a+b=c%20d HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/predict");
        assert_eq!(req.query, vec![("a b".to_string(), "c d".to_string())]);
    }

    #[test]
    fn invalid_escapes_pass_through() {
        assert_eq!(percent_decode("%zz%4"), "%zz%4");
        assert_eq!(percent_decode("100%"), "100%");
    }

    #[test]
    fn eof_before_request_is_connection_closed() {
        assert_eq!(parse("").unwrap_err(), ParseError::ConnectionClosed);
    }

    #[test]
    fn truncation_and_garbage_are_malformed() {
        assert!(matches!(
            parse("GET /x HTTP/1.1\r\nHost: y"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("nonsense\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /x SPDY/9\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn response_serializes_with_length_and_policy() {
        let mut out = Vec::new();
        Response::json(200, "{}".into())
            .header("x-pwf-source", "cache")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.contains("x-pwf-source: cache\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
