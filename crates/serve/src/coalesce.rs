//! In-flight request deduplication (coalescing): identical concurrent
//! requests join one execution and all wake with its result.
//!
//! This is the query-deduplication pattern from apollo-router's
//! decision record (SNIPPETS.md Snippet 1 carries its TLA+ spec),
//! whose whole reason to exist is the *lost wakeup*: a waiter that
//! registers after the leader has broadcast sleeps forever. The
//! design here makes that impossible by construction:
//!
//! * membership in the in-flight map and the per-flight result cell
//!   are the only coordination state;
//! * a follower that finds a flight in the map waits on the flight's
//!   condvar **checking the result cell under the same mutex the
//!   leader sets it under** — the classic monitor pattern, so the
//!   wake cannot slip between check and sleep;
//! * the leader publishes in the order *result cell → deregister →
//!   broadcast is irrelevant* — in fact it sets the cell and
//!   broadcasts while deregistering afterwards would also be correct;
//!   a follower that joins after publication finds the cell already
//!   full and never sleeps.
//!
//! Per-flight join counts are lock-free fetch-and-increment on an
//! atomic — the same primitive (Algorithm 5) whose completion rate
//! the paper analyzes — so the dedup layer itself is one of the
//! repo's algorithms running under live load.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// How a caller's request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// This caller executed the computation.
    Leader,
    /// This caller joined an in-flight execution and was woken with
    /// its result.
    Joiner,
}

/// One in-flight execution: the result cell all joiners wait on.
#[derive(Debug)]
struct Flight<V> {
    /// `None` until the leader publishes; checked and set under this
    /// mutex, which is what rules the lost wakeup out.
    result: Mutex<Option<Result<V, String>>>,
    woken: Condvar,
    /// Joiners that attached to this flight (lock-free FAI).
    joiners: AtomicU64,
}

/// Aggregate dedup counters for the metrics endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoalesceStats {
    /// Executions led (cache-miss computations actually run).
    pub leaders: u64,
    /// Requests that joined an in-flight execution instead of
    /// recomputing.
    pub joins: u64,
}

/// The dedup map: key → in-flight execution.
#[derive(Debug)]
pub struct Coalescer<V> {
    inflight: Mutex<HashMap<String, Arc<Flight<V>>>>,
    leaders: AtomicU64,
    joins: AtomicU64,
}

impl<V: Clone> Default for Coalescer<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Clone> Coalescer<V> {
    /// Creates an empty coalescer.
    pub fn new() -> Self {
        Coalescer {
            inflight: Mutex::new(HashMap::new()),
            leaders: AtomicU64::new(0),
            joins: AtomicU64::new(0),
        }
    }

    /// Runs `compute` for `key`, deduplicating against concurrent
    /// callers: exactly one caller (the leader) executes it, everyone
    /// else blocks until the leader's result is published and gets a
    /// clone of it.
    ///
    /// `publish` runs on the leader after `compute` but **before** the
    /// flight is deregistered — the caller hooks its result cache in
    /// here, so at no instant is a finished result neither in the
    /// cache nor joinable in flight (a request arriving in between
    /// would otherwise recompute).
    ///
    /// # Errors
    ///
    /// Returns the computation's own error (joiners receive a clone
    /// of the leader's error string).
    pub fn run(
        &self,
        key: &str,
        compute: impl FnOnce() -> Result<V, String>,
        publish: impl FnOnce(&Result<V, String>),
    ) -> (Result<V, String>, Role) {
        // Register or join, under the map lock only briefly.
        let (flight, role) = {
            let mut inflight = self.inflight.lock().expect("coalescer map poisoned");
            match inflight.get(key) {
                Some(flight) => (Arc::clone(flight), Role::Joiner),
                None => {
                    let flight = Arc::new(Flight {
                        result: Mutex::new(None),
                        woken: Condvar::new(),
                        joiners: AtomicU64::new(0),
                    });
                    inflight.insert(key.to_string(), Arc::clone(&flight));
                    (flight, Role::Leader)
                }
            }
        };

        match role {
            Role::Leader => {
                self.leaders.fetch_add(1, Ordering::Relaxed);
                let result = compute();
                publish(&result);
                // Publish to joiners: set the cell under the flight
                // mutex, then broadcast. A joiner is either already
                // waiting (woken by the broadcast) or yet to check the
                // cell (finds it full) — no third state.
                {
                    let mut cell = flight.result.lock().expect("flight cell poisoned");
                    *cell = Some(result.clone());
                }
                flight.woken.notify_all();
                // Deregister last: between `publish` and here the key
                // is findable both in the cache and in flight, never
                // in neither.
                self.inflight
                    .lock()
                    .expect("coalescer map poisoned")
                    .remove(key);
                (result, Role::Leader)
            }
            Role::Joiner => {
                flight.joiners.fetch_add(1, Ordering::Relaxed);
                self.joins.fetch_add(1, Ordering::Relaxed);
                let mut cell = flight.result.lock().expect("flight cell poisoned");
                while cell.is_none() {
                    cell = flight.woken.wait(cell).expect("flight cell poisoned");
                }
                (
                    cell.clone().expect("loop exits only when set"),
                    Role::Joiner,
                )
            }
        }
    }

    /// Executions currently in flight.
    pub fn inflight_len(&self) -> usize {
        self.inflight.lock().expect("coalescer map poisoned").len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CoalesceStats {
        CoalesceStats {
            leaders: self.leaders.load(Ordering::Relaxed),
            joins: self.joins.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    #[test]
    fn sequential_runs_each_lead() {
        let c: Coalescer<u32> = Coalescer::new();
        let (r1, role1) = c.run("k", || Ok(1), |_| {});
        let (r2, role2) = c.run("k", || Ok(2), |_| {});
        assert_eq!((r1.unwrap(), role1), (1, Role::Leader));
        assert_eq!((r2.unwrap(), role2), (2, Role::Leader));
        assert_eq!(c.stats().leaders, 2);
        assert_eq!(c.stats().joins, 0);
        assert_eq!(c.inflight_len(), 0);
    }

    #[test]
    fn errors_propagate_to_all_joiners() {
        let c: Arc<Coalescer<u32>> = Arc::new(Coalescer::new());
        let gate = Arc::new(Barrier::new(4));
        let executions = Arc::new(AtomicUsize::new(0));
        let results: Vec<_> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let c = Arc::clone(&c);
                    let gate = Arc::clone(&gate);
                    let executions = Arc::clone(&executions);
                    scope.spawn(move || {
                        gate.wait();
                        c.run(
                            "boom",
                            || {
                                executions.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(std::time::Duration::from_millis(30));
                                Err("synthetic".to_string())
                            },
                            |_| {},
                        )
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for (result, _) in &results {
            assert_eq!(result.as_ref().unwrap_err(), "synthetic");
        }
        // At least one execution deduplicated away (30 ms of overlap
        // across four synchronized threads).
        assert!(executions.load(Ordering::Relaxed) < 4);
        assert_eq!(c.inflight_len(), 0);
    }

    #[test]
    fn publish_runs_before_deregistration() {
        let c: Coalescer<u32> = Coalescer::new();
        let mut seen_inflight = 0;
        let (result, _) = c.run(
            "k",
            || Ok(7),
            |_| {
                // The flight must still be registered while the cache
                // hook runs.
                seen_inflight = c.inflight_len();
            },
        );
        assert_eq!(result.unwrap(), 7);
        assert_eq!(seen_inflight, 1);
        assert_eq!(c.inflight_len(), 0);
    }
}
