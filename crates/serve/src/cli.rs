//! The `pwf serve` subcommand: run the service, or drive the built-in
//! loadgen (`--selftest`).

use std::time::Duration;

use pwf_obs::{ObsHandle, DEFAULT_RING_CAPACITY};

use crate::selftest::{bench_json, run as run_selftest, SelftestConfig};
use crate::server::{start, ServerConfig};

/// Usage text for `pwf serve --help`.
pub const USAGE: &str = "\
pwf serve — the latency-prediction service

USAGE:
    pwf serve [OPTIONS]

OPTIONS:
    --addr HOST:PORT      bind address          [default: 127.0.0.1:7878]
    --cache-capacity N    LRU result-cache entries       [default: 1024]
    --cache-ttl-ms N      result TTL in ms (0 disables caching;
                          omit for never-expires)
    --max-active N        concurrent requests past the shaper [default: 64]
    --max-queue N         requests allowed to queue          [default: 256]
    --max-wait-ms N       queue admission deadline in ms   [default: 10000]
    --slo-us N            per-request latency SLO in µs; breaches bump
                          serve.slo_violations and arm the tail watchdog
    --slo-5xx             answer 504 on SLO breach (requires --slo-us)
    --arm-us N            strict watchdog threshold in µs: any exceedance
                          trips it and captures a flight dump (GET /flight)
    --no-trace            disable the request-span trace ring
    --selftest            run the built-in loadgen instead of serving
    --requests N          (selftest) successful requests    [default: 30000]
    --clients N           (selftest) client threads            [default: 64]
    --seed N              (selftest) loadgen seed
    --fast                (selftest) reduced profile (10000 requests)
    --no-write            (selftest) skip writing BENCH_serve.json
    -h, --help            show this text

ENDPOINTS:
    GET /predict?alg=scu&q=2&s=1&n=64&layer=theory|chain|sim[&steps=..][&seed=..]
    GET /metrics          serve.* counters, gauges, latency histograms
    GET /trace            request spans as Perfetto JSON
    GET /flight           most recent flight dump (404 until a trip)
    GET /healthz          liveness
";

/// Parsed command line.
#[derive(Debug, Clone)]
struct Args {
    server: ServerConfig,
    trace: bool,
    selftest: bool,
    selftest_config: SelftestConfig,
    write_bench: bool,
}

fn parse(argv: &[String]) -> Result<Option<Args>, String> {
    let mut args = Args {
        server: ServerConfig::default(),
        trace: true,
        selftest: false,
        selftest_config: SelftestConfig::default(),
        write_bench: true,
    };
    let mut fast = false;
    let mut requests: Option<u64> = None;
    let mut clients: Option<usize> = None;
    let mut iter = argv.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| -> Result<String, String> {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "--addr" => args.server.addr = value("--addr")?,
            "--cache-capacity" => {
                args.server.engine.cache_capacity = value("--cache-capacity")?
                    .parse()
                    .map_err(|e| format!("--cache-capacity: {e}"))?;
            }
            "--cache-ttl-ms" => {
                let ms: u64 = value("--cache-ttl-ms")?
                    .parse()
                    .map_err(|e| format!("--cache-ttl-ms: {e}"))?;
                args.server.engine.cache_ttl_us = Some(ms * 1000);
            }
            "--max-active" => {
                args.server.engine.max_active = value("--max-active")?
                    .parse()
                    .map_err(|e| format!("--max-active: {e}"))?;
            }
            "--max-queue" => {
                args.server.engine.max_queue = value("--max-queue")?
                    .parse()
                    .map_err(|e| format!("--max-queue: {e}"))?;
            }
            "--max-wait-ms" => {
                let ms: u64 = value("--max-wait-ms")?
                    .parse()
                    .map_err(|e| format!("--max-wait-ms: {e}"))?;
                args.server.engine.max_wait = Duration::from_millis(ms);
            }
            "--slo-us" => {
                let us: u64 = value("--slo-us")?
                    .parse()
                    .map_err(|e| format!("--slo-us: {e}"))?;
                if us == 0 {
                    return Err("--slo-us must be at least 1".into());
                }
                args.server.engine.slo_us = Some(us);
            }
            "--slo-5xx" => args.server.engine.slo_fail = true,
            "--arm-us" => {
                let us: u64 = value("--arm-us")?
                    .parse()
                    .map_err(|e| format!("--arm-us: {e}"))?;
                if us == 0 {
                    return Err("--arm-us must be at least 1".into());
                }
                args.server.engine.arm_us = Some(us);
            }
            "--no-trace" => args.trace = false,
            "--selftest" => args.selftest = true,
            "--requests" => {
                requests = Some(
                    value("--requests")?
                        .parse()
                        .map_err(|e| format!("--requests: {e}"))?,
                );
            }
            "--clients" => {
                clients = Some(
                    value("--clients")?
                        .parse()
                        .map_err(|e| format!("--clients: {e}"))?,
                );
            }
            "--seed" => {
                args.selftest_config.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--fast" => fast = true,
            "--no-write" => args.write_bench = false,
            other => return Err(format!("unknown flag {other:?} (see pwf serve --help)")),
        }
    }
    if fast {
        let seed = args.selftest_config.seed;
        args.selftest_config = SelftestConfig {
            seed,
            ..SelftestConfig::fast()
        };
    }
    if let Some(requests) = requests {
        args.selftest_config.requests = requests;
    }
    if let Some(clients) = clients {
        if clients == 0 {
            return Err("--clients must be at least 1".into());
        }
        args.selftest_config.clients = clients;
    }
    if args.server.engine.slo_fail && args.server.engine.slo_us.is_none() {
        return Err("--slo-5xx requires --slo-us".into());
    }
    args.selftest_config.write_bench = args.write_bench;
    Ok(Some(args))
}

/// Entry point for the `serve` subcommand (dispatched from the `pwf`
/// binary). Returns the process exit code.
pub fn main(argv: Vec<String>) -> i32 {
    let args = match parse(&argv) {
        Ok(Some(args)) => args,
        Ok(None) => {
            print!("{USAGE}");
            return 0;
        }
        Err(message) => {
            eprintln!("pwf serve: {message}");
            return 2;
        }
    };
    let obs = ObsHandle::collecting(args.trace.then_some(DEFAULT_RING_CAPACITY));

    if args.selftest {
        return selftest_main(&args, obs);
    }

    match start(&args.server, obs) {
        Ok(server) => {
            println!(
                "pwf-serve listening on http://{} (cache {} entries, {} active / {} queued)",
                server.addr(),
                args.server.engine.cache_capacity,
                args.server.engine.max_active,
                args.server.engine.max_queue,
            );
            println!("endpoints: /predict /metrics /trace /flight /healthz  — ctrl-c to stop");
            // Serve until killed: the acceptor owns the listener; this
            // thread just parks.
            loop {
                std::thread::park();
            }
        }
        Err(e) => {
            eprintln!("pwf serve: bind {}: {e}", args.server.addr);
            1
        }
    }
}

fn selftest_main(args: &Args, obs: ObsHandle) -> i32 {
    let config = &args.selftest_config;
    eprintln!(
        "pwf serve --selftest: driving {} requests from {} clients (seed {:#x})",
        config.requests, config.clients, config.seed
    );
    let report = match run_selftest(config, obs) {
        Ok(report) => report,
        Err(message) => {
            eprintln!("pwf serve --selftest: FAIL: {message}");
            return 1;
        }
    };
    eprintln!(
        "  {} completed in {:.2}s ({:.0} rps): {} cached ({:.1}%), {} coalesced, {} computed, {} retries",
        report.completed,
        report.wall.as_secs_f64(),
        report.throughput_rps(),
        report.from_cache,
        100.0 * report.cache_hit_rate(),
        report.coalesced,
        report.computed,
        report.rejected_retries,
    );
    eprintln!(
        "  latency µs: p50={} p90={} p99={} p999={} max={}  drift={}",
        report.latency.p50,
        report.latency.p90,
        report.latency.p99,
        report.latency.p999,
        report.latency.max,
        report.drift,
    );
    let doc = bench_json(&report, config);
    if config.write_bench {
        if let Err(e) = std::fs::write("BENCH_serve.json", doc.render()) {
            eprintln!("pwf serve --selftest: writing BENCH_serve.json: {e}");
            return 1;
        }
        eprintln!("  wrote BENCH_serve.json");
    } else {
        println!("{}", doc.render());
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(spec: &[&str]) -> Result<Option<Args>, String> {
        parse(&spec.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults_and_overrides_parse() {
        let parsed = args(&[]).unwrap().unwrap();
        assert_eq!(parsed.server.addr, "127.0.0.1:7878");
        assert!(!parsed.selftest);
        let parsed = args(&[
            "--addr",
            "127.0.0.1:0",
            "--cache-capacity",
            "16",
            "--cache-ttl-ms",
            "250",
            "--max-active",
            "8",
            "--selftest",
            "--requests",
            "5000",
            "--clients",
            "10",
            "--no-write",
        ])
        .unwrap()
        .unwrap();
        assert_eq!(parsed.server.engine.cache_capacity, 16);
        assert_eq!(parsed.server.engine.cache_ttl_us, Some(250_000));
        assert_eq!(parsed.server.engine.max_active, 8);
        assert!(parsed.selftest);
        assert_eq!(parsed.selftest_config.requests, 5000);
        assert_eq!(parsed.selftest_config.clients, 10);
        assert!(!parsed.selftest_config.write_bench);
    }

    #[test]
    fn fast_profile_keeps_the_acceptance_floor() {
        let parsed = args(&["--selftest", "--fast"]).unwrap().unwrap();
        assert!(parsed.selftest_config.requests >= 10_000);
    }

    #[test]
    fn help_and_errors() {
        assert!(args(&["--help"]).unwrap().is_none());
        assert!(args(&["--bogus"]).is_err());
        assert!(args(&["--requests"]).is_err());
        assert!(args(&["--clients", "0"]).is_err());
    }

    #[test]
    fn slo_and_arm_flags_parse_and_validate() {
        let parsed = args(&["--slo-us", "5000", "--slo-5xx", "--arm-us", "20000"])
            .unwrap()
            .unwrap();
        assert_eq!(parsed.server.engine.slo_us, Some(5000));
        assert!(parsed.server.engine.slo_fail);
        assert_eq!(parsed.server.engine.arm_us, Some(20_000));
        assert!(args(&["--slo-us", "0"]).is_err());
        assert!(args(&["--arm-us", "0"]).is_err());
        assert!(args(&["--slo-5xx"]).is_err(), "--slo-5xx needs --slo-us");
    }
}
