//! The serving engine: traffic shaping → cache → coalescing →
//! compute, with a lock-free fetch-and-increment ticket stamped on
//! every admitted request and `serve.*` metrics throughout.
//!
//! The request ticket is [`pwf_hardware::FaiCounter`] — the paper's
//! Algorithm 5 running on real hardware — so the service itself is a
//! live instance of the system the repo analyzes: the ticket's CAS
//! retry count feeds the `serve.ticket_steps` histogram, a
//! per-request sample of the scheduler-induced step distribution.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pwf_hardware::FaiCounter;
use pwf_obs::{
    FlightDump, ObsHandle, Watchdog, WatchdogReport, DEFAULT_BUDGET, DEFAULT_KEEP_PER_THREAD,
};

use crate::coalesce::{CoalesceStats, Coalescer, Role};
use crate::lru::{CacheStats, LruCache};
use crate::predict::{self, PredictKey};
use crate::shaper::{Rejection, Shaper, ShaperStats};

/// Where a served body came from (reported in `X-Pwf-Source`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Served from the LRU result cache.
    Cache,
    /// Computed by this request (it led the flight).
    Computed,
    /// Joined another request's in-flight computation.
    Coalesced,
}

impl Source {
    /// Stable header spelling.
    pub fn name(self) -> &'static str {
        match self {
            Source::Cache => "cache",
            Source::Computed => "computed",
            Source::Coalesced => "coalesced",
        }
    }
}

/// A successfully served prediction.
#[derive(Debug, Clone)]
pub struct Served {
    /// The canonical JSON body (shared, not copied, across coalesced
    /// waiters and cache hits).
    pub body: Arc<String>,
    /// How this request was satisfied.
    pub source: Source,
    /// This request's admission ticket (FAI value).
    pub ticket: u64,
}

/// Why a request was not served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Shed at the door: active and queue limits full (HTTP 429).
    Overloaded,
    /// Queued past the admission deadline (HTTP 503).
    QueueTimeout,
    /// The underlying analysis failed (HTTP 500).
    Failed(String),
    /// Served, but past the configured SLO with `--slo-5xx` set
    /// (HTTP 504).
    SloBreach {
        /// How long the request actually took.
        latency_us: u64,
        /// The SLO it breached.
        slo_us: u64,
    },
}

/// Engine construction knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Result-cache capacity (entries).
    pub cache_capacity: usize,
    /// Result-cache TTL in microseconds; `None` = never expires.
    pub cache_ttl_us: Option<u64>,
    /// Concurrent requests allowed past the shaper.
    pub max_active: usize,
    /// Requests allowed to queue behind them.
    pub max_queue: usize,
    /// Longest a request may wait in the queue.
    pub max_wait: Duration,
    /// Per-request latency SLO in microseconds; breaches bump
    /// `serve.slo_violations` and arm the tail watchdog.
    pub slo_us: Option<u64>,
    /// When set, a request that breaches the SLO is answered 504 even
    /// though its body was computed (the `--slo-5xx` knob).
    pub slo_fail: bool,
    /// Explicit watchdog threshold in microseconds (the `--arm` knob):
    /// strict — any exceedance trips the watchdog and captures a
    /// flight dump. Overrides the SLO-derived threshold.
    pub arm_us: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cache_capacity: 1024,
            cache_ttl_us: None,
            max_active: 64,
            max_queue: 256,
            max_wait: Duration::from_secs(10),
            slo_us: None,
            slo_fail: false,
            arm_us: None,
        }
    }
}

/// One-stop stats snapshot across all three production layers.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Cache counters.
    pub cache: CacheStats,
    /// Dedup counters.
    pub dedup: CoalesceStats,
    /// Shaper counters.
    pub shaper: ShaperStats,
    /// Live cache entries.
    pub cache_len: usize,
    /// Coalescer executions currently in flight.
    pub inflight: usize,
}

/// The serving engine. Shared across connection threads behind an
/// `Arc`.
pub struct Engine {
    shaper: Arc<Shaper>,
    cache: Mutex<LruCache<Arc<String>>>,
    coalescer: Coalescer<Arc<String>>,
    ticket: FaiCounter,
    obs: ObsHandle,
    slo_us: Option<u64>,
    slo_fail: bool,
    /// Armed when `arm_us` or `slo_us` is configured; offender `op` is
    /// the request's FAI ticket.
    watchdog: Option<Watchdog>,
    /// Most recent flight dump, captured when the watchdog trips.
    flight: Mutex<Option<Arc<FlightDump>>>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("stats", &self.stats())
            .finish()
    }
}

impl Engine {
    /// Builds an engine with the given knobs, reporting into `obs`.
    pub fn new(config: &EngineConfig, obs: ObsHandle) -> Arc<Self> {
        // `--arm` is strict (any exceedance trips); an SLO-derived
        // threshold keeps the default budget for transient spikes.
        let watchdog = match (config.arm_us, config.slo_us) {
            (Some(arm), _) => Some(Watchdog::armed(arm, 0)),
            (None, Some(slo)) => Some(Watchdog::armed(slo, DEFAULT_BUDGET)),
            (None, None) => None,
        };
        Arc::new(Engine {
            shaper: Shaper::new(config.max_active, config.max_queue, config.max_wait),
            cache: Mutex::new(LruCache::new(config.cache_capacity, config.cache_ttl_us)),
            coalescer: Coalescer::new(),
            ticket: FaiCounter::new(),
            obs,
            slo_us: config.slo_us,
            slo_fail: config.slo_fail,
            watchdog,
            flight: Mutex::new(None),
        })
    }

    fn count(&self, name: &str) {
        if let Some(metrics) = self.obs.metrics() {
            metrics.counter_add(name, 1);
        }
    }

    fn record(&self, name: &str, value: u64) {
        if let Some(metrics) = self.obs.metrics() {
            metrics.record(name, value);
        }
    }

    /// Serves one prediction request end to end: admission, cache
    /// probe, coalesced compute, cache fill.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] / [`ServeError::QueueTimeout`] from
    /// the shaper, [`ServeError::Failed`] when the analysis itself
    /// errors.
    pub fn serve(&self, key: &PredictKey) -> Result<Served, ServeError> {
        let started = Instant::now();
        self.count("serve.requests");
        let permit = self.shaper.admit().map_err(|rejection| match rejection {
            Rejection::Shed => {
                self.count("serve.shed");
                ServeError::Overloaded
            }
            Rejection::TimedOut => {
                self.count("serve.queue_timeouts");
                ServeError::QueueTimeout
            }
        })?;
        self.record("serve.queue_wait_us", permit.queue_wait.as_micros() as u64);

        // Admission ticket: lock-free FAI, Algorithm 5 live.
        let (ticket, steps) = self.ticket.fetch_and_inc();
        self.record("serve.ticket_steps", steps);

        let canonical = key.canonical();
        let outcome = self.serve_admitted(key, &canonical, ticket);
        drop(permit);

        let latency_us = started.elapsed().as_micros() as u64;
        self.record("serve.latency_us", latency_us);
        match &outcome {
            Ok(served) => self.count(match served.source {
                Source::Cache => "serve.cache_hits",
                Source::Computed => "serve.computed",
                Source::Coalesced => "serve.dedup_joins",
            }),
            Err(ServeError::Failed(_)) => self.count("serve.errors"),
            Err(_) => {}
        }
        self.verdict(ticket, latency_us, outcome)
    }

    /// Post-serve telemetry verdict: counts SLO violations, feeds the
    /// tail watchdog (capturing a flight dump on trip), and — with
    /// `slo_fail` — converts a breached success into
    /// [`ServeError::SloBreach`].
    fn verdict(
        &self,
        ticket: u64,
        latency_us: u64,
        outcome: Result<Served, ServeError>,
    ) -> Result<Served, ServeError> {
        let breached = self.slo_us.is_some_and(|slo| latency_us > slo);
        if breached {
            self.count("serve.slo_violations");
        }
        if let Some(watchdog) = &self.watchdog {
            if watchdog.observe(0, ticket, latency_us) {
                self.capture_flight("tail exceedance");
            }
        }
        match (breached && self.slo_fail, outcome) {
            (true, Ok(_)) => Err(ServeError::SloBreach {
                latency_us,
                slo_us: self.slo_us.unwrap_or(0),
            }),
            (_, outcome) => outcome,
        }
    }

    /// Snapshots rings + metrics + watchdog report into the flight
    /// slot (rare: runs once, when the watchdog trips).
    fn capture_flight(&self, reason: &str) {
        let Some(watchdog) = &self.watchdog else {
            return;
        };
        let report = watchdog.report();
        let (events, ticks_per_us) = match self.obs.trace() {
            Some(collector) => (collector.events(), collector.ticks_per_us()),
            None => (Vec::new(), 1.0),
        };
        let metrics = self.obs.metrics().map(|m| m.snapshot());
        let dump = FlightDump::capture(
            reason,
            &report,
            &events,
            DEFAULT_KEEP_PER_THREAD,
            metrics,
            ticks_per_us,
        );
        *self.flight.lock().expect("flight poisoned") = Some(Arc::new(dump));
        self.count("serve.flight_dumps");
    }

    /// The most recent flight dump, if the watchdog has tripped
    /// (served on `GET /flight`).
    pub fn flight(&self) -> Option<Arc<FlightDump>> {
        self.flight.lock().expect("flight poisoned").clone()
    }

    /// The live watchdog report, when the engine is armed
    /// (`slo_us`/`arm_us`).
    pub fn watchdog_report(&self) -> Option<WatchdogReport> {
        self.watchdog.as_ref().map(Watchdog::report)
    }

    fn serve_admitted(
        &self,
        key: &PredictKey,
        canonical: &str,
        ticket: u64,
    ) -> Result<Served, ServeError> {
        if let Some(body) = self.cache.lock().expect("cache poisoned").get(canonical) {
            return Ok(Served {
                body,
                source: Source::Cache,
                ticket,
            });
        }
        let (result, role) = self.coalescer.run(
            canonical,
            || predict::compute(key).map(Arc::new),
            |result| {
                // Cache fill happens before the flight deregisters, so
                // a concurrent request for this key always finds it in
                // the cache or joins in flight — never recomputes.
                if let Ok(body) = result {
                    self.cache
                        .lock()
                        .expect("cache poisoned")
                        .put(canonical, Arc::clone(body));
                }
            },
        );
        let body = result.map_err(ServeError::Failed)?;
        Ok(Served {
            body,
            source: match role {
                Role::Leader => Source::Computed,
                Role::Joiner => Source::Coalesced,
            },
            ticket,
        })
    }

    /// Snapshot of all layer counters (also pushed as gauges into the
    /// metrics registry by the caller of `/metrics`).
    pub fn stats(&self) -> EngineStats {
        let cache = self.cache.lock().expect("cache poisoned");
        EngineStats {
            cache: cache.stats(),
            dedup: self.coalescer.stats(),
            shaper: self.shaper.stats(),
            cache_len: cache.len(),
            inflight: self.coalescer.inflight_len(),
        }
    }

    /// The observability handle the engine reports into.
    pub fn obs(&self) -> &ObsHandle {
        &self.obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::parse_key;

    fn key(spec: &[(&str, &str)]) -> PredictKey {
        let pairs: Vec<(String, String)> = spec
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        parse_key(&pairs).unwrap()
    }

    #[test]
    fn second_request_hits_the_cache_with_identical_bytes() {
        let engine = Engine::new(&EngineConfig::default(), ObsHandle::disabled());
        let k = key(&[("alg", "scu"), ("q", "2"), ("s", "1"), ("n", "64")]);
        let first = engine.serve(&k).unwrap();
        let second = engine.serve(&k).unwrap();
        assert_eq!(first.source, Source::Computed);
        assert_eq!(second.source, Source::Cache);
        assert_eq!(first.body, second.body);
        assert_eq!(*first.body, predict::compute(&k).unwrap());
        assert!(second.ticket > first.ticket, "FAI tickets are increasing");
        let stats = engine.stats();
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.dedup.leaders, 1);
    }

    #[test]
    fn analysis_errors_surface_as_failed_and_are_not_cached() {
        let engine = Engine::new(&EngineConfig::default(), ObsHandle::disabled());
        // Hand-built key that sidesteps validation: chain-layer fai
        // above its state-count wall fails inside the analysis, not in
        // parse_key.
        let bad = PredictKey {
            n: 24,
            ..key(&[("alg", "fai"), ("n", "4"), ("layer", "chain")])
        };
        match engine.serve(&bad) {
            Err(ServeError::Failed(_)) => {}
            other => panic!("expected Failed, got {other:?}"),
        }
        assert_eq!(engine.stats().cache_len, 0, "errors must not be cached");
    }

    #[test]
    fn shed_when_saturated() {
        let config = EngineConfig {
            max_active: 1,
            max_queue: 0,
            ..EngineConfig::default()
        };
        let engine = Engine::new(&config, ObsHandle::disabled());
        // Hold the only slot open by serving from inside a thread that
        // blocks on a slow sim while we poke the front door.
        let k = key(&[
            ("alg", "scu"),
            ("n", "64"),
            ("layer", "sim"),
            ("steps", "5000000"),
        ]);
        let quick = key(&[("alg", "scu"), ("n", "8")]);
        std::thread::scope(|scope| {
            let slow = scope.spawn(|| engine.serve(&k));
            // Wait until the slow request owns the slot.
            while engine.stats().shaper.active == 0 {
                std::thread::yield_now();
            }
            assert_eq!(engine.serve(&quick).unwrap_err(), ServeError::Overloaded);
            slow.join().unwrap().unwrap();
        });
        assert_eq!(engine.stats().shaper.shed, 1);
        assert_eq!(engine.serve(&quick).unwrap().source, Source::Computed);
    }

    /// A key slow enough (a real multi-millisecond simulation) that a
    /// 1 µs SLO is always breached.
    fn slow_key() -> PredictKey {
        key(&[
            ("alg", "scu"),
            ("n", "16"),
            ("layer", "sim"),
            ("steps", "200000"),
        ])
    }

    #[test]
    fn slo_breach_counts_violations_and_fails_with_slo_5xx() {
        let config = EngineConfig {
            slo_us: Some(1),
            slo_fail: true,
            ..EngineConfig::default()
        };
        let engine = Engine::new(&config, ObsHandle::collecting(None));
        match engine.serve(&slow_key()) {
            Err(ServeError::SloBreach { latency_us, slo_us }) => {
                assert_eq!(slo_us, 1);
                assert!(latency_us > slo_us);
            }
            other => panic!("expected SloBreach, got {other:?}"),
        }
        let metrics = engine.obs().metrics().unwrap().snapshot();
        let violations = metrics
            .counters
            .iter()
            .find(|(n, _)| n == "serve.slo_violations")
            .map(|(_, v)| *v);
        assert_eq!(violations, Some(1));
    }

    #[test]
    fn generous_slo_does_not_fail_fast_requests() {
        let config = EngineConfig {
            slo_us: Some(60_000_000),
            slo_fail: true,
            ..EngineConfig::default()
        };
        let engine = Engine::new(&config, ObsHandle::disabled());
        let k = key(&[("alg", "scu"), ("q", "2"), ("s", "1"), ("n", "64")]);
        assert!(engine.serve(&k).is_ok());
        assert!(!engine.watchdog_report().unwrap().tripped);
        assert!(engine.flight().is_none());
    }

    #[test]
    fn armed_watchdog_trips_and_captures_a_flight_dump() {
        let config = EngineConfig {
            arm_us: Some(1),
            ..EngineConfig::default()
        };
        let engine = Engine::new(&config, ObsHandle::collecting(None));
        assert!(engine.flight().is_none());
        let served = engine.serve(&slow_key()).unwrap();
        let report = engine.watchdog_report().unwrap();
        assert!(report.tripped, "1 µs arm must trip on a slow sim");
        let dump = engine.flight().expect("trip captures a flight dump");
        assert_eq!(dump.reason, "tail exceedance");
        assert_eq!(dump.threshold, 1);
        // The offender op is the breaching request's FAI ticket.
        assert!(dump.offenders.iter().any(|o| o.op == served.ticket));
        let metrics = dump.metrics.as_ref().expect("metrics snapshot rides along");
        assert!(metrics.counters.iter().any(|(n, _)| n == "serve.requests"));
    }
}
