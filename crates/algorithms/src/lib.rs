//! The algorithms analyzed in *"Are Lock-Free Concurrent Algorithms
//! Practically Wait-Free?"* (Alistarh, Censor-Hillel, Shavit),
//! implemented as simulated processes over [`pwf_sim`], together with
//! their exact Markov-chain representations over [`pwf_markov`].
//!
//! * [`scu`] — the class `SCU(q, s)` (Section 5, Algorithm 2).
//! * [`parallel`] — contention-free `q`-step calls (Algorithm 4).
//! * [`fai`] — fetch-and-increment via augmented CAS (Algorithm 5).
//! * [`unbounded`] — the unbounded lock-free algorithm that is *not*
//!   wait-free w.h.p. (Algorithm 1, Lemma 2).
//! * [`treiber`], [`rcu`] — data-structure instances of the SCU
//!   pattern (Treiber stack \[21\], RCU \[7\]) with built-in
//!   linearizability checking.
//! * [`chains`] — exact individual/system chains and lifting maps for
//!   `SCU(0, 1)`, parallel code, and fetch-and-increment
//!   (Sections 6.1.1, 6.2, 7.1).
//!
//! # Examples
//!
//! Exact vs. simulated system latency of the scan-validate pattern:
//!
//! ```
//! use pwf_algorithms::chains::scu::exact_system_latency;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let w4 = exact_system_latency(4)?;
//! let w64 = exact_system_latency(64)?;
//! // Theorem 5: W = O(√n) — far below linear growth.
//! assert!(w64 / w4 < (64.0f64 / 4.0));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod chains;
pub mod fai;
pub mod lock;
pub mod msqueue;
pub mod parallel;
pub mod rcu;
pub mod scu;
pub mod treiber;
pub mod unbounded;
pub mod universal;

pub use backoff::BackoffFaiProcess;
pub use fai::FaiProcess;
pub use lock::{LockObject, LockProcess};
pub use msqueue::{QueueProcess, SimQueue};
pub use parallel::ParallelProcess;
pub use rcu::{RcuObject, RcuReader, RcuUpdater};
pub use scu::{ScuObject, ScuProcess};
pub use treiber::{SimStack, StackProcess};
pub use unbounded::{UnboundedObject, UnboundedProcess};
pub use universal::{SeqObject, UniversalObject, UniversalProcess};
