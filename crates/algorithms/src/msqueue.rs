//! A simulated Michael–Scott queue (reference \[17\] in the paper) on
//! the discrete-time simulator, with a sequential shadow queue
//! checking FIFO linearizability at every successful CAS.
//!
//! Note the queue is *not* strictly in `SCU(q, s)`: the enqueue's
//! helping step (swinging a lagging tail) makes it the kind of
//! algorithm the paper's related-work section attributes to the more
//! general canonical form of Petrank–Timnat. We include it to test the
//! framework's empirical reach beyond the proven class — simulation
//! shows the same wait-free-in-practice behaviour.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use pwf_sim::memory::{RegisterId, SharedMemory};
use pwf_sim::process::{Process, ProcessId, StepOutcome};

fn pack(tag: u32, slot: u32) -> u64 {
    ((tag as u64) << 32) | slot as u64
}

fn slot_of(v: u64) -> u32 {
    v as u32
}

/// Bookkeeping shared by all handles of one queue.
#[derive(Debug)]
struct QueueMeta {
    shadow: VecDeque<u64>,
    free_slots: Vec<u32>,
    next_tag: u32,
}

impl QueueMeta {
    fn fresh_tag(&mut self) -> u32 {
        self.next_tag += 1;
        self.next_tag
    }
}

/// The shared registers of a simulated Michael–Scott queue.
#[derive(Debug, Clone)]
pub struct SimQueue {
    head: RegisterId,
    tail: RegisterId,
    next: Vec<RegisterId>,
    value: Vec<RegisterId>,
    meta: Rc<RefCell<QueueMeta>>,
}

impl SimQueue {
    /// Allocates a queue with `slots` node slots (slot 0 reserved as
    /// null; one slot is permanently in use as the dummy).
    ///
    /// # Panics
    ///
    /// Panics if `slots < 3`.
    pub fn alloc(mem: &mut SharedMemory, slots: usize) -> Self {
        assert!(slots >= 3, "need null sentinel, dummy, and one usable slot");
        let next: Vec<RegisterId> = (0..slots).map(|_| mem.alloc(0)).collect();
        let value: Vec<RegisterId> = (0..slots).map(|_| mem.alloc(0)).collect();
        // Slot 1 is the initial dummy; its next is a tagged null.
        let dummy = pack(1, 1);
        let head = mem.alloc(dummy);
        let tail = mem.alloc(dummy);
        SimQueue {
            head,
            tail,
            next,
            value,
            meta: Rc::new(RefCell::new(QueueMeta {
                shadow: VecDeque::new(),
                free_slots: (2..slots as u32).rev().collect(),
                next_tag: 1,
            })),
        }
    }

    /// The abstract queue contents (front to back) per the shadow.
    pub fn shadow_contents(&self) -> Vec<u64> {
        self.meta.borrow().shadow.iter().copied().collect()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Enqueue,
    Dequeue,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Enqueue: write the new node's value (allocates the slot).
    InitValue,
    /// Enqueue: reset the new node's next to a fresh-tagged null.
    InitNext,
    /// Enqueue: read the tail pointer.
    ReadTail,
    /// Enqueue: read the tail node's next.
    ReadTailNext,
    /// Enqueue: CAS the tail node's next to link our node.
    CasNext,
    /// Enqueue: swing the tail to our node (always completes the op).
    SwingTail,
    /// Either: help swing a lagging tail, then retry.
    HelpSwing,
    /// Dequeue: read head.
    ReadHead,
    /// Dequeue: read the head node's next.
    ReadHeadNext,
    /// Dequeue: read the value of the successor node.
    ReadValue,
    /// Dequeue: CAS the head forward.
    CasHead,
}

/// A process alternating enqueue and dequeue operations on a
/// [`SimQueue`].
#[derive(Debug, Clone)]
pub struct QueueProcess {
    id: ProcessId,
    queue: SimQueue,
    op: Op,
    phase: Phase,
    /// Enqueue: our node (packed), its value.
    node: u64,
    node_value: u64,
    node_ready: bool,
    /// Observed tail / head (packed) and its next.
    observed: u64,
    observed_next: u64,
    /// Dequeue: value read from the successor.
    read_value: u64,
    seq: u64,
    /// Completed operations `(is_enqueue, value)`; dequeues of an
    /// empty queue record `u64::MAX`.
    log: Vec<(bool, u64)>,
}

impl QueueProcess {
    /// Creates a queue process.
    pub fn new(id: ProcessId, queue: SimQueue) -> Self {
        QueueProcess {
            id,
            queue,
            op: Op::Enqueue,
            phase: Phase::InitValue,
            node: 0,
            node_value: 0,
            node_ready: false,
            observed: 0,
            observed_next: 0,
            read_value: 0,
            seq: 0,
            log: Vec::new(),
        }
    }

    /// The completed operations of this process.
    pub fn log(&self) -> &[(bool, u64)] {
        &self.log
    }

    fn begin_next_op(&mut self) {
        self.op = match self.op {
            Op::Enqueue => Op::Dequeue,
            Op::Dequeue => Op::Enqueue,
        };
        self.phase = match self.op {
            Op::Enqueue if self.node_ready => Phase::ReadTail,
            Op::Enqueue => Phase::InitValue,
            Op::Dequeue => Phase::ReadHead,
        };
    }
}

impl Process for QueueProcess {
    fn step(&mut self, mem: &mut SharedMemory) -> StepOutcome {
        match self.phase {
            Phase::InitValue => {
                let slot = {
                    let mut meta = self.queue.meta.borrow_mut();
                    let slot = meta
                        .free_slots
                        .pop()
                        .expect("slot pool exhausted: allocate the queue with more slots");
                    let tag = meta.fresh_tag();
                    self.node = pack(tag, slot);
                    slot
                };
                self.node_value = ((self.id.index() as u64) << 48) | self.seq;
                self.seq += 1;
                mem.write(self.queue.value[slot as usize], self.node_value);
                self.phase = Phase::InitNext;
                StepOutcome::Ongoing
            }
            Phase::InitNext => {
                let slot = slot_of(self.node);
                let null = {
                    let mut meta = self.queue.meta.borrow_mut();
                    pack(meta.fresh_tag(), 0)
                };
                mem.write(self.queue.next[slot as usize], null);
                self.node_ready = true;
                self.phase = Phase::ReadTail;
                StepOutcome::Ongoing
            }
            Phase::ReadTail => {
                self.observed = mem.read(self.queue.tail);
                self.phase = Phase::ReadTailNext;
                StepOutcome::Ongoing
            }
            Phase::ReadTailNext => {
                let slot = slot_of(self.observed) as usize;
                self.observed_next = mem.read(self.queue.next[slot]);
                // Michael–Scott consistency check: the next value only
                // belongs to our observed tail if the tail pointer is
                // unchanged (tail words never repeat, thanks to tags).
                // Without it, a stale enqueuer can CAS the fresh null
                // of a *recycled, still-private* node and corrupt the
                // order. (The re-read is folded into this step as a
                // peek; a real implementation pays one more step.)
                if mem.peek(self.queue.tail) != self.observed {
                    self.phase = Phase::ReadTail;
                    return StepOutcome::Ongoing;
                }
                self.phase = if slot_of(self.observed_next) == 0 {
                    Phase::CasNext
                } else {
                    Phase::HelpSwing
                };
                StepOutcome::Ongoing
            }
            Phase::CasNext => {
                let slot = slot_of(self.observed) as usize;
                if mem.cas(self.queue.next[slot], self.observed_next, self.node) {
                    // Linearization point of the enqueue.
                    self.queue
                        .meta
                        .borrow_mut()
                        .shadow
                        .push_back(self.node_value);
                    self.log.push((true, self.node_value));
                    self.node_ready = false;
                    self.phase = Phase::SwingTail;
                } else {
                    self.phase = Phase::ReadTail;
                }
                StepOutcome::Ongoing
            }
            Phase::SwingTail => {
                // Best-effort swing; failure means someone helped.
                let _ = mem.cas(self.queue.tail, self.observed, self.node);
                self.begin_next_op();
                StepOutcome::Completed
            }
            Phase::HelpSwing => {
                let _ = mem.cas(self.queue.tail, self.observed, self.observed_next);
                self.phase = match self.op {
                    Op::Enqueue => Phase::ReadTail,
                    Op::Dequeue => Phase::ReadHead,
                };
                StepOutcome::Ongoing
            }
            Phase::ReadHead => {
                self.observed = mem.read(self.queue.head);
                self.phase = Phase::ReadHeadNext;
                StepOutcome::Ongoing
            }
            Phase::ReadHeadNext => {
                let slot = slot_of(self.observed) as usize;
                self.observed_next = mem.read(self.queue.next[slot]);
                // Classic Michael–Scott branch. The algorithm must
                // never advance head past the tail pointer, or a
                // lagging tail would reference a recycled node; so a
                // dequeuer seeing head == tail first helps swing the
                // tail. (A real implementation re-reads the tail as a
                // separate step; we fold that read into this one — the
                // branch outcome is identical, and one fewer step only
                // shifts the latency constant.)
                let tail = mem.peek(self.queue.tail);
                if self.observed == tail {
                    if slot_of(self.observed_next) == 0 {
                        // Empty queue: completes with "empty".
                        self.log.push((false, u64::MAX));
                        self.begin_next_op();
                        return StepOutcome::Completed;
                    }
                    // Tail lags behind a linked node: help, retry.
                    self.phase = Phase::HelpSwing;
                    return StepOutcome::Ongoing;
                }
                // head ≠ tail ⇒ the head's successor is linked — unless
                // our head read is stale (the node was dequeued and
                // recycled since ReadHead, resetting its next to a
                // fresh null). The eventual CAS would fail on the tag
                // anyway; retry immediately.
                if slot_of(self.observed_next) == 0 {
                    self.phase = Phase::ReadHead;
                    return StepOutcome::Ongoing;
                }
                self.phase = Phase::ReadValue;
                StepOutcome::Ongoing
            }
            Phase::ReadValue => {
                let slot = slot_of(self.observed_next) as usize;
                self.read_value = mem.read(self.queue.value[slot]);
                self.phase = Phase::CasHead;
                StepOutcome::Ongoing
            }
            Phase::CasHead => {
                if mem.cas(self.queue.head, self.observed, self.observed_next) {
                    // Linearization point of the dequeue.
                    let expected = self
                        .queue
                        .meta
                        .borrow_mut()
                        .shadow
                        .pop_front()
                        .expect("shadow queue empty at successful dequeue");
                    assert_eq!(
                        self.read_value, expected,
                        "FIFO linearizability violation: got {} expected {expected}",
                        self.read_value
                    );
                    // Recycle the old dummy.
                    self.queue
                        .meta
                        .borrow_mut()
                        .free_slots
                        .push(slot_of(self.observed));
                    self.log.push((false, self.read_value));
                    self.begin_next_op();
                    StepOutcome::Completed
                } else {
                    self.phase = Phase::ReadHead;
                    StepOutcome::Ongoing
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "ms-queue"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwf_sim::executor::{run, RunConfig};
    use pwf_sim::scheduler::{AdversarialScheduler, UniformScheduler};

    fn fleet(mem: &mut SharedMemory, n: usize) -> (SimQueue, Vec<Box<dyn Process>>) {
        let q = SimQueue::alloc(mem, 2 + 4 * n);
        let ps: Vec<Box<dyn Process>> = (0..n)
            .map(|i| Box::new(QueueProcess::new(ProcessId::new(i), q.clone())) as Box<dyn Process>)
            .collect();
        (q, ps)
    }

    #[test]
    fn solo_enqueue_dequeue_alternation() {
        let mut mem = SharedMemory::new();
        let (q, mut ps) = fleet(&mut mem, 1);
        let exec = run(
            &mut ps,
            &mut AdversarialScheduler::solo(ProcessId::new(0)),
            &mut mem,
            &RunConfig::new(2_000),
        );
        assert!(exec.total_completions() > 200);
        assert!(q.shadow_contents().len() <= 1);
    }

    #[test]
    fn concurrent_queue_is_fifo_linearizable() {
        // Shadow assertions inside QueueProcess fire on violations.
        let mut mem = SharedMemory::new();
        let (_, mut ps) = fleet(&mut mem, 6);
        let exec = run(
            &mut ps,
            &mut UniformScheduler::new(),
            &mut mem,
            &RunConfig::new(300_000).seed(71),
        );
        assert!(exec.total_completions() > 10_000);
    }

    #[test]
    fn all_processes_progress_under_uniform() {
        let mut mem = SharedMemory::new();
        let (_, mut ps) = fleet(&mut mem, 4);
        let exec = run(
            &mut ps,
            &mut UniformScheduler::new(),
            &mut mem,
            &RunConfig::new(200_000).seed(72),
        );
        for i in 0..4 {
            assert!(exec.process_completions[i] > 100, "process {i} starved");
        }
    }

    #[test]
    fn slots_are_recycled_without_aba() {
        let mut mem = SharedMemory::new();
        let (q, mut ps) = fleet(&mut mem, 2);
        let exec = run(
            &mut ps,
            &mut UniformScheduler::new(),
            &mut mem,
            &RunConfig::new(400_000).seed(73),
        );
        // Far more operations than slots: heavy recycling, shadow
        // assertions verify integrity throughout.
        assert!(exec.total_completions() > 10_000);
        assert!(q.shadow_contents().len() <= 2 + 8);
    }

    #[test]
    #[should_panic(expected = "slot pool exhausted")]
    fn exhausted_pool_panics() {
        let mut mem = SharedMemory::new();
        let q = SimQueue::alloc(&mut mem, 3); // one usable slot
        let mut a = QueueProcess::new(ProcessId::new(0), q.clone());
        let mut b = QueueProcess::new(ProcessId::new(1), q);
        a.step(&mut mem); // takes the only slot
        b.step(&mut mem); // pool exhausted
    }
}
