//! Bounded exponential backoff on the fetch-and-increment counter —
//! an ablation probing a known limitation of the unit-cost model.
//!
//! Real CAS loops back off after failures because failed CAS attempts
//! cost cache-coherence traffic that slows *everyone*. The paper's
//! model charges every step one unit regardless, so in the model
//! backoff can only *waste* steps: latency increases monotonically
//! with the backoff cap. Contrast with Algorithm 1 ([`crate::unbounded`]),
//! whose *unbounded* backoff destroys wait-freedom outright —
//! boundedness keeps Theorem 3 applicable, at a constant-factor price.

use pwf_sim::memory::{RegisterId, SharedMemory};
use pwf_sim::process::{Process, StepOutcome};

/// A fetch-and-increment process with bounded exponential backoff:
/// after the `k`-th consecutive CAS failure it spins for
/// `min(2^k, cap)` reads before retrying.
#[derive(Debug, Clone)]
pub struct BackoffFaiProcess {
    counter: RegisterId,
    spin: RegisterId,
    cap: u32,
    v: u64,
    consecutive_failures: u32,
    backoff_left: u32,
}

impl BackoffFaiProcess {
    /// Creates a process with the given backoff cap (in spin reads).
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0` (use [`crate::fai::FaiProcess`] for no
    /// backoff).
    pub fn new(counter: RegisterId, spin: RegisterId, cap: u32) -> Self {
        assert!(cap > 0, "cap must be positive");
        BackoffFaiProcess {
            counter,
            spin,
            cap,
            v: 0,
            consecutive_failures: 0,
            backoff_left: 0,
        }
    }

    /// The backoff cap.
    pub fn cap(&self) -> u32 {
        self.cap
    }
}

impl Process for BackoffFaiProcess {
    fn step(&mut self, mem: &mut SharedMemory) -> StepOutcome {
        if self.backoff_left > 0 {
            let _ = mem.read(self.spin);
            self.backoff_left -= 1;
            return StepOutcome::Ongoing;
        }
        let old = self.v;
        let ret = mem.cas_augmented(self.counter, old, old + 1);
        if ret == old {
            self.v = old + 1;
            self.consecutive_failures = 0;
            StepOutcome::Completed
        } else {
            self.v = ret;
            self.consecutive_failures = self.consecutive_failures.saturating_add(1);
            let exp = 1u32
                .checked_shl(self.consecutive_failures.min(30))
                .unwrap_or(u32::MAX);
            self.backoff_left = exp.min(self.cap);
            StepOutcome::Ongoing
        }
    }

    fn name(&self) -> &'static str {
        "backoff-fai"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwf_sim::executor::{run, RunConfig};
    use pwf_sim::process::ProcessId;
    use pwf_sim::scheduler::{AdversarialScheduler, UniformScheduler};
    use pwf_sim::stats::system_latency;

    fn fleet(mem: &mut SharedMemory, n: usize, cap: u32) -> Vec<Box<dyn Process>> {
        let counter = mem.alloc(0);
        let spin = mem.alloc(0);
        (0..n)
            .map(|_| Box::new(BackoffFaiProcess::new(counter, spin, cap)) as Box<dyn Process>)
            .collect()
    }

    #[test]
    fn solo_never_backs_off() {
        let mut mem = SharedMemory::new();
        let mut ps = fleet(&mut mem, 1, 8);
        let exec = run(
            &mut ps,
            &mut AdversarialScheduler::solo(ProcessId::new(0)),
            &mut mem,
            &RunConfig::new(100),
        );
        assert_eq!(exec.total_completions(), 100);
    }

    #[test]
    fn small_cap_keeps_everyone_progressing() {
        let n = 8;
        let mut mem = SharedMemory::new();
        let mut ps = fleet(&mut mem, n, 2);
        let exec = run(
            &mut ps,
            &mut UniformScheduler::new(),
            &mut mem,
            &RunConfig::new(300_000).seed(85),
        );
        for i in 0..n {
            assert!(exec.process_completions[i] > 500, "process {i} starved");
        }
    }

    #[test]
    fn large_cap_recreates_a_bounded_lemma_2_monopoly() {
        // With a large cap, a failing process sits out ~cap steps
        // while the recent winner (backoff reset) keeps winning —
        // Lemma 2's rich-get-richer dynamic, but *bounded*, so the
        // escape probability stays positive and Theorem 3 still holds
        // (with constants close to its (1/θ)^T worst case).
        let n = 8;
        let mut mem = SharedMemory::new();
        let mut ps = fleet(&mut mem, n, 64);
        let exec = run(
            &mut ps,
            &mut UniformScheduler::new(),
            &mut mem,
            &RunConfig::new(300_000).seed(85),
        );
        let max = *exec.process_completions.iter().max().unwrap();
        let total: u64 = exec.process_completions.iter().sum();
        assert!(
            max as f64 / total as f64 > 0.3,
            "expected monopolization: {:?}",
            exec.process_completions
        );
    }

    #[test]
    fn model_latency_does_not_improve_with_backoff() {
        // The unit-cost model cannot reward backoff (failed CASes are
        // free): W is non-decreasing in the cap. On real hardware
        // backoff helps by cutting coherence traffic — a cost the
        // model does not represent, which is a documented limitation.
        let n = 8;
        let w = |cap: u32| {
            let mut mem = SharedMemory::new();
            let mut ps = fleet(&mut mem, n, cap);
            let exec = run(
                &mut ps,
                &mut UniformScheduler::new(),
                &mut mem,
                &RunConfig::new(400_000).seed(86),
            );
            system_latency(&exec).unwrap().mean
        };
        let w1 = w(1);
        let w16 = w(16);
        let w128 = w(128);
        assert!(w16 > w1, "W(cap=16)={w16} vs W(cap=1)={w1}");
        assert!(w128 >= w16 - 1e-9, "W(cap=128)={w128} vs W(cap=16)={w16}");
    }

    #[test]
    fn backoff_is_bounded_unlike_algorithm_1() {
        // Even after many failures, the backoff never exceeds the cap —
        // the property separating this from Lemma 2's counterexample.
        let mut mem = SharedMemory::new();
        let counter = mem.alloc(0);
        let spin = mem.alloc(0);
        let mut loser = BackoffFaiProcess::new(counter, spin, 8);
        let mut winner = crate::fai::FaiProcess::new(counter);
        for _ in 0..50 {
            // Winner bumps the counter; loser fails and backs off.
            assert!(winner.step(&mut mem).is_completed());
            while !matches!(loser.step(&mut mem), StepOutcome::Ongoing) {}
            assert!(loser.backoff_left <= 8);
        }
    }
}
