//! A lock-based (blocking) counter — the *deadlock-free* baseline the
//! paper's introduction contrasts with lock-freedom.
//!
//! A process acquires a test-and-set spinlock, performs a
//! `cs`-step critical section (read counter, local update, write,
//! …, unlock), and completes. Under the uniform stochastic scheduler
//! the holder is scheduled once every `n` steps in expectation, so the
//! system latency is `1 + cs·n` — **linear** in `n`, versus the
//! lock-free class's `Θ(√n)` (Theorem 5). And if the holder crashes,
//! the whole system blocks forever: deadlock-freedom's minimal
//! progress is conditional on crash-free executions, while
//! lock-freedom's is not.

use pwf_sim::memory::{RegisterId, SharedMemory};
use pwf_sim::process::{Process, ProcessId, StepOutcome};

/// Register value meaning "lock free".
const UNLOCKED: u64 = 0;

/// Shared registers of the lock-based counter.
#[derive(Debug, Clone, Copy)]
pub struct LockObject {
    lock: RegisterId,
    counter: RegisterId,
}

impl LockObject {
    /// Allocates the lock and counter registers.
    pub fn alloc(mem: &mut SharedMemory) -> Self {
        LockObject {
            lock: mem.alloc(UNLOCKED),
            counter: mem.alloc(0),
        }
    }

    /// The protected counter register.
    pub fn counter(&self) -> RegisterId {
        self.counter
    }

    /// The lock register (for assertions).
    pub fn lock(&self) -> RegisterId {
        self.lock
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Spinning on the lock with test-and-set.
    Acquire,
    /// Inside the critical section with `k` steps remaining before the
    /// unlock.
    Critical(usize),
    /// About to release the lock.
    Release,
}

/// A process incrementing a counter under a test-and-set spinlock,
/// with a critical section of `cs_len` shared-memory steps (≥ 1; the
/// final unlock write is separate).
#[derive(Debug, Clone)]
pub struct LockProcess {
    id: ProcessId,
    object: LockObject,
    cs_len: usize,
    phase: Phase,
}

impl LockProcess {
    /// Creates a lock-based counter process.
    ///
    /// # Panics
    ///
    /// Panics if `cs_len == 0`.
    pub fn new(id: ProcessId, object: LockObject, cs_len: usize) -> Self {
        assert!(cs_len >= 1, "critical section needs at least one step");
        LockProcess {
            id,
            object,
            cs_len,
            phase: Phase::Acquire,
        }
    }

    /// Total steps of one uncontended operation: acquire + critical
    /// section + unlock.
    pub fn op_len(&self) -> usize {
        self.cs_len + 2
    }
}

impl Process for LockProcess {
    fn step(&mut self, mem: &mut SharedMemory) -> StepOutcome {
        match self.phase {
            Phase::Acquire => {
                let token = 1 + self.id.index() as u64;
                if mem.cas(self.object.lock, UNLOCKED, token) {
                    self.phase = Phase::Critical(self.cs_len);
                }
                StepOutcome::Ongoing
            }
            Phase::Critical(k) => {
                debug_assert_eq!(
                    mem.peek(self.object.lock),
                    1 + self.id.index() as u64,
                    "critical section entered without holding the lock"
                );
                if k == self.cs_len {
                    // First critical step: read the counter...
                    let v = mem.read(self.object.counter);
                    // ...and stage the increment locally (free).
                    let _ = v;
                } else if k == 1 {
                    // Last critical step: publish the increment.
                    let v = mem.peek(self.object.counter);
                    mem.write(self.object.counter, v + 1);
                } else {
                    // Middle steps: auxiliary critical-section work.
                    let _ = mem.read(self.object.counter);
                }
                self.phase = if k == 1 {
                    Phase::Release
                } else {
                    Phase::Critical(k - 1)
                };
                StepOutcome::Ongoing
            }
            Phase::Release => {
                mem.write(self.object.lock, UNLOCKED);
                self.phase = Phase::Acquire;
                StepOutcome::Completed
            }
        }
    }

    fn name(&self) -> &'static str {
        "lock-counter"
    }
}

/// Closed-form system latency of the lock-based counter under the
/// uniform stochastic scheduler: one step acquires the free lock (any
/// scheduled process succeeds), then each of the `cs + 1` remaining
/// holder steps (critical section + unlock) waits expected `n`
/// schedulings: `W = 1 + (cs + 1)·n`.
///
/// # Panics
///
/// Panics if `n == 0` or `cs_len == 0`.
pub fn predicted_system_latency(n: usize, cs_len: usize) -> f64 {
    assert!(n >= 1 && cs_len >= 1, "need n ≥ 1 and cs_len ≥ 1");
    1.0 + ((cs_len + 1) * n) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwf_sim::crash::CrashSchedule;
    use pwf_sim::executor::{run, RunConfig};
    use pwf_sim::scheduler::{AdversarialScheduler, UniformScheduler};
    use pwf_sim::stats::system_latency;

    fn fleet(mem: &mut SharedMemory, n: usize, cs: usize) -> (LockObject, Vec<Box<dyn Process>>) {
        let obj = LockObject::alloc(mem);
        let ps = (0..n)
            .map(|i| Box::new(LockProcess::new(ProcessId::new(i), obj, cs)) as Box<dyn Process>)
            .collect();
        (obj, ps)
    }

    #[test]
    fn solo_operation_takes_cs_plus_two_steps() {
        let mut mem = SharedMemory::new();
        let (_, mut ps) = fleet(&mut mem, 1, 3);
        let exec = run(
            &mut ps,
            &mut AdversarialScheduler::solo(ProcessId::new(0)),
            &mut mem,
            &RunConfig::new(50),
        );
        assert_eq!(exec.total_completions(), 10); // 5 steps per op
    }

    #[test]
    fn counter_equals_completions_mutual_exclusion_holds() {
        let mut mem = SharedMemory::new();
        let (obj, mut ps) = fleet(&mut mem, 6, 2);
        let exec = run(
            &mut ps,
            &mut UniformScheduler::new(),
            &mut mem,
            &RunConfig::new(200_000).seed(61),
        );
        // No lost updates despite the read/stage/write split: mutual
        // exclusion protected the counter.
        assert_eq!(mem.peek(obj.counter()), exec.total_completions());
        assert!(exec.total_completions() > 1_000);
    }

    #[test]
    fn latency_is_linear_in_n() {
        for n in [2usize, 4, 8, 16] {
            let mut mem = SharedMemory::new();
            let (_, mut ps) = fleet(&mut mem, n, 2);
            let exec = run(
                &mut ps,
                &mut UniformScheduler::new(),
                &mut mem,
                &RunConfig::new(400_000).seed(62),
            );
            let w = system_latency(&exec).unwrap().mean;
            let pred = predicted_system_latency(n, 2);
            assert!(
                (w - pred).abs() / pred < 0.05,
                "n={n}: W={w} vs predicted {pred}"
            );
        }
    }

    #[test]
    fn crashed_lock_holder_blocks_everyone_forever() {
        // The blocking pathology: crash p0 mid-critical-section.
        let n = 4;
        let mut mem = SharedMemory::new();
        let (obj, mut ps) = fleet(&mut mem, n, 3);
        // Drive p0 into the critical section deterministically.
        let mut sched = AdversarialScheduler::solo(ProcessId::new(0));
        let warm = run(&mut ps, &mut sched, &mut mem, &RunConfig::new(2));
        assert_eq!(warm.total_completions(), 0);
        assert_ne!(mem.peek(obj.lock()), UNLOCKED, "p0 must hold the lock");
        // Now crash p0 immediately and run everyone else stochastically.
        let crashes = CrashSchedule::new(vec![(1, ProcessId::new(0))], n).unwrap();
        let exec = run(
            &mut ps,
            &mut UniformScheduler::new(),
            &mut mem,
            &RunConfig::new(100_000).seed(63).crashes(crashes),
        );
        assert_eq!(
            exec.total_completions(),
            0,
            "blocking algorithm must deadlock when the holder crashes"
        );
    }

    #[test]
    fn lock_free_counter_survives_the_same_crash() {
        // Contrast: the lock-free FAI counter under an identical crash
        // pattern keeps completing (lock-freedom's minimal progress is
        // unconditional).
        use crate::fai::FaiProcess;
        let n = 4;
        let mut mem = SharedMemory::new();
        let r = mem.alloc(0);
        let mut ps: Vec<Box<dyn Process>> = (0..n)
            .map(|_| Box::new(FaiProcess::new(r)) as Box<dyn Process>)
            .collect();
        let crashes = CrashSchedule::new(vec![(1, ProcessId::new(0))], n).unwrap();
        let exec = run(
            &mut ps,
            &mut UniformScheduler::new(),
            &mut mem,
            &RunConfig::new(100_000).seed(63).crashes(crashes),
        );
        assert!(exec.total_completions() > 10_000);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_critical_section_panics() {
        let mut mem = SharedMemory::new();
        let obj = LockObject::alloc(&mut mem);
        let _ = LockProcess::new(ProcessId::new(0), obj, 0);
    }
}
