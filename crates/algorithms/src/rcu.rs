//! A read-copy-update-style publisher (reference \[7\] in the paper) as
//! an `SCU(q, 1)` instance: updaters copy the current state (a `q`-step
//! preamble of reads and private writes), then publish with a single
//! CAS on the state pointer; readers are wait-free single reads.
//!
//! This mirrors how the Linux-kernel RCU update side fits the paper's
//! class (Section 5: "The read-copy-update (RCU) synchronization
//! mechanism ... is also an instance of this pattern").

use pwf_sim::memory::{RegisterId, SharedMemory};
use pwf_sim::process::{Process, ProcessId, StepOutcome};

/// Shared registers of the RCU object: the published-state pointer and
/// a bank of version buffers.
#[derive(Debug, Clone)]
pub struct RcuObject {
    /// Pointer register holding the current version stamp.
    pointer: RegisterId,
    /// Scratch buffer registers copied during an update preamble.
    buffer: Vec<RegisterId>,
}

impl RcuObject {
    /// Allocates the object with a copy buffer of `buffer_len`
    /// registers (the update preamble copies each once, so
    /// `q = buffer_len`).
    ///
    /// # Panics
    ///
    /// Panics if `buffer_len == 0`.
    pub fn alloc(mem: &mut SharedMemory, buffer_len: usize) -> Self {
        assert!(buffer_len > 0, "buffer must be non-empty");
        RcuObject {
            pointer: mem.alloc(0),
            buffer: (0..buffer_len).map(|_| mem.alloc(0)).collect(),
        }
    }

    /// The published-pointer register.
    pub fn pointer(&self) -> RegisterId {
        self.pointer
    }

    /// The copy-buffer length (`q` of the update side).
    pub fn buffer_len(&self) -> usize {
        self.buffer.len()
    }
}

/// An RCU *reader*: each operation is one wait-free read of the
/// published pointer.
#[derive(Debug, Clone)]
pub struct RcuReader {
    object: RcuObject,
    /// Last version observed, for monotonicity checks.
    last_seen: u64,
    /// Whether a version ever went backwards (must stay false).
    regression: bool,
}

impl RcuReader {
    /// Creates a reader on `object`.
    pub fn new(object: RcuObject) -> Self {
        RcuReader {
            object,
            last_seen: 0,
            regression: false,
        }
    }

    /// Whether this reader ever observed the published version going
    /// backwards (it never should: CAS publishes monotonically
    /// increasing stamps).
    pub fn saw_regression(&self) -> bool {
        self.regression
    }
}

impl Process for RcuReader {
    fn step(&mut self, mem: &mut SharedMemory) -> StepOutcome {
        let v = mem.read(self.object.pointer);
        if version_of(v) < version_of(self.last_seen) {
            self.regression = true;
        }
        self.last_seen = v;
        // Every read is a completed (wait-free) read-side operation.
        StepOutcome::Completed
    }

    fn name(&self) -> &'static str {
        "rcu-reader"
    }
}

fn version_of(v: u64) -> u64 {
    v >> 16
}

/// An RCU *updater*: copies the buffer (`q` reads), then CAS-publishes
/// a new version stamp; on conflict it restarts the copy (the
/// standard retry-loop RCU update under contention).
#[derive(Debug, Clone)]
pub struct RcuUpdater {
    id: ProcessId,
    object: RcuObject,
    /// Position within the copy preamble; `None` means about to read
    /// the pointer (start of scan).
    copy_pos: Option<usize>,
    observed: u64,
    seq: u64,
}

impl RcuUpdater {
    /// Creates an updater on `object`.
    pub fn new(id: ProcessId, object: RcuObject) -> Self {
        RcuUpdater {
            id,
            object,
            copy_pos: Some(0),
            observed: 0,
            seq: 0,
        }
    }
}

impl Process for RcuUpdater {
    fn step(&mut self, mem: &mut SharedMemory) -> StepOutcome {
        match self.copy_pos {
            // Preamble: copy the buffer.
            Some(k) if k < self.object.buffer.len() => {
                let _ = mem.read(self.object.buffer[k]);
                self.copy_pos = Some(k + 1);
                StepOutcome::Ongoing
            }
            // Scan: read the pointer.
            Some(_) => {
                self.observed = mem.read(self.object.pointer);
                self.copy_pos = None;
                StepOutcome::Ongoing
            }
            // Validate: publish.
            None => {
                self.seq += 1;
                let fresh =
                    (version_of(self.observed) + 1) << 16 | (self.id.index() as u64 & 0xFFFF);
                if mem.cas(self.object.pointer, self.observed, fresh) {
                    self.copy_pos = Some(0);
                    StepOutcome::Completed
                } else {
                    // Conflict: re-read the pointer and re-validate.
                    // (The copied data stays valid; only the scan
                    // repeats, making the retry loop SCU(q, 1).)
                    self.copy_pos = Some(self.object.buffer.len());
                    StepOutcome::Ongoing
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "rcu-updater"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwf_sim::executor::{run, RunConfig};
    use pwf_sim::scheduler::{AdversarialScheduler, UniformScheduler};

    #[test]
    fn solo_updater_publishes_every_q_plus_2_steps() {
        let mut mem = SharedMemory::new();
        let obj = RcuObject::alloc(&mut mem, 3);
        let mut ps: Vec<Box<dyn Process>> = vec![Box::new(RcuUpdater::new(ProcessId::new(0), obj))];
        let exec = run(
            &mut ps,
            &mut AdversarialScheduler::solo(ProcessId::new(0)),
            &mut mem,
            &RunConfig::new(50),
        );
        // 3 copy + 1 pointer read + 1 CAS = 5 steps per publish.
        assert_eq!(exec.total_completions(), 10);
    }

    #[test]
    fn readers_never_see_version_regression() {
        let mut mem = SharedMemory::new();
        let obj = RcuObject::alloc(&mut mem, 2);
        let mut readers: Vec<RcuReader> = (0..2).map(|_| RcuReader::new(obj.clone())).collect();
        let mut updaters: Vec<RcuUpdater> = (2..4)
            .map(|i| RcuUpdater::new(ProcessId::new(i), obj.clone()))
            .collect();
        // Drive manually with an interleaved pattern.
        let pattern = [0usize, 2, 0, 3, 1, 2, 2, 3, 1, 0, 3, 2];
        for step in 0..60_000 {
            match pattern[step % pattern.len()] {
                i @ 0..=1 => {
                    let _ = readers[i].step(&mut mem);
                }
                i => {
                    let _ = updaters[i - 2].step(&mut mem);
                }
            }
        }
        assert!(!readers[0].saw_regression());
        assert!(!readers[1].saw_regression());
        assert!(version_of(mem.peek(obj.pointer())) > 0);
    }

    #[test]
    fn contended_updaters_all_publish_under_uniform() {
        let mut mem = SharedMemory::new();
        let obj = RcuObject::alloc(&mut mem, 2);
        let mut ps: Vec<Box<dyn Process>> = (0..4)
            .map(|i| Box::new(RcuUpdater::new(ProcessId::new(i), obj.clone())) as Box<dyn Process>)
            .collect();
        let exec = run(
            &mut ps,
            &mut UniformScheduler::new(),
            &mut mem,
            &RunConfig::new(100_000).seed(47),
        );
        for i in 0..4 {
            assert!(exec.process_completions[i] > 100, "updater {i} starved");
        }
        // Published version count equals total successful publishes.
        assert_eq!(
            version_of(mem.peek(obj.pointer())),
            exec.total_completions()
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_buffer_panics() {
        let mut mem = SharedMemory::new();
        let _ = RcuObject::alloc(&mut mem, 0);
    }
}
