//! The lock-free universal construction (paper, Section 5: "every
//! sequential object has a lock-free implementation in this class
//! using a lock-free version of Herlihy's universal construction").
//!
//! Any sequential object — anything implementing [`SeqObject`] — is
//! made concurrent by the copy-modify-CAS pattern:
//!
//! 1. **preamble**: copy the current state (`q` steps proportional to
//!    the state size) and apply the operation locally;
//! 2. **scan**: read the version register `R`;
//! 3. **validate**: CAS `R` from the observed version to a fresh one
//!    that names the locally computed state.
//!
//! This is exactly `SCU(q, 1)`, so Theorem 4 prices every object made
//! this way at `O(q + √n)` expected steps per operation under the
//! uniform stochastic scheduler.
//!
//! Committed states live in a side table keyed by version stamp (the
//! paper's registers hold abstract values; the table models the heap
//! snapshot a version names). A shadow copy of the object is replayed
//! at each successful CAS, so linearizability is asserted on every
//! simulated run.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use pwf_sim::memory::{RegisterId, SharedMemory};
use pwf_sim::process::{Process, ProcessId, StepOutcome};

/// A sequential object: deterministic state plus an apply function.
pub trait SeqObject: Clone {
    /// Operation type.
    type Op: Clone;
    /// Response type.
    type Response: PartialEq + std::fmt::Debug;

    /// Applies one operation, mutating the state and returning the
    /// response.
    fn apply(&mut self, op: &Self::Op) -> Self::Response;

    /// The cost of copying the state, in preamble steps (≥ 1). Models
    /// `q`; defaults to 1.
    fn copy_cost(&self) -> usize {
        1
    }
}

/// Shared bookkeeping: the version → state table and the shadow
/// object.
#[derive(Debug)]
struct UniversalMeta<T: SeqObject> {
    states: HashMap<u64, T>,
    shadow: T,
    committed_ops: u64,
}

/// A concurrent object produced by the universal construction.
#[derive(Debug)]
pub struct UniversalObject<T: SeqObject> {
    version: RegisterId,
    meta: Rc<RefCell<UniversalMeta<T>>>,
}

impl<T: SeqObject> Clone for UniversalObject<T> {
    fn clone(&self) -> Self {
        UniversalObject {
            version: self.version,
            meta: Rc::clone(&self.meta),
        }
    }
}

impl<T: SeqObject> UniversalObject<T> {
    /// Wraps a sequential object for concurrent use; version 0 names
    /// the initial state.
    pub fn new(mem: &mut SharedMemory, initial: T) -> Self {
        let version = mem.alloc(0);
        let mut states = HashMap::new();
        states.insert(0, initial.clone());
        UniversalObject {
            version,
            meta: Rc::new(RefCell::new(UniversalMeta {
                states,
                shadow: initial,
                committed_ops: 0,
            })),
        }
    }

    /// The current committed state (per the shadow; for assertions).
    pub fn current_state(&self) -> T {
        self.meta.borrow().shadow.clone()
    }

    /// Number of committed operations.
    pub fn committed_ops(&self) -> u64 {
        self.meta.borrow().committed_ops
    }
}

/// A process applying operations from a cyclic script to a
/// [`UniversalObject`].
#[derive(Debug, Clone)]
pub struct UniversalProcess<T: SeqObject> {
    id: ProcessId,
    object: UniversalObject<T>,
    script: Vec<T::Op>,
    script_pos: usize,
    /// Remaining preamble (copy) steps for the current attempt set.
    copy_left: usize,
    /// `Some(observed_version)` once the scan has run.
    observed: Option<u64>,
    /// Locally computed next state and response.
    staged: Option<(T, T::Response)>,
    seq: u64,
    /// Responses of committed operations, for verification.
    responses: Vec<T::Response>,
}

impl<T: SeqObject> UniversalProcess<T> {
    /// Creates a process that applies `script` operations round-robin,
    /// forever.
    ///
    /// # Panics
    ///
    /// Panics if `script` is empty.
    pub fn new(id: ProcessId, object: UniversalObject<T>, script: Vec<T::Op>) -> Self {
        assert!(!script.is_empty(), "operation script must be non-empty");
        let copy = object.meta.borrow().shadow.copy_cost().max(1);
        UniversalProcess {
            id,
            object,
            script,
            script_pos: 0,
            copy_left: copy,
            observed: None,
            staged: None,
            seq: 0,
            responses: Vec::new(),
        }
    }

    /// Responses returned by this process's committed operations.
    pub fn responses(&self) -> &[T::Response] {
        &self.responses
    }

    fn fresh_version(&mut self) -> u64 {
        self.seq += 1;
        (self.seq << 16) | (self.id.index() as u64 & 0xFFFF)
    }
}

impl<T: SeqObject + 'static> Process for UniversalProcess<T> {
    fn step(&mut self, mem: &mut SharedMemory) -> StepOutcome {
        // Preamble: copy steps (reads of the version register model
        // reads of the state snapshot).
        if self.copy_left > 0 {
            let _ = mem.read(self.object.version);
            self.copy_left -= 1;
            return StepOutcome::Ongoing;
        }
        match self.observed {
            None => {
                // Scan: read the version, stage the op locally (local
                // computation is free in the model).
                let v = mem.read(self.object.version);
                self.observed = Some(v);
                let mut state = self
                    .object
                    .meta
                    .borrow()
                    .states
                    .get(&v)
                    .expect("version names a committed state")
                    .clone();
                let op = &self.script[self.script_pos];
                let response = state.apply(op);
                self.staged = Some((state, response));
                StepOutcome::Ongoing
            }
            Some(v) => {
                let fresh = self.fresh_version();
                if mem.cas(self.object.version, v, fresh) {
                    let (state, response) = self.staged.take().expect("staged by the scan step");
                    let op = self.script[self.script_pos].clone();
                    {
                        let mut meta = self.object.meta.borrow_mut();
                        // Keep the table bounded: drop the replaced
                        // version (old snapshots are unreachable — no
                        // process can CAS from a version that is no
                        // longer current).
                        meta.states.remove(&v);
                        meta.states.insert(fresh, state);
                        // Linearizability: replaying on the shadow in
                        // commit order must yield the same response.
                        let shadow_response = meta.shadow.apply(&op);
                        assert_eq!(
                            shadow_response, response,
                            "linearizability violation in universal construction"
                        );
                        meta.committed_ops += 1;
                    }
                    self.responses.push(response);
                    self.script_pos = (self.script_pos + 1) % self.script.len();
                    self.observed = None;
                    self.copy_left = self.object.meta.borrow().shadow.copy_cost().max(1);
                    StepOutcome::Completed
                } else {
                    // Retry: re-scan (the copied state stays, as in
                    // SCU — only the scan repeats).
                    self.observed = None;
                    self.staged = None;
                    StepOutcome::Ongoing
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "universal"
    }
}

/// A sequential bank account used in tests and examples: deposits,
/// withdrawals with overdraft rejection, and balance reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankAccount {
    /// Current balance.
    pub balance: i64,
}

/// Operations on [`BankAccount`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankOp {
    /// Add funds.
    Deposit(u32),
    /// Remove funds; rejected (response `-1`) on overdraft.
    Withdraw(u32),
    /// Read the balance.
    Balance,
}

impl SeqObject for BankAccount {
    type Op = BankOp;
    type Response = i64;

    fn apply(&mut self, op: &BankOp) -> i64 {
        match *op {
            BankOp::Deposit(x) => {
                self.balance += i64::from(x);
                self.balance
            }
            BankOp::Withdraw(x) => {
                if self.balance >= i64::from(x) {
                    self.balance -= i64::from(x);
                    self.balance
                } else {
                    -1
                }
            }
            BankOp::Balance => self.balance,
        }
    }

    fn copy_cost(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwf_sim::executor::{run, RunConfig};
    use pwf_sim::scheduler::{AdversarialScheduler, UniformScheduler};
    use pwf_sim::stats::system_latency;

    fn bank_fleet(
        mem: &mut SharedMemory,
        n: usize,
    ) -> (UniversalObject<BankAccount>, Vec<Box<dyn Process>>) {
        let obj = UniversalObject::new(mem, BankAccount { balance: 0 });
        let ps: Vec<Box<dyn Process>> = (0..n)
            .map(|i| {
                let script = vec![BankOp::Deposit(10), BankOp::Balance, BankOp::Withdraw(5)];
                Box::new(UniversalProcess::new(
                    ProcessId::new(i),
                    obj.clone(),
                    script,
                )) as Box<dyn Process>
            })
            .collect();
        (obj, ps)
    }

    #[test]
    fn solo_execution_applies_script_in_order() {
        let mut mem = SharedMemory::new();
        let obj = UniversalObject::new(&mut mem, BankAccount { balance: 0 });
        let mut p = UniversalProcess::new(
            ProcessId::new(0),
            obj.clone(),
            vec![BankOp::Deposit(7), BankOp::Withdraw(3)],
        );
        // One op = 2 copy + 1 scan + 1 CAS = 4 steps.
        let mut completions = 0;
        for _ in 0..16 {
            if p.step(&mut mem).is_completed() {
                completions += 1;
            }
        }
        assert_eq!(completions, 4);
        assert_eq!(p.responses(), &[7, 4, 11, 8]);
        assert_eq!(obj.current_state().balance, 8);
    }

    #[test]
    fn concurrent_bank_is_linearizable_and_conserves_money() {
        let n = 6;
        let mut mem = SharedMemory::new();
        let (obj, mut ps) = bank_fleet(&mut mem, n);
        let exec = run(
            &mut ps,
            &mut UniformScheduler::new(),
            &mut mem,
            &RunConfig::new(200_000).seed(81),
        );
        // The shadow assertion inside the process catches any
        // linearizability violation; additionally the balance must be
        // non-negative (withdrawals reject overdrafts sequentially).
        assert!(exec.total_completions() > 5_000);
        assert!(obj.current_state().balance >= 0);
        assert_eq!(obj.committed_ops(), exec.total_completions());
    }

    #[test]
    fn version_table_stays_bounded() {
        let mut mem = SharedMemory::new();
        let (obj, mut ps) = bank_fleet(&mut mem, 4);
        let _ = run(
            &mut ps,
            &mut UniformScheduler::new(),
            &mut mem,
            &RunConfig::new(100_000).seed(82),
        );
        // Only the current version's state is retained.
        assert_eq!(obj.meta.borrow().states.len(), 1);
    }

    #[test]
    fn latency_matches_scu_q_1_shape() {
        // copy_cost = 2 ⇒ SCU(2, 1): W ≈ 2·(fraction) + α√n … just
        // check the universal object's latency is within 25% of the
        // plain ScuProcess with q = 2, s = 1.
        let n = 8;
        let mut mem = SharedMemory::new();
        let (_, mut ps) = bank_fleet(&mut mem, n);
        let exec = run(
            &mut ps,
            &mut UniformScheduler::new(),
            &mut mem,
            &RunConfig::new(400_000).seed(83),
        );
        let w_universal = system_latency(&exec).unwrap().mean;

        let mut mem2 = SharedMemory::new();
        let scu = crate::scu::ScuObject::alloc(&mut mem2, 1);
        let mut ps2: Vec<Box<dyn Process>> = (0..n)
            .map(|i| {
                Box::new(crate::scu::ScuProcess::new(
                    ProcessId::new(i),
                    scu.clone(),
                    2,
                    1,
                )) as Box<dyn Process>
            })
            .collect();
        let exec2 = run(
            &mut ps2,
            &mut UniformScheduler::new(),
            &mut mem2,
            &RunConfig::new(400_000).seed(83),
        );
        let w_scu = system_latency(&exec2).unwrap().mean;
        assert!(
            (w_universal - w_scu).abs() / w_scu < 0.25,
            "universal {w_universal} vs scu(2,1) {w_scu}"
        );
    }

    #[test]
    fn round_robin_does_not_starve_with_a_preamble() {
        // Unlike SCU(0,1), the q = 2 preamble desynchronizes the
        // classic round-robin starvation schedule: while one process
        // copies, the other's CAS lands. Both make progress.
        let mut mem = SharedMemory::new();
        let (_, mut ps) = bank_fleet(&mut mem, 2);
        let exec = run(
            &mut ps,
            &mut AdversarialScheduler::round_robin(2),
            &mut mem,
            &RunConfig::new(10_000),
        );
        assert!(exec.process_completions[0] > 0);
        assert!(exec.process_completions[1] > 0);
    }

    #[test]
    fn tailored_adversary_still_starves_the_victim() {
        // Lock-free but not wait-free: pace the victim so its scan and
        // CAS straddle a full operation by the favourite.
        let mut mem = SharedMemory::new();
        let (_, mut ps) = bank_fleet(&mut mem, 2);
        let script = vec![
            ProcessId::new(1),
            ProcessId::new(0),
            ProcessId::new(0),
            ProcessId::new(0),
            ProcessId::new(0),
        ];
        let exec = run(
            &mut ps,
            &mut AdversarialScheduler::cycle(script),
            &mut mem,
            &RunConfig::new(10_000),
        );
        assert!(exec.process_completions[0] > 1_000);
        assert_eq!(exec.process_completions[1], 0, "victim must starve");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_script_panics() {
        let mut mem = SharedMemory::new();
        let obj = UniversalObject::new(&mut mem, BankAccount { balance: 0 });
        let _ = UniversalProcess::new(ProcessId::new(0), obj, vec![]);
    }
}
