//! The class `SCU(q, s)` (paper, Section 5, Algorithm 2).
//!
//! An algorithm in the class runs, per method call:
//!
//! 1. a *preamble* of `q` steps (auxiliary shared-memory work that
//!    never touches the decision register `R`), then
//! 2. a loop of a *scan region* — reading `R, R_1, …, R_{s−1}` — and a
//!    *validation step*: `CAS(R, v, v′)` where `v` is the scanned value
//!    of `R` and `v′` a freshly proposed state. Success completes the
//!    method call; failure restarts the loop.
//!
//! Distinct processes never propose the same value for `R` (enforced
//! here, as the paper suggests, by embedding a per-process timestamp
//! into proposals).

use pwf_sim::memory::{RegisterId, SharedMemory};
use pwf_sim::process::{Process, ProcessId, StepOutcome};

/// Shared registers of an `SCU(q, s)` object: the decision register
/// `R`, the auxiliary scan registers `R_1 … R_{s−1}`, and a scratch
/// register absorbing preamble accesses.
#[derive(Debug, Clone)]
pub struct ScuObject {
    decision: RegisterId,
    aux: Vec<RegisterId>,
    scratch: RegisterId,
}

impl ScuObject {
    /// Allocates the registers for an `SCU(·, s)` object.
    ///
    /// # Panics
    ///
    /// Panics if `s == 0` (the scan region must at least read `R`).
    pub fn alloc(mem: &mut SharedMemory, s: usize) -> Self {
        assert!(s >= 1, "scan region must have at least one step");
        let decision = mem.alloc(0);
        let aux = (1..s).map(|_| mem.alloc(0)).collect();
        let scratch = mem.alloc(0);
        ScuObject {
            decision,
            aux,
            scratch,
        }
    }

    /// The decision register `R`.
    pub fn decision(&self) -> RegisterId {
        self.decision
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Preamble step `k` of `q` (skipped entirely when `q = 0`).
    Preamble(usize),
    /// Scan step `j` of `s`; step 0 reads the decision register.
    Scan(usize),
    /// About to CAS the decision register.
    Validate,
}

/// One process running an `SCU(q, s)` method call in an infinite loop.
///
/// Proposed values are unique across processes and invocations: the
/// proposal is `(sequence << 16) | pid`, so two processes never CAS
/// the same value into `R` (the paper's timestamp assumption).
///
/// # Examples
///
/// ```
/// use pwf_algorithms::scu::{ScuObject, ScuProcess};
/// use pwf_sim::executor::{run, RunConfig};
/// use pwf_sim::memory::SharedMemory;
/// use pwf_sim::process::{Process, ProcessId};
/// use pwf_sim::scheduler::UniformScheduler;
///
/// let mut mem = SharedMemory::new();
/// let obj = ScuObject::alloc(&mut mem, 1);
/// let mut ps: Vec<Box<dyn Process>> = (0..4)
///     .map(|i| Box::new(ScuProcess::new(ProcessId::new(i), obj.clone(), 0, 1)) as Box<dyn Process>)
///     .collect();
/// let exec = run(&mut ps, &mut UniformScheduler::new(), &mut mem, &RunConfig::new(10_000));
/// assert!(exec.total_completions() > 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct ScuProcess {
    id: ProcessId,
    object: ScuObject,
    q: usize,
    s: usize,
    phase: Phase,
    /// Value of `R` read at the start of the current scan.
    scanned: u64,
    /// Per-process proposal sequence number.
    seq: u64,
    /// `(observed, proposed)` of the most recent successful CAS, for
    /// operation-history recording by checking tools.
    last_completed: Option<(u64, u64)>,
}

impl ScuProcess {
    /// Creates a process executing `SCU(q, s)` method calls forever on
    /// `object`.
    ///
    /// # Panics
    ///
    /// Panics if `s == 0` or if `s` exceeds the object's scan width + 1.
    pub fn new(id: ProcessId, object: ScuObject, q: usize, s: usize) -> Self {
        assert!(s >= 1, "scan region must have at least one step");
        assert!(
            s - 1 <= object.aux.len(),
            "object allocated for a narrower scan region"
        );
        ScuProcess {
            id,
            object,
            q,
            s,
            phase: if q > 0 {
                Phase::Preamble(0)
            } else {
                Phase::Scan(0)
            },
            scanned: 0,
            seq: 0,
            last_completed: None,
        }
    }

    /// The preamble length `q`.
    pub fn q(&self) -> usize {
        self.q
    }

    /// The scan length `s`.
    pub fn s(&self) -> usize {
        self.s
    }

    fn start_of_call(&self) -> Phase {
        if self.q > 0 {
            Phase::Preamble(0)
        } else {
            Phase::Scan(0)
        }
    }

    fn propose(&mut self) -> u64 {
        self.seq += 1;
        (self.seq << 16) | (self.id.index() as u64 & 0xFFFF)
    }

    /// The `(observed, proposed)` pair of the most recent completed
    /// method call: the CAS swung `R` from `observed` to `proposed`.
    /// Linearizability of the SCU object is exactly the chaining of
    /// these pairs across all processes (see `pwf-checker`).
    pub fn last_completed(&self) -> Option<(u64, u64)> {
        self.last_completed
    }

    /// Fingerprint of the behaviour-relevant local state: the phase
    /// program counter, the scanned value it will validate against,
    /// and the proposal sequence number (which feeds future proposals).
    pub fn fingerprint(&self) -> u64 {
        let phase = match self.phase {
            Phase::Preamble(k) => k as u64,
            Phase::Scan(j) => (1 << 20) | j as u64,
            Phase::Validate => 1 << 21,
        };
        pwf_sim::memory::fnv1a(0x517CC1B727220A95, &[phase, self.scanned, self.seq])
    }
}

impl Process for ScuProcess {
    fn step(&mut self, mem: &mut SharedMemory) -> StepOutcome {
        match self.phase {
            Phase::Preamble(k) => {
                // Auxiliary work: the paper allows updates to any
                // register except the decision register R.
                let _ = mem.read(self.object.scratch);
                self.phase = if k + 1 < self.q {
                    Phase::Preamble(k + 1)
                } else {
                    Phase::Scan(0)
                };
                StepOutcome::Ongoing
            }
            Phase::Scan(0) => {
                self.scanned = mem.read(self.object.decision);
                self.phase = if self.s > 1 {
                    Phase::Scan(1)
                } else {
                    Phase::Validate
                };
                StepOutcome::Ongoing
            }
            Phase::Scan(j) => {
                // Read R_j; the scanned values only matter through the
                // validity of `scanned`, which the CAS checks.
                let _ = mem.read(self.object.aux[j - 1]);
                self.phase = if j + 1 < self.s {
                    Phase::Scan(j + 1)
                } else {
                    Phase::Validate
                };
                StepOutcome::Ongoing
            }
            Phase::Validate => {
                let proposal = self.propose();
                if mem.cas(self.object.decision, self.scanned, proposal) {
                    self.last_completed = Some((self.scanned, proposal));
                    self.phase = self.start_of_call();
                    StepOutcome::Completed
                } else {
                    self.phase = Phase::Scan(0);
                    StepOutcome::Ongoing
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "scu"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwf_sim::executor::{run, RunConfig};
    use pwf_sim::scheduler::{AdversarialScheduler, UniformScheduler};

    fn fleet(mem: &mut SharedMemory, n: usize, q: usize, s: usize) -> Vec<Box<dyn Process>> {
        let obj = ScuObject::alloc(mem, s);
        (0..n)
            .map(|i| {
                Box::new(ScuProcess::new(ProcessId::new(i), obj.clone(), q, s)) as Box<dyn Process>
            })
            .collect()
    }

    #[test]
    fn solo_process_completes_every_q_plus_s_plus_one_steps() {
        let mut mem = SharedMemory::new();
        let mut ps = fleet(&mut mem, 1, 3, 2);
        let mut sched = AdversarialScheduler::solo(ProcessId::new(0));
        let exec = run(&mut ps, &mut sched, &mut mem, &RunConfig::new(60));
        // One call = 3 preamble + 2 scan + 1 CAS = 6 steps.
        assert_eq!(exec.total_completions(), 10);
        assert_eq!(exec.completion_times(ProcessId::new(0))[0], 6);
    }

    #[test]
    fn scu01_solo_completes_every_two_steps() {
        let mut mem = SharedMemory::new();
        let mut ps = fleet(&mut mem, 1, 0, 1);
        let mut sched = AdversarialScheduler::solo(ProcessId::new(0));
        let exec = run(&mut ps, &mut sched, &mut mem, &RunConfig::new(100));
        assert_eq!(exec.total_completions(), 50);
    }

    #[test]
    fn contended_processes_all_make_progress_under_uniform() {
        let mut mem = SharedMemory::new();
        let mut ps = fleet(&mut mem, 8, 0, 1);
        let mut sched = UniformScheduler::new();
        let exec = run(
            &mut ps,
            &mut sched,
            &mut mem,
            &RunConfig::new(100_000).seed(7),
        );
        for i in 0..8 {
            assert!(
                exec.process_completions[i] > 100,
                "process {i} starved: {:?}",
                exec.process_completions
            );
        }
    }

    #[test]
    fn round_robin_adversary_starves_the_second_process() {
        // The classic lock-free-but-not-wait-free schedule: under
        // round-robin, p0 reads, p1 reads, p0's CAS succeeds, p1's CAS
        // fails — forever. Minimal progress holds (p0 completes every
        // round) but p1 starves: exactly what a θ = 0 adversary can do
        // and a stochastic scheduler cannot (Theorem 3).
        let mut mem = SharedMemory::new();
        let mut ps = fleet(&mut mem, 2, 0, 1);
        let mut sched = AdversarialScheduler::round_robin(2);
        let exec = run(&mut ps, &mut sched, &mut mem, &RunConfig::new(1_000));
        assert!(exec.process_completions[0] > 200);
        assert_eq!(exec.process_completions[1], 0);
    }

    #[test]
    fn decision_register_only_changed_by_successful_cas() {
        let mut mem = SharedMemory::new();
        let obj = ScuObject::alloc(&mut mem, 1);
        let mut ps: Vec<Box<dyn Process>> = (0..3)
            .map(|i| {
                Box::new(ScuProcess::new(ProcessId::new(i), obj.clone(), 0, 1)) as Box<dyn Process>
            })
            .collect();
        let mut sched = UniformScheduler::new();
        let exec = run(
            &mut ps,
            &mut sched,
            &mut mem,
            &RunConfig::new(10_000).seed(3),
        );
        // Final value's embedded pid is a real process, and the total
        // number of completions is consistent with a changed register.
        let v = mem.peek(obj.decision());
        assert!((v & 0xFFFF) < 3);
        assert!(exec.total_completions() > 0);
    }

    #[test]
    fn proposals_are_unique_across_processes() {
        let mut p0 = {
            let mut mem = SharedMemory::new();
            let obj = ScuObject::alloc(&mut mem, 1);
            ScuProcess::new(ProcessId::new(0), obj.clone(), 0, 1)
        };
        let mut p1 = {
            let mut mem = SharedMemory::new();
            let obj = ScuObject::alloc(&mut mem, 1);
            ScuProcess::new(ProcessId::new(1), obj.clone(), 0, 1)
        };
        let a: Vec<u64> = (0..100).map(|_| p0.propose()).collect();
        let b: Vec<u64> = (0..100).map(|_| p1.propose()).collect();
        for x in &a {
            assert!(!b.contains(x));
        }
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_scan_length_panics() {
        let mut mem = SharedMemory::new();
        let _ = ScuObject::alloc(&mut mem, 0);
    }

    #[test]
    fn preamble_never_touches_decision_register() {
        let mut mem = SharedMemory::new();
        let obj = ScuObject::alloc(&mut mem, 1);
        let initial = mem.peek(obj.decision());
        let mut p = ScuProcess::new(ProcessId::new(0), obj.clone(), 5, 1);
        for _ in 0..5 {
            assert_eq!(p.step(&mut mem), StepOutcome::Ongoing);
            assert_eq!(mem.peek(obj.decision()), initial);
        }
    }
}
