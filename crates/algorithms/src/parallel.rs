//! Parallel code (paper, Section 6.2, Algorithm 4): a method call that
//! completes after the process executes `q` steps, irrespective of any
//! concurrent activity. This is `SCU(q, 0)` — the preamble component
//! of the class, analyzed in isolation (Lemma 11: system latency `q`,
//! individual latency `n·q`).

use pwf_sim::memory::{RegisterId, SharedMemory};
use pwf_sim::process::{Process, StepOutcome};

/// A process executing `q`-step contention-free method calls forever.
///
/// # Examples
///
/// ```
/// use pwf_algorithms::parallel::ParallelProcess;
/// use pwf_sim::memory::SharedMemory;
/// use pwf_sim::process::Process;
///
/// let mut mem = SharedMemory::new();
/// let r = mem.alloc(0);
/// let mut p = ParallelProcess::new(r, 3);
/// assert!(!p.step(&mut mem).is_completed());
/// assert!(!p.step(&mut mem).is_completed());
/// assert!(p.step(&mut mem).is_completed());
/// ```
#[derive(Debug, Clone)]
pub struct ParallelProcess {
    scratch: RegisterId,
    q: usize,
    counter: usize,
}

impl ParallelProcess {
    /// Creates a parallel-code process with method calls of `q` steps,
    /// touching only `scratch`.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`.
    pub fn new(scratch: RegisterId, q: usize) -> Self {
        assert!(q > 0, "method calls must take at least one step");
        ParallelProcess {
            scratch,
            q,
            counter: 0,
        }
    }

    /// The method-call length `q`.
    pub fn q(&self) -> usize {
        self.q
    }

    /// The current step counter `C_i ∈ {0, …, q−1}`.
    pub fn counter(&self) -> usize {
        self.counter
    }
}

impl Process for ParallelProcess {
    fn step(&mut self, mem: &mut SharedMemory) -> StepOutcome {
        let _ = mem.read(self.scratch);
        self.counter += 1;
        if self.counter == self.q {
            self.counter = 0;
            StepOutcome::Completed
        } else {
            StepOutcome::Ongoing
        }
    }

    fn name(&self) -> &'static str {
        "parallel"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwf_sim::executor::{run, RunConfig};
    use pwf_sim::process::ProcessId;
    use pwf_sim::scheduler::UniformScheduler;
    use pwf_sim::stats::{individual_latency, system_latency};

    #[test]
    fn completes_exactly_every_q_steps() {
        let mut mem = SharedMemory::new();
        let r = mem.alloc(0);
        let mut p = ParallelProcess::new(r, 4);
        let mut completions = 0;
        for _ in 0..40 {
            if p.step(&mut mem).is_completed() {
                completions += 1;
            }
        }
        assert_eq!(completions, 10);
    }

    #[test]
    fn lemma_11_system_latency_is_q() {
        let (n, q, steps) = (8, 5, 400_000);
        let mut mem = SharedMemory::new();
        let r = mem.alloc(0);
        let mut ps: Vec<Box<dyn Process>> = (0..n)
            .map(|_| Box::new(ParallelProcess::new(r, q)) as Box<dyn Process>)
            .collect();
        let exec = run(
            &mut ps,
            &mut UniformScheduler::new(),
            &mut mem,
            &RunConfig::new(steps).seed(11),
        );
        let w = system_latency(&exec).unwrap().mean;
        assert!((w - q as f64).abs() < 0.05, "W = {w}, expected {q}");
    }

    #[test]
    fn lemma_11_individual_latency_is_nq() {
        let (n, q, steps) = (4, 3, 600_000);
        let mut mem = SharedMemory::new();
        let r = mem.alloc(0);
        let mut ps: Vec<Box<dyn Process>> = (0..n)
            .map(|_| Box::new(ParallelProcess::new(r, q)) as Box<dyn Process>)
            .collect();
        let exec = run(
            &mut ps,
            &mut UniformScheduler::new(),
            &mut mem,
            &RunConfig::new(steps).seed(13),
        );
        let wi = individual_latency(&exec, ProcessId::new(0)).unwrap().mean;
        let expected = (n * q) as f64;
        assert!(
            (wi - expected).abs() / expected < 0.05,
            "W_i = {wi}, expected {expected}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_q_panics() {
        let mut mem = SharedMemory::new();
        let r = mem.alloc(0);
        let _ = ParallelProcess::new(r, 0);
    }
}
