//! Algorithm 1 (paper, Section 4): an *unbounded* lock-free algorithm
//! that is **not** wait-free with high probability (Lemma 2).
//!
//! A process that loses the CAS on the shared counter backs off for
//! `n² · v` register reads, where `v` is the counter value it
//! observed. Backoffs therefore grow without bound, and with
//! probability at least `1 − 2e^{−n}` the first winner keeps winning
//! forever while every other process starves — demonstrating that
//! Theorem 3's *bounded* minimal-progress hypothesis is necessary.

use pwf_sim::memory::{RegisterId, SharedMemory};
use pwf_sim::process::{Process, StepOutcome};

/// Registers of the unbounded-backoff object: the CAS counter `C` and
/// the read-only register `R` spun on during backoff.
#[derive(Debug, Clone, Copy)]
pub struct UnboundedObject {
    counter: RegisterId,
    spin: RegisterId,
}

impl UnboundedObject {
    /// Allocates the object's registers.
    pub fn alloc(mem: &mut SharedMemory) -> Self {
        UnboundedObject {
            counter: mem.alloc(0),
            spin: mem.alloc(0),
        }
    }

    /// The shared CAS counter `C`.
    pub fn counter(&self) -> RegisterId {
        self.counter
    }
}

/// One process executing Algorithm 1 in an infinite loop.
#[derive(Debug, Clone)]
pub struct UnboundedProcess {
    object: UnboundedObject,
    n: u64,
    /// Local view `v` of the counter.
    v: u64,
    /// Remaining backoff reads before the next CAS attempt.
    backoff_left: u64,
    /// Largest backoff ever entered, for observability.
    max_backoff: u64,
}

impl UnboundedProcess {
    /// Creates a process for a system of `n` processes (the backoff
    /// schedule depends on `n`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(object: UnboundedObject, n: usize) -> Self {
        assert!(n > 0, "need at least one process");
        UnboundedProcess {
            object,
            n: n as u64,
            v: 0,
            backoff_left: 0,
            max_backoff: 0,
        }
    }

    /// The largest backoff (in reads) this process has entered.
    pub fn max_backoff(&self) -> u64 {
        self.max_backoff
    }
}

impl Process for UnboundedProcess {
    fn step(&mut self, mem: &mut SharedMemory) -> StepOutcome {
        if self.backoff_left > 0 {
            let _ = mem.read(self.object.spin);
            self.backoff_left -= 1;
            return StepOutcome::Ongoing;
        }
        let val = mem.cas_augmented(self.object.counter, self.v, self.v + 1);
        if val == self.v {
            self.v += 1;
            StepOutcome::Completed
        } else {
            // Lost the race: back off for n²·v reads with the fresh
            // value v — the unbounded penalty of Algorithm 1.
            self.v = val;
            self.backoff_left = self.n * self.n * self.v;
            self.max_backoff = self.max_backoff.max(self.backoff_left);
            StepOutcome::Ongoing
        }
    }

    fn name(&self) -> &'static str {
        "unbounded-backoff"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwf_sim::executor::{run, RunConfig};
    use pwf_sim::process::ProcessId;
    use pwf_sim::scheduler::{AdversarialScheduler, UniformScheduler};

    fn fleet(mem: &mut SharedMemory, n: usize) -> Vec<Box<dyn Process>> {
        let obj = UnboundedObject::alloc(mem);
        (0..n)
            .map(|_| Box::new(UnboundedProcess::new(obj, n)) as Box<dyn Process>)
            .collect()
    }

    #[test]
    fn solo_process_always_wins() {
        let mut mem = SharedMemory::new();
        let mut ps = fleet(&mut mem, 1);
        let exec = run(
            &mut ps,
            &mut AdversarialScheduler::solo(ProcessId::new(0)),
            &mut mem,
            &RunConfig::new(100),
        );
        assert_eq!(exec.total_completions(), 100);
    }

    #[test]
    fn is_lock_free_someone_always_progresses() {
        // Minimal progress: the counter keeps increasing under any of
        // our schedulers.
        let mut mem = SharedMemory::new();
        let obj = UnboundedObject::alloc(&mut mem);
        let mut ps: Vec<Box<dyn Process>> = (0..4)
            .map(|_| Box::new(UnboundedProcess::new(obj, 4)) as Box<dyn Process>)
            .collect();
        let exec = run(
            &mut ps,
            &mut UniformScheduler::new(),
            &mut mem,
            &RunConfig::new(100_000).seed(29),
        );
        assert!(exec.total_completions() > 0);
        assert_eq!(mem.peek(obj.counter()), exec.total_completions());
    }

    #[test]
    fn lemma_2_losers_starve_with_high_probability() {
        // With n = 8 processes, after the first win the winner keeps
        // winning w.h.p.; completions concentrate on one process.
        let n = 8;
        let mut mem = SharedMemory::new();
        let mut ps = fleet(&mut mem, n);
        let exec = run(
            &mut ps,
            &mut UniformScheduler::new(),
            &mut mem,
            &RunConfig::new(500_000).seed(31),
        );
        let max = *exec.process_completions.iter().max().unwrap();
        let total: u64 = exec.process_completions.iter().sum();
        assert!(total > 0);
        assert!(
            max as f64 / total as f64 > 0.95,
            "completions should concentrate on one process: {:?}",
            exec.process_completions
        );
    }

    #[test]
    fn backoff_grows_with_counter_value() {
        let mut mem = SharedMemory::new();
        let obj = UnboundedObject::alloc(&mut mem);
        let n = 3;
        let mut winner = UnboundedProcess::new(obj, n);
        let mut loser = UnboundedProcess::new(obj, n);
        // Winner takes 5 wins; loser then fails once and must back off
        // n² · 5 reads.
        for _ in 0..5 {
            assert!(winner.step(&mut mem).is_completed());
        }
        assert!(!loser.step(&mut mem).is_completed());
        assert_eq!(loser.max_backoff(), (n * n) as u64 * 5);
    }
}
