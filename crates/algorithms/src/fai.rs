//! Lock-free fetch-and-increment via *augmented* CAS (paper,
//! Section 7, Algorithm 5).
//!
//! The augmented CAS returns the current register value, so a failed
//! attempt doubles as the read: every attempt is a single shared-memory
//! step, and a process whose local `v` matches `R` wins immediately
//! when scheduled. Section 7 shows the expected system steps between
//! wins is `W ≤ 2√n` (Lemma 12, asymptotically `√(πn/2)` — the
//! Ramanujan Q function), and `W_i = n·W` by lifting (Lemma 14).

use pwf_sim::memory::{RegisterId, SharedMemory};
use pwf_sim::process::{Process, StepOutcome};

/// A process running `fetch-and-inc` operations forever on a shared
/// counter register.
///
/// The local value `v` persists across invocations: after a win the
/// process knows the value it just wrote, matching the paper's chain
/// model where the winner is the unique process in the `Current`
/// state.
///
/// # Examples
///
/// ```
/// use pwf_algorithms::fai::FaiProcess;
/// use pwf_sim::memory::SharedMemory;
/// use pwf_sim::process::Process;
///
/// let mut mem = SharedMemory::new();
/// let counter = mem.alloc(0);
/// let mut p = FaiProcess::new(counter);
/// // Solo, every step is a successful increment.
/// assert!(p.step(&mut mem).is_completed());
/// assert!(p.step(&mut mem).is_completed());
/// assert_eq!(mem.peek(counter), 2);
/// ```
#[derive(Debug, Clone)]
pub struct FaiProcess {
    counter: RegisterId,
    /// The process's view of the counter (`v` in Algorithm 5).
    v: u64,
    /// Number of successful increments, for verification.
    wins: u64,
    /// Values returned by successful increments, when collection is on.
    collected: Option<Vec<u64>>,
}

impl FaiProcess {
    /// Creates a fetch-and-increment process on `counter`.
    pub fn new(counter: RegisterId) -> Self {
        FaiProcess {
            counter,
            v: 0,
            wins: 0,
            collected: None,
        }
    }

    /// Enables collection of the values returned by successful
    /// increments (each fetch-and-inc returns the pre-increment
    /// value).
    #[must_use]
    pub fn collecting(mut self) -> Self {
        self.collected = Some(Vec::new());
        self
    }

    /// Number of successful increments so far.
    pub fn wins(&self) -> u64 {
        self.wins
    }

    /// Values returned by this process's successful operations, if
    /// collection was enabled.
    pub fn collected(&self) -> Option<&[u64]> {
        self.collected.as_deref()
    }

    /// Whether this process currently holds the current value of the
    /// register (the `Current` extended local state of Section 7.1).
    pub fn has_current_value(&self, mem: &SharedMemory) -> bool {
        mem.peek(self.counter) == self.v
    }

    /// The value returned by the most recent successful increment
    /// (`None` before the first win). Used by `pwf-checker` to record
    /// operation histories without enabling full collection.
    ///
    /// Only meaningful *immediately after* a step that returned
    /// [`StepOutcome::Completed`]: a later failed attempt refreshes the
    /// local view `v` that the win value is derived from.
    pub fn last_win(&self) -> Option<u64> {
        if self.wins == 0 {
            None
        } else {
            // A win at counter value k returned k, then set v = k + 1.
            Some(self.v - 1)
        }
    }

    /// Fingerprint of the behaviour-relevant local state. Two
    /// `FaiProcess` values with equal fingerprints behave identically
    /// on identical memory: the local view `v` is the entire state
    /// machine (wins and collection only record history).
    pub fn fingerprint(&self) -> u64 {
        pwf_sim::memory::fnv1a(0x9E3779B97F4A7C15, &[self.v])
    }
}

impl Process for FaiProcess {
    fn step(&mut self, mem: &mut SharedMemory) -> StepOutcome {
        let old = self.v;
        let ret = mem.cas_augmented(self.counter, old, old + 1);
        if ret == old {
            // Success: we hold the (new) current value.
            self.v = old + 1;
            self.wins += 1;
            if let Some(c) = self.collected.as_mut() {
                c.push(old);
            }
            StepOutcome::Completed
        } else {
            // Failure: the augmented CAS told us the current value.
            self.v = ret;
            StepOutcome::Ongoing
        }
    }

    fn name(&self) -> &'static str {
        "fetch-and-inc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwf_sim::executor::{run, RunConfig};
    use pwf_sim::process::ProcessId;
    use pwf_sim::scheduler::{AdversarialScheduler, UniformScheduler};
    use pwf_sim::stats::system_latency;

    fn fleet(mem: &mut SharedMemory, n: usize) -> (RegisterId, Vec<Box<dyn Process>>) {
        let counter = mem.alloc(0);
        let ps = (0..n)
            .map(|_| Box::new(FaiProcess::new(counter).collecting()) as Box<dyn Process>)
            .collect();
        (counter, ps)
    }

    #[test]
    fn counter_equals_total_completions() {
        let mut mem = SharedMemory::new();
        let (counter, mut ps) = fleet(&mut mem, 6);
        let exec = run(
            &mut ps,
            &mut UniformScheduler::new(),
            &mut mem,
            &RunConfig::new(50_000).seed(5),
        );
        assert_eq!(mem.peek(counter), exec.total_completions());
    }

    #[test]
    fn returned_values_are_unique_and_dense() {
        // Fetch-and-increment linearizability: across all processes the
        // returned values are exactly 0..total, with no duplicates.
        let mut mem = SharedMemory::new();
        let counter = mem.alloc(0);
        let mut procs: Vec<FaiProcess> = (0..4)
            .map(|_| FaiProcess::new(counter).collecting())
            .collect();
        // Drive manually with a deterministic irregular pattern.
        let pattern = [0usize, 1, 1, 2, 3, 0, 2, 2, 1, 3, 3, 3, 0, 1, 2];
        for step in 0..30_000 {
            let who = pattern[step % pattern.len()];
            let _ = procs[who].step(&mut mem);
        }
        let mut all: Vec<u64> = procs
            .iter()
            .flat_map(|p| p.collected().unwrap().iter().copied())
            .collect();
        all.sort_unstable();
        let expected: Vec<u64> = (0..all.len() as u64).collect();
        assert_eq!(all, expected, "returned values must be 0..k with no gaps");
        assert_eq!(mem.peek(counter), all.len() as u64);
    }

    #[test]
    fn round_robin_one_winner_per_round() {
        // Under round-robin on n processes, exactly one CAS per round
        // succeeds (the process whose v matches), so completions ≈
        // steps / n.
        let n = 4;
        let mut mem = SharedMemory::new();
        let (_, mut ps) = fleet(&mut mem, n);
        let exec = run(
            &mut ps,
            &mut AdversarialScheduler::round_robin(n),
            &mut mem,
            &RunConfig::new(4_000),
        );
        let per_round = exec.total_completions() as f64 / (4_000.0 / n as f64);
        assert!(
            (per_round - 1.0).abs() < 0.01,
            "wins per round = {per_round}"
        );
    }

    #[test]
    fn system_latency_grows_sublinearly() {
        // Lemma 12: W ≤ 2√n. Check W for n=16 stays well below n/2
        // (the naive linear guess) and within 2√n.
        let n = 16;
        let mut mem = SharedMemory::new();
        let (_, mut ps) = fleet(&mut mem, n);
        let exec = run(
            &mut ps,
            &mut UniformScheduler::new(),
            &mut mem,
            &RunConfig::new(500_000).seed(17),
        );
        let w = system_latency(&exec).unwrap().mean;
        let bound = 2.0 * (n as f64).sqrt();
        assert!(w < bound, "W = {w} exceeds 2√n = {bound}");
        assert!(w > 1.0, "W = {w} suspiciously small");
    }

    #[test]
    fn all_processes_complete_under_uniform() {
        let n = 8;
        let mut mem = SharedMemory::new();
        let (_, mut ps) = fleet(&mut mem, n);
        let exec = run(
            &mut ps,
            &mut UniformScheduler::new(),
            &mut mem,
            &RunConfig::new(100_000).seed(23),
        );
        for i in 0..n {
            assert!(exec.process_completions[i] > 0, "process {i} starved");
        }
        // Fairness (Lemma 14): each process completes ≈ total/n.
        let mean = exec.total_completions() as f64 / n as f64;
        for i in 0..n {
            let c = exec.process_completions[i] as f64;
            assert!(
                (c - mean).abs() / mean < 0.25,
                "process {i} completions {c} far from mean {mean}"
            );
        }
    }

    #[test]
    fn completion_time_of_process_zero_finite_on_adversarial_solo() {
        // Lock-free: a solo schedule gives maximal progress.
        let mut mem = SharedMemory::new();
        let (_, mut ps) = fleet(&mut mem, 3);
        let exec = run(
            &mut ps,
            &mut AdversarialScheduler::solo(ProcessId::new(2)),
            &mut mem,
            &RunConfig::new(100),
        );
        assert_eq!(exec.process_completions[2], 100);
    }
}
