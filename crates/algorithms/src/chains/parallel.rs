//! Exact chains for parallel code (paper, Section 6.2, Lemmas 10–11).
//!
//! Individual chain `M_I`: states are counter vectors
//! `(C_1, …, C_n) ∈ {0, …, q−1}ⁿ`; a step increments one counter mod
//! `q`, and a wrap is a completed operation. Its stationary
//! distribution is uniform, giving `W_i = n·q` and `W = q`.
//!
//! System chain `M_S`: states are the occupancy vectors
//! `(v_0, …, v_{q−1})` with `Σ v_j = n`.

use pwf_markov::chain::{ChainError, MarkovChain};
use pwf_markov::sparse::{SparseChain, SparseChainBuilder};
use pwf_markov::stationary::stationary_distribution;

use super::latency_from_success_probabilities;
use super::scu::LatencyError;

/// A state of the individual chain: per-process step counters.
pub type CounterState = Vec<u8>;

/// A state of the system chain: `v_j` = number of processes with
/// counter value `j`.
pub type OccupancyState = Vec<u8>;

/// Bound on `qⁿ`, the individual-chain state count.
pub const MAX_INDIVIDUAL_STATES: usize = 20_000;

/// The lifting map of Lemma 10: counter vector ↦ occupancy vector.
pub fn lift(state: &CounterState, q: usize) -> OccupancyState {
    let mut v = vec![0u8; q];
    for &c in state {
        v[c as usize] += 1;
    }
    v
}

/// Builds the individual chain `M_I` for `n` processes and `q`-step
/// method calls.
///
/// # Errors
///
/// Propagates chain-validation errors (none occur for valid inputs).
///
/// # Panics
///
/// Panics if `n == 0`, `q == 0`, `q > 255`, or `qⁿ` exceeds
/// [`MAX_INDIVIDUAL_STATES`].
pub fn individual_chain(n: usize, q: usize) -> Result<MarkovChain<CounterState>, ChainError> {
    sparse_individual_chain(n, q)?.to_dense()
}

/// Builds the individual chain in sparse (CSR) form — the primary
/// representation; [`individual_chain`] is its dense conversion.
///
/// # Errors
///
/// Propagates chain-validation errors (none occur for valid inputs).
///
/// # Panics
///
/// Panics if `n == 0`, `q == 0`, `q > 255`, or `qⁿ` exceeds
/// [`MAX_INDIVIDUAL_STATES`].
pub fn sparse_individual_chain(
    n: usize,
    q: usize,
) -> Result<SparseChain<CounterState>, ChainError> {
    assert!(n >= 1 && q >= 1, "need n ≥ 1 and q ≥ 1");
    assert!(q <= 255, "q must fit in a byte");
    let states_count = (q as f64).powi(n as i32);
    assert!(
        states_count <= MAX_INDIVIDUAL_STATES as f64,
        "q^n = {states_count} exceeds {MAX_INDIVIDUAL_STATES}"
    );

    // Enumerate {0..q−1}^n.
    let mut states: Vec<CounterState> = vec![vec![0u8; n]];
    let mut current = vec![0u8; n];
    'outer: loop {
        let mut i = 0;
        loop {
            current[i] += 1;
            if (current[i] as usize) < q {
                break;
            }
            current[i] = 0;
            i += 1;
            if i == n {
                break 'outer;
            }
        }
        states.push(current.clone());
    }

    let p = 1.0 / n as f64;
    let mut b = SparseChainBuilder::new();
    for s in &states {
        b.state(s.clone());
    }
    for s in &states {
        for i in 0..n {
            let mut next = s.clone();
            next[i] = ((next[i] as usize + 1) % q) as u8;
            b.transition(s.clone(), next, p);
        }
    }
    b.build()
}

/// Builds the system chain `M_S`: occupancy vectors of `n` processes
/// over `q` counter values.
///
/// # Errors
///
/// Propagates chain-validation errors (none occur for valid inputs).
///
/// # Panics
///
/// Panics if `n == 0`, `q == 0`, or `n > 255`.
pub fn system_chain(n: usize, q: usize) -> Result<MarkovChain<OccupancyState>, ChainError> {
    sparse_system_chain(n, q)?.to_dense()
}

/// Builds the system chain in sparse (CSR) form — the primary
/// representation (`C(n+q−1, q−1)` states, ≤ `q` transitions each);
/// [`system_chain`] is its dense conversion.
///
/// # Errors
///
/// Propagates chain-validation errors (none occur for valid inputs).
///
/// # Panics
///
/// Panics if `n == 0`, `q == 0`, or `n > 255`.
pub fn sparse_system_chain(n: usize, q: usize) -> Result<SparseChain<OccupancyState>, ChainError> {
    assert!(n >= 1 && q >= 1, "need n ≥ 1 and q ≥ 1");
    assert!(n <= 255, "n must fit in a byte");

    // Enumerate compositions of n into q non-negative parts.
    fn compositions(n: usize, q: usize, acc: &mut Vec<u8>, out: &mut Vec<OccupancyState>) {
        if q == 1 {
            let mut full = acc.clone();
            full.push(n as u8);
            out.push(full);
            return;
        }
        for k in 0..=n {
            acc.push(k as u8);
            compositions(n - k, q - 1, acc, out);
            acc.pop();
        }
    }
    let mut states = Vec::new();
    compositions(n, q, &mut Vec::new(), &mut states);

    let nf = n as f64;
    let mut b = SparseChainBuilder::new();
    for s in &states {
        b.state(s.clone());
    }
    for s in &states {
        for j in 0..q {
            if s[j] == 0 {
                continue;
            }
            let mut next = s.clone();
            next[j] -= 1;
            next[(j + 1) % q] += 1;
            b.transition(s.clone(), next, s[j] as f64 / nf);
        }
    }
    b.build()
}

/// Exact system latency of parallel code from the system chain: a
/// step completes an operation iff it advances a counter at `q − 1`.
/// Lemma 11: this is exactly `q`.
///
/// # Errors
///
/// Propagates chain and stationary errors.
pub fn exact_system_latency(n: usize, q: usize) -> Result<f64, LatencyError> {
    let chain = system_chain(n, q)?;
    let pi = stationary_distribution(&chain)?;
    let succ: Vec<f64> = chain
        .states()
        .iter()
        .map(|s| s[q - 1] as f64 / n as f64)
        .collect();
    Ok(latency_from_success_probabilities(&pi, &succ))
}

/// Exact individual latency of process `i` from the individual chain.
/// Lemma 11: this is exactly `n·q`.
///
/// # Errors
///
/// Propagates chain and stationary errors.
///
/// # Panics
///
/// Panics if `i >= n` or the individual chain is too large.
pub fn exact_individual_latency(n: usize, q: usize, i: usize) -> Result<f64, LatencyError> {
    assert!(i < n, "process index out of range");
    let chain = individual_chain(n, q)?;
    let pi = stationary_distribution(&chain)?;
    let succ: Vec<f64> = chain
        .states()
        .iter()
        .map(|s| {
            if s[i] as usize == q - 1 {
                1.0 / n as f64
            } else {
                0.0
            }
        })
        .collect();
    Ok(latency_from_success_probabilities(&pi, &succ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwf_markov::lifting::verify_lifting;
    use pwf_markov::structure::analyze;

    #[test]
    fn individual_chain_has_q_pow_n_states() {
        assert_eq!(individual_chain(3, 4).unwrap().len(), 64);
        assert_eq!(individual_chain(2, 5).unwrap().len(), 25);
    }

    #[test]
    fn system_chain_has_binomial_states() {
        // C(n+q−1, q−1) compositions.
        assert_eq!(system_chain(4, 3).unwrap().len(), 15);
        assert_eq!(system_chain(5, 2).unwrap().len(), 6);
    }

    #[test]
    fn individual_stationary_is_uniform() {
        let c = individual_chain(3, 3).unwrap();
        let pi = stationary_distribution(&c).unwrap();
        let u = 1.0 / c.len() as f64;
        for p in pi {
            assert!((p - u).abs() < 1e-10);
        }
    }

    #[test]
    fn lemma_10_lifting_holds() {
        // Deviation note: the paper calls M_I and M_S ergodic, but the
        // counter sum advances by exactly 1 mod q each step, so for
        // q ≥ 2 both chains have period q. They are irreducible, which
        // is what the stationary analysis uses.
        for (n, q) in [(2, 3), (3, 3), (4, 2), (2, 5)] {
            let ind = individual_chain(n, q).unwrap();
            let sys = system_chain(n, q).unwrap();
            let structure = analyze(&ind);
            assert!(structure.irreducible, "individual n={n} q={q}");
            assert_eq!(structure.period, q, "individual n={n} q={q}");
            let report = verify_lifting(&ind, &sys, |s| lift(s, q), 1e-8)
                .unwrap_or_else(|e| panic!("lifting failed for n={n}, q={q}: {e}"));
            assert!(report.flow_residual < 1e-9);
        }
    }

    #[test]
    fn lemma_11_system_latency_is_q() {
        for (n, q) in [(2, 3), (4, 4), (5, 2), (3, 6)] {
            let w = exact_system_latency(n, q).unwrap();
            assert!((w - q as f64).abs() < 1e-8, "n={n}, q={q}: W={w}");
        }
    }

    #[test]
    fn lemma_11_individual_latency_is_nq() {
        for (n, q) in [(2, 3), (3, 3), (4, 2)] {
            let wi = exact_individual_latency(n, q, 0).unwrap();
            assert!((wi - (n * q) as f64).abs() < 1e-8, "n={n}, q={q}: W_i={wi}");
        }
    }

    #[test]
    fn kernel_condition_holds_on_sparse_chains() {
        use pwf_markov::lifting::kernel_residual_sparse;
        for (n, q) in [(2usize, 3usize), (3, 3), (4, 2)] {
            let ind = sparse_individual_chain(n, q).unwrap();
            let sys = sparse_system_chain(n, q).unwrap();
            let r = kernel_residual_sparse(&ind, &sys, |s| lift(s, q)).unwrap();
            assert!(r < 1e-12, "n={n} q={q}: kernel residual {r}");
        }
    }

    #[test]
    fn q_one_degenerate_case() {
        // q = 1: every step completes; W = 1, W_i = n.
        let w = exact_system_latency(4, 1).unwrap();
        assert!((w - 1.0).abs() < 1e-12);
        let wi = exact_individual_latency(4, 1, 2).unwrap();
        assert!((wi - 4.0).abs() < 1e-12);
    }

    #[test]
    fn lift_counts_occupancy() {
        assert_eq!(lift(&vec![0, 2, 2, 1], 3), vec![1, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_chain_panics() {
        let _ = individual_chain(10, 10);
    }
}
