//! Exact chains for the lock-based counter baseline (extension E15),
//! in the same individual/system/lifting format as the paper's
//! algorithms.
//!
//! System chain: the lock is `Free`, or `Held(r)` with `r` remaining
//! holder steps (critical section of `cs` steps plus the unlock, so
//! `r ∈ {1, …, cs+1}`). From `Free` every scheduled process acquires
//! (probability 1); from `Held(r)` the holder advances with
//! probability `1/n` and spinners change nothing. The closed form
//! `W = 1 + (cs+1)·n` drops out of the stationary distribution.
//!
//! Individual chain: additionally tracks *which* process holds the
//! lock; collapsing it through "forget the identity" is a lifting in
//! exactly the sense of Lemma 5.

use pwf_markov::chain::{ChainError, MarkovChain};
use pwf_markov::operator::TransitionOperator;
use pwf_markov::sparse::{SparseChain, SparseChainBuilder};
use pwf_markov::stationary::stationary_distribution;

use super::latency_from_success_probabilities;
use super::scu::LatencyError;

/// System-chain state of the lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockState {
    /// Nobody holds the lock.
    Free,
    /// Someone holds it with `r` holder steps remaining (the last is
    /// the unlock, whose completion is a success).
    Held(u8),
}

/// Individual-chain state: as [`LockState`], but naming the holder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockStateWho {
    /// Nobody holds the lock.
    Free,
    /// Process `holder` has `r` steps remaining.
    Held {
        /// Index of the holder.
        holder: u8,
        /// Remaining holder steps.
        remaining: u8,
    },
}

/// The lifting map: forget the holder's identity.
pub fn lift(state: &LockStateWho) -> LockState {
    match *state {
        LockStateWho::Free => LockState::Free,
        LockStateWho::Held { remaining, .. } => LockState::Held(remaining),
    }
}

/// Builds the system chain for `n` processes and a `cs`-step critical
/// section.
///
/// # Errors
///
/// Propagates chain-validation errors (none occur for valid inputs).
///
/// # Panics
///
/// Panics if `n == 0`, `cs == 0`, or `cs > 254`.
pub fn system_chain(n: usize, cs: usize) -> Result<MarkovChain<LockState>, ChainError> {
    sparse_system_chain(n, cs)?.to_dense()
}

/// Builds the system chain in sparse (CSR) form — the primary
/// representation; [`system_chain`] is its dense conversion.
///
/// # Errors
///
/// Propagates chain-validation errors (none occur for valid inputs).
///
/// # Panics
///
/// Panics if `n == 0`, `cs == 0`, or `cs > 254`.
pub fn sparse_system_chain(n: usize, cs: usize) -> Result<SparseChain<LockState>, ChainError> {
    assert!(n >= 1 && cs >= 1, "need n ≥ 1 and cs ≥ 1");
    assert!(cs <= 254, "critical section must fit in a byte");
    let nf = n as f64;
    let total = (cs + 1) as u8; // critical steps + unlock
    let mut b = SparseChainBuilder::new();
    b.state(LockState::Free);
    for r in 1..=total {
        b.state(LockState::Held(r));
    }
    // Free: whoever is scheduled acquires.
    b.transition(LockState::Free, LockState::Held(total), 1.0);
    for r in 1..=total {
        let next = if r == 1 {
            LockState::Free
        } else {
            LockState::Held(r - 1)
        };
        b.transition(LockState::Held(r), next, 1.0 / nf);
        if n > 1 {
            // A spinner steps: nothing changes.
            b.transition(LockState::Held(r), LockState::Held(r), 1.0 - 1.0 / nf);
        }
    }
    b.build()
}

/// The matrix-free transition operator of the lock system chain:
/// `Free` interns at index 0 and `Held(r)` at index `r`, so rows come
/// straight from the closed-form dynamics — `Free → Held(cs+1)` with
/// probability 1; `Held(r)` advances to index `r − 1` with probability
/// `1/n` (for `r = 1` that *is* `Free`) and self-loops otherwise.
/// Rows reproduce [`sparse_system_chain`]'s CSR rows bitwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockSystemOperator {
    n: usize,
    cs: usize,
}

impl LockSystemOperator {
    /// Operator for `n` processes and a `cs`-step critical section.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `cs == 0`, or `cs > 254` (the bounds of
    /// [`sparse_system_chain`]).
    pub fn new(n: usize, cs: usize) -> Self {
        assert!(n >= 1 && cs >= 1, "need n ≥ 1 and cs ≥ 1");
        assert!(cs <= 254, "critical section must fit in a byte");
        LockSystemOperator { n, cs }
    }

    /// The state at a given index (inverse of the interning order).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    pub fn state_of(&self, idx: usize) -> LockState {
        assert!(idx < self.cs + 2, "index {idx} out of bounds");
        if idx == 0 {
            LockState::Free
        } else {
            LockState::Held(idx as u8)
        }
    }
}

impl TransitionOperator for LockSystemOperator {
    fn len(&self) -> usize {
        self.cs + 2
    }

    fn row_into(&self, i: usize, row: &mut Vec<(u32, f64)>) {
        assert!(i < self.len(), "row {i} out of bounds ({})", self.len());
        row.clear();
        let total = self.cs + 1;
        let nf = self.n as f64;
        if i == 0 {
            row.push((total as u32, 1.0));
            return;
        }
        row.push(((i - 1) as u32, 1.0 / nf));
        if self.n > 1 {
            row.push((i as u32, 1.0 - 1.0 / nf));
        }
    }

    fn resident_rows(&self) -> usize {
        1
    }
}

/// Builds the individual chain (holder identities tracked).
///
/// # Errors
///
/// Propagates chain-validation errors (none occur for valid inputs).
///
/// # Panics
///
/// Panics if `n == 0`, `n > 255`, `cs == 0`, or `cs > 254`.
pub fn individual_chain(n: usize, cs: usize) -> Result<MarkovChain<LockStateWho>, ChainError> {
    sparse_individual_chain(n, cs)?.to_dense()
}

/// Builds the individual chain in sparse (CSR) form — the primary
/// representation; [`individual_chain`] is its dense conversion.
///
/// # Errors
///
/// Propagates chain-validation errors (none occur for valid inputs).
///
/// # Panics
///
/// Panics if `n == 0`, `n > 255`, `cs == 0`, or `cs > 254`.
pub fn sparse_individual_chain(
    n: usize,
    cs: usize,
) -> Result<SparseChain<LockStateWho>, ChainError> {
    assert!(n >= 1 && cs >= 1, "need n ≥ 1 and cs ≥ 1");
    assert!(n <= 255, "n must fit in a byte");
    assert!(cs <= 254, "critical section must fit in a byte");
    let nf = n as f64;
    let total = (cs + 1) as u8;
    let mut b = SparseChainBuilder::new();
    b.state(LockStateWho::Free);
    for holder in 0..n as u8 {
        for r in 1..=total {
            b.state(LockStateWho::Held {
                holder,
                remaining: r,
            });
        }
    }
    for holder in 0..n as u8 {
        // From Free, the scheduled process (prob 1/n each) acquires.
        b.transition(
            LockStateWho::Free,
            LockStateWho::Held {
                holder,
                remaining: total,
            },
            1.0 / nf,
        );
        for r in 1..=total {
            let state = LockStateWho::Held {
                holder,
                remaining: r,
            };
            let next = if r == 1 {
                LockStateWho::Free
            } else {
                LockStateWho::Held {
                    holder,
                    remaining: r - 1,
                }
            };
            b.transition(state, next, 1.0 / nf);
            if n > 1 {
                b.transition(state, state, 1.0 - 1.0 / nf);
            }
        }
    }
    b.build()
}

/// Exact system latency from the system chain: a step is a success iff
/// the holder at `Held(1)` is scheduled (the unlock completes the
/// operation).
///
/// # Errors
///
/// Propagates chain and stationary errors.
pub fn exact_system_latency(n: usize, cs: usize) -> Result<f64, LatencyError> {
    let chain = system_chain(n, cs)?;
    let pi = stationary_distribution(&chain)?;
    let succ: Vec<f64> = chain
        .states()
        .iter()
        .map(|s| match s {
            LockState::Held(1) => 1.0 / n as f64,
            _ => 0.0,
        })
        .collect();
    Ok(latency_from_success_probabilities(&pi, &succ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lock::predicted_system_latency;
    use pwf_markov::lifting::verify_lifting;
    use pwf_markov::structure::analyze;

    #[test]
    fn closed_form_matches_chain_exactly() {
        for (n, cs) in [(1usize, 1usize), (2, 1), (4, 2), (8, 3), (16, 2)] {
            let chain = exact_system_latency(n, cs).unwrap();
            let formula = predicted_system_latency(n, cs);
            assert!(
                (chain - formula).abs() < 1e-8,
                "n={n}, cs={cs}: chain {chain} vs formula {formula}"
            );
        }
    }

    #[test]
    fn lifting_forgets_holder_identity() {
        for (n, cs) in [(2usize, 1usize), (3, 2), (4, 3)] {
            let ind = individual_chain(n, cs).unwrap();
            let sys = system_chain(n, cs).unwrap();
            let report = verify_lifting(&ind, &sys, lift, 1e-8)
                .unwrap_or_else(|e| panic!("lifting failed n={n} cs={cs}: {e}"));
            assert!(report.flow_residual < 1e-10);
            assert!(report.stationary_residual < 1e-10);
            assert_eq!(report.lifted_states, 1 + n * (cs + 1));
            assert_eq!(report.base_states, cs + 2);
        }
    }

    #[test]
    fn chains_are_ergodic_for_n_at_least_two() {
        // Spinner self-loops make the chains aperiodic (unlike the
        // paper's CAS chains).
        let s = analyze(&system_chain(3, 2).unwrap());
        assert!(s.is_ergodic());
        let i = analyze(&individual_chain(3, 2).unwrap());
        assert!(i.is_ergodic());
    }

    #[test]
    fn latency_is_linear_in_both_parameters() {
        let w_base = exact_system_latency(4, 1).unwrap();
        let w_more_cs = exact_system_latency(4, 3).unwrap();
        let w_more_n = exact_system_latency(8, 1).unwrap();
        assert!((w_more_cs - w_base - 8.0).abs() < 1e-8); // +2 cs steps × n=4
        assert!((w_more_n - (1.0 + 2.0 * 8.0)).abs() < 1e-8);
    }

    #[test]
    fn kernel_condition_holds_on_sparse_chains() {
        use pwf_markov::lifting::kernel_residual_sparse;
        for (n, cs) in [(2usize, 1usize), (3, 2), (16, 3)] {
            let ind = sparse_individual_chain(n, cs).unwrap();
            let sys = sparse_system_chain(n, cs).unwrap();
            let r = kernel_residual_sparse(&ind, &sys, lift).unwrap();
            assert!(r < 1e-12, "n={n} cs={cs}: kernel residual {r}");
        }
    }

    #[test]
    fn operator_rows_are_bitwise_identical_to_csr_rows() {
        for (n, cs) in [(1usize, 1usize), (2, 1), (4, 3), (32, 7)] {
            let op = LockSystemOperator::new(n, cs);
            let chain = sparse_system_chain(n, cs).unwrap();
            assert_eq!(op.len(), chain.len(), "n={n} cs={cs}");
            let mut row = Vec::new();
            for i in 0..chain.len() {
                assert_eq!(&op.state_of(i), chain.state(i), "n={n} cs={cs} idx {i}");
                op.row_into(i, &mut row);
                let want: Vec<(u32, f64)> = chain.row(i).collect();
                assert_eq!(row, want, "n={n} cs={cs} row {i}");
            }
        }
        assert_eq!(LockSystemOperator::new(4, 2).resident_rows(), 1);
    }

    #[test]
    fn single_process_lock_has_no_contention_overhead() {
        // n = 1: W = cs + 2 (acquire + cs + unlock).
        for cs in [1usize, 2, 5] {
            let w = exact_system_latency(1, cs).unwrap();
            assert!((w - (cs as f64 + 2.0)).abs() < 1e-9, "cs={cs}: {w}");
        }
    }
}
