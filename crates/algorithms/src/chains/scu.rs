//! Exact chains for the scan-validate component `SCU(0, 1)`
//! (paper, Section 6.1.1, Lemmas 3–7).
//!
//! The system chain is **operator-first**: [`ScuSystemOperator`]
//! generates rows on the fly from the closed-form `(a, b)` dynamics in
//! the exact float schedule of the CSR construction, so the scalable
//! paths ([`large_system_latency_with`], [`verify_lifting_chunk`])
//! never materialize a matrix yet stay bit-identical to solving
//! [`sparse_system_chain`] — which is retained, along with the dense
//! [`SparseChain::to_dense`] conversions, as the small-`n` oracle.
//! Beyond the exhaustive range, the lifting of Lemma 5 is verified by
//! the symmetry-reduced kernel check ([`verify_lifting_by_symmetry`]),
//! `O(n)` work per symmetry class with no `3ⁿ − 1` enumeration; the
//! `Θ(n²)` classes split into [`orbit_chunks`] for parallel fan-out
//! with byte-identical merged reports.

use pwf_markov::chain::{ChainError, MarkovChain};
use pwf_markov::lifting::RowResidualScratch;
use pwf_markov::operator::{stationary_operator, TransitionOperator};
use pwf_markov::solve::{Metrics, PowerOptions, SolveStats};
use pwf_markov::sparse::{SparseChain, SparseChainBuilder};
use pwf_markov::stationary::{stationary_distribution, StationaryError};
use pwf_rng::{Rng, SeedableRng};

use super::latency_from_success_probabilities;

/// Extended local state of one process (paper, Section 6.1.1): the
/// state is defined *from the viewpoint of the entire system* — a
/// pending CAS is `CCas` or `OldCas` depending on whether it would
/// currently succeed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PState {
    /// About to CAS with an old (invalid) value of `R`.
    OldCas,
    /// About to read `R`.
    Read,
    /// About to CAS with the current value of `R`.
    CCas,
}

/// A state of the individual chain: the extended local state of every
/// process.
pub type IndividualState = Vec<PState>;

/// A state `(a, b)` of the system chain: `a` processes about to read,
/// `b` processes about to CAS with an old value (and `n − a − b` about
/// to CAS with the current value).
pub type SystemState = (usize, usize);

/// Maximum `n` for which the *dense* individual chain (`3ⁿ − 1`
/// states) is built; beyond this the `(3ⁿ − 1)²` matrix is
/// impractical.
pub const MAX_INDIVIDUAL_N: usize = 7;

/// Maximum `n` for the *sparse* individual chain: `3ⁿ − 1` states
/// with `n` transitions each is memory-feasible a bit further than
/// the dense matrix, but still exponential.
pub const MAX_SPARSE_INDIVIDUAL_N: usize = 12;

/// Maximum `n` for the system chain: it has `Θ(n²)` states and the
/// solver is dense, so `n = 128` (≈ 8.4k states) is the practical
/// ceiling. For larger `n` use the step-equivalent balls-into-bins
/// game in `pwf-ballsbins`, which estimates the same latency in
/// `O(phases · √n)` time.
pub const MAX_SYSTEM_N: usize = 128;

/// The lifting map `f` of Definition 2: counts processes in `Read`
/// and `OldCas`.
pub fn lift(state: &IndividualState) -> SystemState {
    let a = state.iter().filter(|&&p| p == PState::Read).count();
    let b = state.iter().filter(|&&p| p == PState::OldCas).count();
    (a, b)
}

fn enumerate_individual_states(n: usize) -> Vec<IndividualState> {
    // All vectors over {OldCas, Read, CCas}^n except all-OldCas.
    let mut states = Vec::with_capacity(3usize.pow(n as u32) - 1);
    let mut current = vec![PState::OldCas; n];
    loop {
        if current.iter().any(|&p| p != PState::OldCas) {
            states.push(current.clone());
        }
        // Increment base-3 counter.
        let mut i = 0;
        loop {
            current[i] = match current[i] {
                PState::OldCas => PState::Read,
                PState::Read => PState::CCas,
                PState::CCas => {
                    current[i] = PState::OldCas;
                    i += 1;
                    if i == n {
                        return states;
                    }
                    continue;
                }
            };
            break;
        }
    }
}

/// One scheduled step of process `i` from an individual-chain state:
/// returns the successor state and whether the step was a successful
/// CAS. This is the paper's prose dynamics verbatim and the single
/// source of truth for every SCU chain construction and for the
/// symmetry-reduced lifting check.
pub fn individual_successor(state: &IndividualState, i: usize) -> (IndividualState, bool) {
    let mut next = state.clone();
    match state[i] {
        PState::Read => {
            next[i] = PState::CCas;
            (next, false)
        }
        PState::OldCas => {
            next[i] = PState::Read;
            (next, false)
        }
        PState::CCas => {
            // Success: winner returns to reading, every other current
            // CAS becomes stale.
            for (j, p) in next.iter_mut().enumerate() {
                if j != i && *p == PState::CCas {
                    *p = PState::OldCas;
                }
            }
            next[i] = PState::Read;
            (next, true)
        }
    }
}

/// Builds the individual chain for `SCU(0, 1)` on `n` processes in
/// sparse (CSR) form: `3ⁿ − 1` states with `n` transitions each,
/// uniform scheduling (each process steps with probability `1/n`).
///
/// # Errors
///
/// Propagates chain-validation errors (none occur for valid `n`).
///
/// # Panics
///
/// Panics if `n == 0` or `n > MAX_SPARSE_INDIVIDUAL_N`.
pub fn sparse_individual_chain(n: usize) -> Result<SparseChain<IndividualState>, ChainError> {
    assert!(n >= 1, "need at least one process");
    assert!(
        n <= MAX_SPARSE_INDIVIDUAL_N,
        "individual chain has 3^n - 1 states even in sparse form; \
         n must be at most {MAX_SPARSE_INDIVIDUAL_N}"
    );
    let states = enumerate_individual_states(n);
    let p = 1.0 / n as f64;
    let mut b = SparseChainBuilder::new();
    for s in &states {
        b.state(s.clone());
    }
    for s in &states {
        for i in 0..n {
            let (next, _) = individual_successor(s, i);
            b.transition(s.clone(), next, p);
        }
    }
    b.build()
}

/// Builds the dense individual chain — a [`SparseChain::to_dense`]
/// conversion of [`sparse_individual_chain`], kept as the direct-solve
/// oracle.
///
/// # Errors
///
/// Propagates chain-validation errors (none occur for valid `n`).
///
/// # Panics
///
/// Panics if `n == 0` or `n > MAX_INDIVIDUAL_N`.
pub fn individual_chain(n: usize) -> Result<MarkovChain<IndividualState>, ChainError> {
    assert!(
        n <= MAX_INDIVIDUAL_N,
        "individual chain has 3^n - 1 states; n must be at most {MAX_INDIVIDUAL_N}"
    );
    sparse_individual_chain(n)?.to_dense()
}

/// Builds the dense system chain — a [`SparseChain::to_dense`]
/// conversion of [`sparse_system_chain`], kept as the direct-solve
/// oracle for small `n`.
///
/// # Errors
///
/// Propagates chain-validation errors (none occur for valid `n`).
///
/// # Panics
///
/// Panics if `n == 0` or `n > MAX_SYSTEM_N`.
pub fn system_chain(n: usize) -> Result<MarkovChain<SystemState>, ChainError> {
    assert!(
        n <= MAX_SYSTEM_N,
        "system chain has Θ(n²) states; n must be at most {MAX_SYSTEM_N} \
         (use pwf-ballsbins for Monte-Carlo estimates at larger n)"
    );
    sparse_system_chain(n)?.to_dense()
}

/// Builds the system chain in sparse (CSR) form — the primary
/// representation, usable far beyond [`MAX_SYSTEM_N`] (the chain has
/// `Θ(n²)` states but only ≤ 3 transitions per state).
///
/// # Errors
///
/// Propagates chain-validation errors (none occur for valid `n`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn sparse_system_chain(n: usize) -> Result<SparseChain<SystemState>, ChainError> {
    assert!(n >= 1, "need at least one process");
    let nf = n as f64;
    let mut b = SparseChainBuilder::new();
    for a in 0..=n {
        for bb in 0..=(n - a) {
            if (a, bb) != (0, n) {
                b.state((a, bb));
            }
        }
    }
    for a in 0..=n {
        for bb in 0..=(n - a) {
            if (a, bb) == (0, n) {
                continue;
            }
            let c = n - a - bb;
            if a > 0 {
                b.transition((a, bb), (a - 1, bb), a as f64 / nf);
            }
            if bb > 0 {
                b.transition((a, bb), (a + 1, bb - 1), bb as f64 / nf);
            }
            if c > 0 {
                b.transition((a, bb), (a + 1, n - a - 1), c as f64 / nf);
            }
        }
    }
    b.build()
}

/// The matrix-free transition operator of the `SCU(0, 1)` system
/// chain: rows are generated on the fly from the closed-form dynamics,
/// in the exact interning order and float schedule of
/// [`sparse_system_chain`], so operator solves are bit-identical to
/// CSR solves while keeping **zero** transition rows in memory.
///
/// State `(a, b)` (with `(0, n)` unreachable and excluded) has index
/// `b` when `a = 0`, and `n + (a−1)(n+1) − a(a−1)/2 + b` otherwise —
/// the position the builder's `a`-major, `b`-minor enumeration assigns
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScuSystemOperator {
    n: usize,
    states: usize,
}

impl ScuSystemOperator {
    /// Operator for `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one process");
        ScuSystemOperator {
            n,
            states: (n + 1) * (n + 2) / 2 - 1,
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Closed-form state index of `(a, b)` — the interning order of
    /// [`sparse_system_chain`].
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `(a, b)` is not a valid system
    /// state.
    pub fn index(&self, a: usize, b: usize) -> usize {
        let n = self.n;
        debug_assert!(
            a <= n && b <= n - a && (a, b) != (0, n),
            "({a}, {b}) is not a system state for n = {n}"
        );
        if a == 0 {
            b
        } else {
            // Block `a = 0` holds n states (b = 0..n, (0, n) skipped);
            // block a ≥ 1 holds n − a + 1 states.
            n + (a - 1) * (n + 1) - a * (a - 1) / 2 + b
        }
    }

    /// Inverse of [`index`](Self::index): the state `(a, b)` at a given
    /// index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    pub fn state_of(&self, idx: usize) -> SystemState {
        assert!(idx < self.states, "index {idx} out of bounds");
        let n = self.n;
        if idx < n {
            return (0, idx);
        }
        let offset = |a: usize| n + (a - 1) * (n + 1) - a * (a - 1) / 2;
        // Largest a ≥ 1 whose block starts at or before idx.
        let mut lo = 1usize;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if offset(mid) <= idx {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        (lo, idx - offset(lo))
    }

    /// All system states in index order.
    pub fn states(&self) -> impl Iterator<Item = SystemState> + '_ {
        let n = self.n;
        (0..=n).flat_map(move |a| {
            (0..=(n - a))
                .map(move |b| (a, b))
                .filter(move |&s| s != (0, n))
        })
    }
}

impl TransitionOperator for ScuSystemOperator {
    fn len(&self) -> usize {
        self.states
    }

    fn row_into(&self, i: usize, row: &mut Vec<(u32, f64)>) {
        row.clear();
        let (a, b) = self.state_of(i);
        let n = self.n;
        let nf = n as f64;
        let c = n - a - b;
        // Targets are emitted in ascending index order: the a−1 block
        // precedes the a+1 block, and within a+1, b−1 < n−a−1 whenever
        // both transitions exist (b < n − a exactly when c > 0).
        if a > 0 {
            row.push((self.index(a - 1, b) as u32, a as f64 / nf));
        }
        if b > 0 {
            row.push((self.index(a + 1, b - 1) as u32, b as f64 / nf));
        }
        if c > 0 {
            row.push((self.index(a + 1, n - a - 1) as u32, c as f64 / nf));
        }
    }

    fn resident_rows(&self) -> usize {
        1
    }
}

/// System latency for large `n` via the matrix-free operator and
/// adaptive lazy power iteration — the scalable counterpart of
/// [`exact_system_latency`]. Returns the latency together with the
/// solver's work statistics; an optional metrics registry receives the
/// solver's counters and gauges. Bit-identical to solving the CSR
/// chain ([`ScuSystemOperator`] reproduces its rows exactly), without
/// materializing it.
///
/// # Errors
///
/// Propagates solver convergence failures.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn large_system_latency_with(
    n: usize,
    opts: &PowerOptions,
    metrics: Option<&Metrics>,
) -> Result<(f64, SolveStats), LatencyError> {
    let op = ScuSystemOperator::new(n);
    let solve = stationary_operator(&op, opts, metrics).map_err(LatencyError::Stationary)?;
    let succ: Vec<f64> = op
        .states()
        .map(|(a, b)| (n - a - b) as f64 / n as f64)
        .collect();
    Ok((
        latency_from_success_probabilities(&solve.pi, &succ),
        solve.stats,
    ))
}

/// System latency for large `n` — [`large_system_latency_with`] with
/// adaptive stopping at the given budget/tolerance and no metrics.
///
/// # Errors
///
/// Propagates sparse-solver convergence failures.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn large_system_latency(n: usize, max_iters: usize, tol: f64) -> Result<f64, LatencyError> {
    large_system_latency_with(n, &PowerOptions::new(max_iters, tol), None).map(|(w, _)| w)
}

/// Result of the symmetry-reduced kernel check of Lemma 5's lifting
/// (see [`verify_lifting_by_symmetry`]).
#[derive(Debug, Clone, Copy)]
pub struct SymmetryLiftingReport {
    /// Number of processes.
    pub n: usize,
    /// Symmetry classes checked — one per system-chain state `(a, b)`,
    /// i.e. `(n+1)(n+2)/2 − 1`.
    pub classes: usize,
    /// Individual states whose rows were checked (canonical
    /// representative plus sampled permutations, per class).
    pub states_checked: usize,
    /// Worst violation of the kernel condition
    /// `Σ_{y : f(y) = j} P'(x, y) = P(f(x), j)` over all checked rows.
    pub kernel_residual: f64,
}

impl SymmetryLiftingReport {
    /// Folds another chunk's report into this one: classes and
    /// checked-state counts add, the kernel residual takes the max.
    /// Because [`verify_lifting_chunk`] seeds its RNG per class, any
    /// chunking of the same class range merges to the identical report.
    ///
    /// # Panics
    ///
    /// Panics if the reports are for different `n`.
    #[must_use]
    pub fn merge(mut self, other: &SymmetryLiftingReport) -> SymmetryLiftingReport {
        assert_eq!(self.n, other.n, "cannot merge reports across n");
        self.classes += other.classes;
        self.states_checked += other.states_checked;
        self.kernel_residual = self.kernel_residual.max(other.kernel_residual);
        self
    }
}

/// A contiguous run of symmetry classes (system states, in
/// [`ScuSystemOperator`] index order) for one unit of lifting-check
/// work — the fan-out granule for `pwf_runner::parallel_map`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrbitChunk {
    /// Number of processes.
    pub n: usize,
    /// Index of the first class in this chunk.
    pub first_class: usize,
    /// Number of classes in this chunk.
    pub classes: usize,
}

/// Splits the `(n+1)(n+2)/2 − 1` symmetry classes of `SCU(0, 1)` into
/// chunks of at most `classes_per_chunk` classes. The partition is a
/// pure function of `(n, classes_per_chunk)` — independent of worker
/// count — so chunked runs merge to byte-identical reports at any
/// `--jobs`.
///
/// # Panics
///
/// Panics if `n == 0` or `classes_per_chunk == 0`.
pub fn orbit_chunks(n: usize, classes_per_chunk: usize) -> Vec<OrbitChunk> {
    assert!(classes_per_chunk >= 1, "chunks must be non-empty");
    let total = ScuSystemOperator::new(n).len();
    let mut chunks = Vec::with_capacity(total.div_ceil(classes_per_chunk));
    let mut first = 0;
    while first < total {
        let classes = classes_per_chunk.min(total - first);
        chunks.push(OrbitChunk {
            n,
            first_class: first,
            classes,
        });
        first += classes;
    }
    chunks
}

/// The matrix-free kernel check over one [`OrbitChunk`]: for each
/// class `(a, b)` in the chunk, collapses the rows of the canonical
/// representative (`a`×`Read`, `b`×`OldCas`, rest `CCas`) and
/// `samples_per_class` seeded random permutations of it through the
/// lifting map, and compares them against the implicit system row —
/// no chain is materialized on either side.
///
/// Each class draws from its own RNG stream
/// (`seed ⊕ class · 0x9E3779B97F4A7C15`), so the permutations sampled
/// for a class do not depend on how classes are split into chunks:
/// chunked parallel runs are byte-identical to the serial sweep.
///
/// # Panics
///
/// Panics if the chunk is out of range for its `n`.
pub fn verify_lifting_chunk(
    chunk: &OrbitChunk,
    samples_per_class: usize,
    seed: u64,
) -> SymmetryLiftingReport {
    let n = chunk.n;
    let op = ScuSystemOperator::new(n);
    assert!(
        chunk.first_class + chunk.classes <= op.len(),
        "chunk exceeds the class count"
    );
    let inv_n = 1.0 / n as f64;
    let mut scratch = RowResidualScratch::new();
    let mut worst: f64 = 0.0;
    let mut states_checked = 0usize;
    let mut collapsed: Vec<(usize, f64)> = Vec::with_capacity(4);
    for class in chunk.first_class..chunk.first_class + chunk.classes {
        let (a, b) = op.state_of(class);
        let c = n - a - b;
        let mut rng = pwf_rng::rngs::StdRng::seed_from_u64(
            seed ^ (class as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let mut rep = vec![PState::Read; a];
        rep.extend(std::iter::repeat(PState::OldCas).take(b));
        rep.extend(std::iter::repeat(PState::CCas).take(c));
        for sample in 0..=samples_per_class {
            let mut x = rep.clone();
            if sample > 0 {
                rng.shuffle(&mut x);
            }
            debug_assert_eq!(lift(&x), (a, b));
            // Collapsed row: Σ_{y : f(y) = j} P'(x, y), at most 4
            // distinct targets (one per scheduled-process kind, plus
            // coincidences).
            collapsed.clear();
            for i in 0..n {
                let (next, _) = individual_successor(&x, i);
                let (ta, tb) = lift(&next);
                let target = op.index(ta, tb);
                match collapsed.iter_mut().find(|(t, _)| *t == target) {
                    Some((_, p)) => *p += inv_n,
                    None => collapsed.push((target, inv_n)),
                }
            }
            worst = worst.max(scratch.residual(&op, class, &collapsed));
            states_checked += 1;
        }
    }
    SymmetryLiftingReport {
        n,
        classes: chunk.classes,
        states_checked,
        kernel_residual: worst,
    }
}

/// Verifies Lemma 5's lifting for `SCU(0, 1)` at sizes where the
/// `3ⁿ − 1`-state individual chain cannot be enumerated, via *strong
/// lumpability*: the kernel condition
/// `Σ_{y : f(y) = j} P'(x, y) = P(f(x), j)` for every individual state
/// `x` implies the ergodic-flow homomorphism of Definition 2 for
/// whatever stationary distribution the chains have, so checking it
/// row-by-row needs no solves and no full enumeration.
///
/// The check is symmetry-reduced: the lifting map and the dynamics are
/// invariant under permuting process indices, so the kernel condition
/// holds for every `x` in a permutation orbit iff it holds for one
/// member. Each system state `(a, b)` is one orbit; the check visits
/// its canonical representative (`a`×`Read`, `b`×`OldCas`, rest
/// `CCas`) and, to guard the symmetry argument itself, an extra
/// `samples_per_class` seeded random permutations of it. Total work is
/// `O(n³ · samples)` for the `Θ(n²)` classes — at `n = 100` that is
/// 5150 classes against 3¹⁰⁰ − 1 ≈ 5 · 10⁴⁷ individual states.
///
/// The check is fully matrix-free (it runs
/// [`verify_lifting_chunk`] over a single all-classes [`OrbitChunk`]):
/// system rows come from [`ScuSystemOperator`], so no chain is built.
/// For parallel fan-out, split the classes with [`orbit_chunks`] and
/// [`merge`](SymmetryLiftingReport::merge) the per-chunk reports —
/// per-class RNG seeding makes any chunking byte-identical to this
/// serial sweep.
///
/// # Errors
///
/// Infallible since the matrix-free rewrite; the `Result` is kept for
/// call-site stability.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn verify_lifting_by_symmetry(
    n: usize,
    samples_per_class: usize,
    seed: u64,
) -> Result<SymmetryLiftingReport, LatencyError> {
    let chunk = OrbitChunk {
        n,
        first_class: 0,
        classes: ScuSystemOperator::new(n).len(),
    };
    Ok(verify_lifting_chunk(&chunk, samples_per_class, seed))
}

/// Per-state success probability in the system chain: a step from
/// `(a, b)` is a success iff a `CCAS` process is scheduled, i.e. with
/// probability `(n − a − b)/n`.
pub fn system_success_probabilities(chain: &MarkovChain<SystemState>, n: usize) -> Vec<f64> {
    chain
        .states()
        .iter()
        .map(|&(a, b)| (n - a - b) as f64 / n as f64)
        .collect()
}

/// Exact system latency `W` of `SCU(0, 1)` on `n` processes, from the
/// stationary distribution of the system chain (the quantity bounded
/// by `O(√n)` in Theorem 5).
///
/// # Errors
///
/// Propagates chain and stationary-distribution errors.
pub fn exact_system_latency(n: usize) -> Result<f64, LatencyError> {
    let chain = system_chain(n)?;
    let pi = stationary_distribution(&chain)?;
    let succ = system_success_probabilities(&chain, n);
    Ok(latency_from_success_probabilities(&pi, &succ))
}

/// Exact individual latency `W_i` of process `i` in `SCU(0, 1)` on `n`
/// processes, from the individual chain (Lemma 7 asserts this equals
/// `n · W`; tests verify it).
///
/// # Errors
///
/// Propagates chain and stationary-distribution errors.
///
/// # Panics
///
/// Panics if `i >= n` or `n > MAX_INDIVIDUAL_N`.
pub fn exact_individual_latency(n: usize, i: usize) -> Result<f64, LatencyError> {
    assert!(i < n, "process index out of range");
    let chain = individual_chain(n)?;
    let pi = stationary_distribution(&chain)?;
    // η_i = Σ_{x : x[i] = CCas} π'_x / n (Lemma 7).
    let succ: Vec<f64> = chain
        .states()
        .iter()
        .map(|s| {
            if s[i] == PState::CCas {
                1.0 / n as f64
            } else {
                0.0
            }
        })
        .collect();
    Ok(latency_from_success_probabilities(&pi, &succ))
}

/// Errors from exact-latency computations.
#[derive(Debug)]
pub enum LatencyError {
    /// Chain construction failed.
    Chain(ChainError),
    /// Stationary-distribution computation failed.
    Stationary(StationaryError),
}

impl std::fmt::Display for LatencyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LatencyError::Chain(e) => write!(f, "chain construction failed: {e}"),
            LatencyError::Stationary(e) => write!(f, "stationary computation failed: {e}"),
        }
    }
}

impl std::error::Error for LatencyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LatencyError::Chain(e) => Some(e),
            LatencyError::Stationary(e) => Some(e),
        }
    }
}

impl From<ChainError> for LatencyError {
    fn from(e: ChainError) -> Self {
        LatencyError::Chain(e)
    }
}

impl From<StationaryError> for LatencyError {
    fn from(e: StationaryError) -> Self {
        LatencyError::Stationary(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwf_markov::lifting::verify_lifting;
    use pwf_markov::structure::analyze;

    #[test]
    fn individual_chain_has_3n_minus_1_states() {
        for n in 1..=4 {
            let c = individual_chain(n).unwrap();
            assert_eq!(c.len(), 3usize.pow(n as u32) - 1, "n = {n}");
        }
    }

    #[test]
    fn system_chain_state_count() {
        // (n+1)(n+2)/2 − 1 states.
        for n in 1..=10 {
            let c = system_chain(n).unwrap();
            assert_eq!(c.len(), (n + 1) * (n + 2) / 2 - 1, "n = {n}");
        }
    }

    #[test]
    fn lemma_3_chains_are_irreducible_with_period_two() {
        // Deviation note: the paper's Lemma 3 calls both chains
        // ergodic, but every transition changes the number of `Read`
        // processes by exactly ±1, so the chains are bipartite with
        // period 2. Irreducibility — which is all Theorem 1 needs for
        // the unique stationary distribution the analysis rests on —
        // does hold, and time-average behaviour is unaffected.
        for n in 2..=4 {
            let ind = analyze(&individual_chain(n).unwrap());
            let sys = analyze(&system_chain(n).unwrap());
            assert!(ind.irreducible, "individual n={n}");
            assert_eq!(ind.period, 2, "individual n={n}");
            assert!(sys.irreducible, "system n={n}");
            assert_eq!(sys.period, 2, "system n={n}");
        }
    }

    #[test]
    fn lemma_5_system_chain_is_lifting_of_individual() {
        for n in 2..=5 {
            let ind = individual_chain(n).unwrap();
            let sys = system_chain(n).unwrap();
            let report = verify_lifting(&ind, &sys, lift, 1e-8)
                .unwrap_or_else(|e| panic!("lifting failed for n={n}: {e}"));
            assert!(report.flow_residual < 1e-9, "n = {n}");
            assert!(report.stationary_residual < 1e-9, "n = {n}");
        }
    }

    #[test]
    fn lemma_7_individual_latency_is_n_times_system() {
        for n in 2..=5 {
            let w = exact_system_latency(n).unwrap();
            let wi = exact_individual_latency(n, 0).unwrap();
            assert!(
                (wi - n as f64 * w).abs() < 1e-6,
                "n={n}: W_i={wi}, n·W={}",
                n as f64 * w
            );
        }
    }

    #[test]
    fn lemma_6_symmetric_states_have_equal_stationary_probability() {
        let n = 3;
        let chain = individual_chain(n).unwrap();
        let pi = stationary_distribution(&chain).unwrap();
        // States that are permutations of each other have equal π.
        let a = chain
            .state_index(&vec![PState::Read, PState::CCas, PState::OldCas])
            .unwrap();
        let b = chain
            .state_index(&vec![PState::OldCas, PState::Read, PState::CCas])
            .unwrap();
        assert!((pi[a] - pi[b]).abs() < 1e-12);
    }

    #[test]
    fn single_process_system_latency_is_two() {
        // n = 1: read, CAS, read, CAS … every second step succeeds.
        let w = exact_system_latency(1).unwrap();
        assert!((w - 2.0).abs() < 1e-9);
    }

    #[test]
    fn theorem_5_system_latency_is_order_sqrt_n() {
        // W/√n should be bounded and roughly flat.
        let ratios: Vec<f64> = [4, 16, 36, 64]
            .iter()
            .map(|&n| exact_system_latency(n).unwrap() / (n as f64).sqrt())
            .collect();
        for r in &ratios {
            assert!(*r > 0.5 && *r < 4.0, "ratios {ratios:?}");
        }
        // Ratio should not grow: later ratios within 50% of earlier.
        assert!(
            ratios.last().unwrap() < &(ratios.first().unwrap() * 1.5),
            "ratios {ratios:?}"
        );
    }

    #[test]
    fn lift_counts_states() {
        let s = vec![PState::Read, PState::OldCas, PState::CCas, PState::Read];
        assert_eq!(lift(&s), (2, 1));
    }

    #[test]
    fn initial_state_all_read_exists() {
        let n = 3;
        let c = individual_chain(n).unwrap();
        assert!(c.state_index(&vec![PState::Read; n]).is_some());
        // The all-OldCas state must not exist.
        assert!(c.state_index(&vec![PState::OldCas; n]).is_none());
    }

    #[test]
    #[should_panic(expected = "3^n - 1")]
    fn oversized_individual_chain_panics() {
        let _ = individual_chain(MAX_INDIVIDUAL_N + 1);
    }
}

#[cfg(test)]
mod sparse_tests {
    use super::*;

    #[test]
    fn sparse_chain_matches_dense_latency() {
        for n in [4usize, 16, 64] {
            let dense = exact_system_latency(n).unwrap();
            let sparse = large_system_latency(n, 200_000, 1e-12).unwrap();
            assert!(
                (dense - sparse).abs() / dense < 1e-6,
                "n={n}: dense {dense} vs sparse {sparse}"
            );
        }
    }

    #[test]
    fn sparse_chain_is_irreducible() {
        let c = sparse_system_chain(32).unwrap();
        assert!(c.is_irreducible());
        assert_eq!(c.len(), 33 * 34 / 2 - 1);
        // ≤ 3 transitions per state.
        assert!(c.nnz() <= 3 * c.len());
    }

    #[test]
    fn large_n_latency_continues_sqrt_trend() {
        // n = 256 is past the dense cap; W/√n must stay in the same
        // narrow band the dense values occupy.
        let w = large_system_latency(256, 400_000, 1e-11).unwrap();
        let ratio = w / 16.0;
        assert!(ratio > 1.6 && ratio < 2.0, "W/sqrt(n) = {ratio}");
    }

    #[test]
    fn latency_with_reports_solver_work() {
        let (w, stats) =
            large_system_latency_with(64, &PowerOptions::new(400_000, 1e-10), None).unwrap();
        assert!(w > 0.0);
        assert!(stats.iterations > 0);
        assert!(stats.residual.is_finite());
    }

    #[test]
    fn operator_index_matches_csr_interning_order() {
        for n in [1usize, 2, 5, 12, 30] {
            let op = ScuSystemOperator::new(n);
            let chain = sparse_system_chain(n).unwrap();
            assert_eq!(op.len(), chain.len(), "n={n}");
            for (idx, &(a, b)) in chain.states().iter().enumerate() {
                assert_eq!(op.index(a, b), idx, "n={n} state ({a}, {b})");
                assert_eq!(op.state_of(idx), (a, b), "n={n} idx {idx}");
            }
            let listed: Vec<SystemState> = op.states().collect();
            assert_eq!(&listed, chain.states(), "n={n}");
        }
    }

    #[test]
    fn operator_rows_are_bitwise_identical_to_csr_rows() {
        for n in [1usize, 3, 8, 25] {
            let op = ScuSystemOperator::new(n);
            let chain = sparse_system_chain(n).unwrap();
            let mut row = Vec::new();
            for i in 0..chain.len() {
                op.row_into(i, &mut row);
                let want: Vec<(u32, f64)> = chain.row(i).collect();
                assert_eq!(row, want, "n={n} row {i}");
            }
        }
    }

    #[test]
    fn operator_latency_is_bit_exact_vs_csr_solve() {
        // The matrix-free large_system_latency_with must reproduce the
        // historical CSR solve bit for bit — goldens depend on it.
        let opts = PowerOptions::new(400_000, 1e-12);
        for n in [4usize, 33, 100] {
            let chain = sparse_system_chain(n).unwrap();
            let solve = chain.stationary_with(&opts, None).unwrap();
            let succ: Vec<f64> = chain
                .states()
                .iter()
                .map(|&(a, b)| (n - a - b) as f64 / n as f64)
                .collect();
            let want = latency_from_success_probabilities(&solve.pi, &succ);
            let (got, stats) = large_system_latency_with(n, &opts, None).unwrap();
            assert_eq!(got.to_bits(), want.to_bits(), "n={n}");
            assert_eq!(stats.iterations, solve.stats.iterations, "n={n}");
        }
    }

    #[test]
    fn operator_keeps_no_rows_resident() {
        let op = ScuSystemOperator::new(64);
        assert_eq!(op.resident_rows(), 1);
        assert_eq!(op.n(), 64);
    }

    #[test]
    fn sparse_individual_chain_matches_dense() {
        let n = 4;
        let sparse = sparse_individual_chain(n).unwrap();
        let dense = individual_chain(n).unwrap();
        assert_eq!(sparse.len(), dense.len());
        // Distinct processes always produce distinct successors here,
        // so each row has exactly n entries.
        assert_eq!(sparse.nnz(), sparse.len() * n);
        for i in 0..sparse.len() {
            for (j, p) in sparse.row(i) {
                assert!((p - dense.prob(i, j as usize)).abs() < 1e-15);
            }
        }
    }
}

#[cfg(test)]
mod lifting_tests {
    use super::*;
    use pwf_markov::lifting::kernel_residual_sparse;

    #[test]
    fn kernel_condition_holds_exhaustively_for_small_n() {
        // The strong-lumpability (kernel) condition checked over every
        // individual state — the ground truth the symmetry-reduced
        // check must reproduce.
        for n in 2..=6 {
            let ind = sparse_individual_chain(n).unwrap();
            let sys = sparse_system_chain(n).unwrap();
            let r = kernel_residual_sparse(&ind, &sys, lift).unwrap();
            assert!(r < 1e-12, "n={n}: kernel residual {r}");
        }
    }

    #[test]
    fn symmetry_check_matches_exhaustive_kernel_check() {
        for n in 2..=6 {
            let report = verify_lifting_by_symmetry(n, 3, 0xA11CE).unwrap();
            assert!(
                report.kernel_residual < 1e-12,
                "n={n}: residual {}",
                report.kernel_residual
            );
            assert_eq!(report.classes, (n + 1) * (n + 2) / 2 - 1);
            assert_eq!(report.states_checked, report.classes * 4);
        }
    }

    #[test]
    fn chunked_check_merges_to_the_serial_report() {
        // Any chunking must reproduce the single-chunk sweep exactly:
        // per-class seeding makes the sampled permutations chunk-shape
        // independent, and merge is max/sum.
        let n = 9;
        let serial = verify_lifting_by_symmetry(n, 3, 0xFEED).unwrap();
        for chunk_size in [1usize, 7, 16, 1000] {
            let chunks = orbit_chunks(n, chunk_size);
            assert_eq!(
                chunks.iter().map(|c| c.classes).sum::<usize>(),
                serial.classes,
                "chunks must partition the classes"
            );
            let merged = chunks
                .iter()
                .map(|c| verify_lifting_chunk(c, 3, 0xFEED))
                .reduce(|acc, r| acc.merge(&r))
                .unwrap();
            assert_eq!(merged.classes, serial.classes);
            assert_eq!(merged.states_checked, serial.states_checked);
            assert_eq!(
                merged.kernel_residual.to_bits(),
                serial.kernel_residual.to_bits(),
                "chunk_size {chunk_size}"
            );
        }
    }

    #[test]
    fn symmetry_check_verifies_lifting_at_n_100() {
        // The acceptance bar for the matrix-free engine: Lemma 5
        // verified at n = 100 (5150 classes, 3¹⁰⁰ − 1 individual
        // states) with residual at float-rounding level.
        let report = verify_lifting_by_symmetry(100, 1, 0xD00D).unwrap();
        assert_eq!(report.classes, 101 * 102 / 2 - 1);
        assert_eq!(report.states_checked, report.classes * 2);
        assert!(
            report.kernel_residual < 1e-12,
            "residual {}",
            report.kernel_residual
        );
    }

    #[test]
    fn symmetry_check_verifies_lifting_at_n_20() {
        // The acceptance bar for the sparse-first engine: Lemma 5
        // verified at n = 20, far past the 3ⁿ − 1 enumeration wall.
        let report = verify_lifting_by_symmetry(20, 4, 0xBEEF).unwrap();
        assert_eq!(report.classes, 21 * 22 / 2 - 1);
        assert!(
            report.kernel_residual < 1e-12,
            "residual {}",
            report.kernel_residual
        );
    }
}
