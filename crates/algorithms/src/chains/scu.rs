//! Exact chains for the scan-validate component `SCU(0, 1)`
//! (paper, Section 6.1.1, Lemmas 3–7).

use pwf_markov::chain::{ChainBuilder, ChainError, MarkovChain};
use pwf_markov::stationary::{stationary_distribution, StationaryError};

use super::latency_from_success_probabilities;

/// Extended local state of one process (paper, Section 6.1.1): the
/// state is defined *from the viewpoint of the entire system* — a
/// pending CAS is `CCas` or `OldCas` depending on whether it would
/// currently succeed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PState {
    /// About to CAS with an old (invalid) value of `R`.
    OldCas,
    /// About to read `R`.
    Read,
    /// About to CAS with the current value of `R`.
    CCas,
}

/// A state of the individual chain: the extended local state of every
/// process.
pub type IndividualState = Vec<PState>;

/// A state `(a, b)` of the system chain: `a` processes about to read,
/// `b` processes about to CAS with an old value (and `n − a − b` about
/// to CAS with the current value).
pub type SystemState = (usize, usize);

/// Maximum `n` for which the individual chain (`3ⁿ − 1` states) is
/// built; beyond this the dense representation is impractical.
pub const MAX_INDIVIDUAL_N: usize = 7;

/// Maximum `n` for the system chain: it has `Θ(n²)` states and the
/// solver is dense, so `n = 128` (≈ 8.4k states) is the practical
/// ceiling. For larger `n` use the step-equivalent balls-into-bins
/// game in `pwf-ballsbins`, which estimates the same latency in
/// `O(phases · √n)` time.
pub const MAX_SYSTEM_N: usize = 128;

/// The lifting map `f` of Definition 2: counts processes in `Read`
/// and `OldCas`.
pub fn lift(state: &IndividualState) -> SystemState {
    let a = state.iter().filter(|&&p| p == PState::Read).count();
    let b = state.iter().filter(|&&p| p == PState::OldCas).count();
    (a, b)
}

fn enumerate_individual_states(n: usize) -> Vec<IndividualState> {
    // All vectors over {OldCas, Read, CCas}^n except all-OldCas.
    let mut states = Vec::with_capacity(3usize.pow(n as u32) - 1);
    let mut current = vec![PState::OldCas; n];
    loop {
        if current.iter().any(|&p| p != PState::OldCas) {
            states.push(current.clone());
        }
        // Increment base-3 counter.
        let mut i = 0;
        loop {
            current[i] = match current[i] {
                PState::OldCas => PState::Read,
                PState::Read => PState::CCas,
                PState::CCas => {
                    current[i] = PState::OldCas;
                    i += 1;
                    if i == n {
                        return states;
                    }
                    continue;
                }
            };
            break;
        }
    }
}

fn individual_successor(state: &IndividualState, i: usize) -> (IndividualState, bool) {
    let mut next = state.clone();
    match state[i] {
        PState::Read => {
            next[i] = PState::CCas;
            (next, false)
        }
        PState::OldCas => {
            next[i] = PState::Read;
            (next, false)
        }
        PState::CCas => {
            // Success: winner returns to reading, every other current
            // CAS becomes stale.
            for (j, p) in next.iter_mut().enumerate() {
                if j != i && *p == PState::CCas {
                    *p = PState::OldCas;
                }
            }
            next[i] = PState::Read;
            (next, true)
        }
    }
}

/// Builds the individual chain for `SCU(0, 1)` on `n` processes:
/// `3ⁿ − 1` states, uniform scheduling (each process steps with
/// probability `1/n`).
///
/// # Errors
///
/// Propagates chain-validation errors (none occur for valid `n`).
///
/// # Panics
///
/// Panics if `n == 0` or `n > MAX_INDIVIDUAL_N`.
pub fn individual_chain(n: usize) -> Result<MarkovChain<IndividualState>, ChainError> {
    assert!(n >= 1, "need at least one process");
    assert!(
        n <= MAX_INDIVIDUAL_N,
        "individual chain has 3^n - 1 states; n must be at most {MAX_INDIVIDUAL_N}"
    );
    let states = enumerate_individual_states(n);
    let p = 1.0 / n as f64;
    let mut b = ChainBuilder::new();
    for s in &states {
        b = b.state(s.clone());
    }
    for s in &states {
        for i in 0..n {
            let (next, _) = individual_successor(s, i);
            b = b.transition(s.clone(), next, p);
        }
    }
    b.build()
}

/// Builds the system chain for `SCU(0, 1)` on `n` processes: states
/// `(a, b)` with `a + b ≤ n`, excluding the unreachable `(0, n)`.
///
/// # Errors
///
/// Propagates chain-validation errors (none occur for valid `n`).
///
/// # Panics
///
/// Panics if `n == 0` or `n > MAX_SYSTEM_N`.
pub fn system_chain(n: usize) -> Result<MarkovChain<SystemState>, ChainError> {
    assert!(n >= 1, "need at least one process");
    assert!(
        n <= MAX_SYSTEM_N,
        "system chain has Θ(n²) states; n must be at most {MAX_SYSTEM_N} \
         (use pwf-ballsbins for Monte-Carlo estimates at larger n)"
    );
    let nf = n as f64;
    let mut b = ChainBuilder::new();
    for a in 0..=n {
        for bb in 0..=(n - a) {
            if (a, bb) != (0, n) {
                b = b.state((a, bb));
            }
        }
    }
    for a in 0..=n {
        for bb in 0..=(n - a) {
            if (a, bb) == (0, n) {
                continue;
            }
            let c = n - a - bb;
            if a > 0 {
                b = b.transition((a, bb), (a - 1, bb), a as f64 / nf);
            }
            if bb > 0 {
                b = b.transition((a, bb), (a + 1, bb - 1), bb as f64 / nf);
            }
            if c > 0 {
                // Success: winner reads, all other current CASes stale.
                b = b.transition((a, bb), (a + 1, n - a - 1), c as f64 / nf);
            }
        }
    }
    b.build()
}

/// Builds the system chain in sparse form, usable far beyond
/// [`MAX_SYSTEM_N`] (the chain has `Θ(n²)` states but only ≤ 3
/// transitions per state).
///
/// # Errors
///
/// Propagates chain-validation errors (none occur for valid `n`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn sparse_system_chain(
    n: usize,
) -> Result<pwf_markov::sparse::SparseChain<SystemState>, ChainError> {
    assert!(n >= 1, "need at least one process");
    let nf = n as f64;
    let mut b = pwf_markov::sparse::SparseChainBuilder::new();
    for a in 0..=n {
        for bb in 0..=(n - a) {
            if (a, bb) != (0, n) {
                b.state((a, bb));
            }
        }
    }
    for a in 0..=n {
        for bb in 0..=(n - a) {
            if (a, bb) == (0, n) {
                continue;
            }
            let c = n - a - bb;
            if a > 0 {
                b.transition((a, bb), (a - 1, bb), a as f64 / nf);
            }
            if bb > 0 {
                b.transition((a, bb), (a + 1, bb - 1), bb as f64 / nf);
            }
            if c > 0 {
                b.transition((a, bb), (a + 1, n - a - 1), c as f64 / nf);
            }
        }
    }
    b.build()
}

/// System latency for large `n` via the sparse chain and lazy power
/// iteration — the scalable counterpart of [`exact_system_latency`].
///
/// # Errors
///
/// Propagates sparse-solver convergence failures.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn large_system_latency(n: usize, max_iters: usize, tol: f64) -> Result<f64, LatencyError> {
    let chain = sparse_system_chain(n)?;
    let pi = chain
        .stationary(max_iters, tol)
        .map_err(LatencyError::Stationary)?;
    let succ: Vec<f64> = chain
        .states()
        .iter()
        .map(|&(a, b)| (n - a - b) as f64 / n as f64)
        .collect();
    Ok(latency_from_success_probabilities(&pi, &succ))
}

/// Per-state success probability in the system chain: a step from
/// `(a, b)` is a success iff a `CCAS` process is scheduled, i.e. with
/// probability `(n − a − b)/n`.
pub fn system_success_probabilities(chain: &MarkovChain<SystemState>, n: usize) -> Vec<f64> {
    chain
        .states()
        .iter()
        .map(|&(a, b)| (n - a - b) as f64 / n as f64)
        .collect()
}

/// Exact system latency `W` of `SCU(0, 1)` on `n` processes, from the
/// stationary distribution of the system chain (the quantity bounded
/// by `O(√n)` in Theorem 5).
///
/// # Errors
///
/// Propagates chain and stationary-distribution errors.
pub fn exact_system_latency(n: usize) -> Result<f64, LatencyError> {
    let chain = system_chain(n)?;
    let pi = stationary_distribution(&chain)?;
    let succ = system_success_probabilities(&chain, n);
    Ok(latency_from_success_probabilities(&pi, &succ))
}

/// Exact individual latency `W_i` of process `i` in `SCU(0, 1)` on `n`
/// processes, from the individual chain (Lemma 7 asserts this equals
/// `n · W`; tests verify it).
///
/// # Errors
///
/// Propagates chain and stationary-distribution errors.
///
/// # Panics
///
/// Panics if `i >= n` or `n > MAX_INDIVIDUAL_N`.
pub fn exact_individual_latency(n: usize, i: usize) -> Result<f64, LatencyError> {
    assert!(i < n, "process index out of range");
    let chain = individual_chain(n)?;
    let pi = stationary_distribution(&chain)?;
    // η_i = Σ_{x : x[i] = CCas} π'_x / n (Lemma 7).
    let succ: Vec<f64> = chain
        .states()
        .iter()
        .map(|s| {
            if s[i] == PState::CCas {
                1.0 / n as f64
            } else {
                0.0
            }
        })
        .collect();
    Ok(latency_from_success_probabilities(&pi, &succ))
}

/// Errors from exact-latency computations.
#[derive(Debug)]
pub enum LatencyError {
    /// Chain construction failed.
    Chain(ChainError),
    /// Stationary-distribution computation failed.
    Stationary(StationaryError),
}

impl std::fmt::Display for LatencyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LatencyError::Chain(e) => write!(f, "chain construction failed: {e}"),
            LatencyError::Stationary(e) => write!(f, "stationary computation failed: {e}"),
        }
    }
}

impl std::error::Error for LatencyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LatencyError::Chain(e) => Some(e),
            LatencyError::Stationary(e) => Some(e),
        }
    }
}

impl From<ChainError> for LatencyError {
    fn from(e: ChainError) -> Self {
        LatencyError::Chain(e)
    }
}

impl From<StationaryError> for LatencyError {
    fn from(e: StationaryError) -> Self {
        LatencyError::Stationary(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwf_markov::lifting::verify_lifting;
    use pwf_markov::structure::analyze;

    #[test]
    fn individual_chain_has_3n_minus_1_states() {
        for n in 1..=4 {
            let c = individual_chain(n).unwrap();
            assert_eq!(c.len(), 3usize.pow(n as u32) - 1, "n = {n}");
        }
    }

    #[test]
    fn system_chain_state_count() {
        // (n+1)(n+2)/2 − 1 states.
        for n in 1..=10 {
            let c = system_chain(n).unwrap();
            assert_eq!(c.len(), (n + 1) * (n + 2) / 2 - 1, "n = {n}");
        }
    }

    #[test]
    fn lemma_3_chains_are_irreducible_with_period_two() {
        // Deviation note: the paper's Lemma 3 calls both chains
        // ergodic, but every transition changes the number of `Read`
        // processes by exactly ±1, so the chains are bipartite with
        // period 2. Irreducibility — which is all Theorem 1 needs for
        // the unique stationary distribution the analysis rests on —
        // does hold, and time-average behaviour is unaffected.
        for n in 2..=4 {
            let ind = analyze(&individual_chain(n).unwrap());
            let sys = analyze(&system_chain(n).unwrap());
            assert!(ind.irreducible, "individual n={n}");
            assert_eq!(ind.period, 2, "individual n={n}");
            assert!(sys.irreducible, "system n={n}");
            assert_eq!(sys.period, 2, "system n={n}");
        }
    }

    #[test]
    fn lemma_5_system_chain_is_lifting_of_individual() {
        for n in 2..=5 {
            let ind = individual_chain(n).unwrap();
            let sys = system_chain(n).unwrap();
            let report = verify_lifting(&ind, &sys, lift, 1e-8)
                .unwrap_or_else(|e| panic!("lifting failed for n={n}: {e}"));
            assert!(report.flow_residual < 1e-9, "n = {n}");
            assert!(report.stationary_residual < 1e-9, "n = {n}");
        }
    }

    #[test]
    fn lemma_7_individual_latency_is_n_times_system() {
        for n in 2..=5 {
            let w = exact_system_latency(n).unwrap();
            let wi = exact_individual_latency(n, 0).unwrap();
            assert!(
                (wi - n as f64 * w).abs() < 1e-6,
                "n={n}: W_i={wi}, n·W={}",
                n as f64 * w
            );
        }
    }

    #[test]
    fn lemma_6_symmetric_states_have_equal_stationary_probability() {
        let n = 3;
        let chain = individual_chain(n).unwrap();
        let pi = stationary_distribution(&chain).unwrap();
        // States that are permutations of each other have equal π.
        let a = chain
            .state_index(&vec![PState::Read, PState::CCas, PState::OldCas])
            .unwrap();
        let b = chain
            .state_index(&vec![PState::OldCas, PState::Read, PState::CCas])
            .unwrap();
        assert!((pi[a] - pi[b]).abs() < 1e-12);
    }

    #[test]
    fn single_process_system_latency_is_two() {
        // n = 1: read, CAS, read, CAS … every second step succeeds.
        let w = exact_system_latency(1).unwrap();
        assert!((w - 2.0).abs() < 1e-9);
    }

    #[test]
    fn theorem_5_system_latency_is_order_sqrt_n() {
        // W/√n should be bounded and roughly flat.
        let ratios: Vec<f64> = [4, 16, 36, 64]
            .iter()
            .map(|&n| exact_system_latency(n).unwrap() / (n as f64).sqrt())
            .collect();
        for r in &ratios {
            assert!(*r > 0.5 && *r < 4.0, "ratios {ratios:?}");
        }
        // Ratio should not grow: later ratios within 50% of earlier.
        assert!(
            ratios.last().unwrap() < &(ratios.first().unwrap() * 1.5),
            "ratios {ratios:?}"
        );
    }

    #[test]
    fn lift_counts_states() {
        let s = vec![PState::Read, PState::OldCas, PState::CCas, PState::Read];
        assert_eq!(lift(&s), (2, 1));
    }

    #[test]
    fn initial_state_all_read_exists() {
        let n = 3;
        let c = individual_chain(n).unwrap();
        assert!(c.state_index(&vec![PState::Read; n]).is_some());
        // The all-OldCas state must not exist.
        assert!(c.state_index(&vec![PState::OldCas; n]).is_none());
    }

    #[test]
    #[should_panic(expected = "3^n - 1")]
    fn oversized_individual_chain_panics() {
        let _ = individual_chain(MAX_INDIVIDUAL_N + 1);
    }
}

#[cfg(test)]
mod sparse_tests {
    use super::*;

    #[test]
    fn sparse_chain_matches_dense_latency() {
        for n in [4usize, 16, 64] {
            let dense = exact_system_latency(n).unwrap();
            let sparse = large_system_latency(n, 200_000, 1e-12).unwrap();
            assert!(
                (dense - sparse).abs() / dense < 1e-6,
                "n={n}: dense {dense} vs sparse {sparse}"
            );
        }
    }

    #[test]
    fn sparse_chain_is_irreducible() {
        let c = sparse_system_chain(32).unwrap();
        assert!(c.is_irreducible());
        assert_eq!(c.len(), 33 * 34 / 2 - 1);
        // ≤ 3 transitions per state.
        assert!(c.nnz() <= 3 * c.len());
    }

    #[test]
    fn large_n_latency_continues_sqrt_trend() {
        // n = 256 is past the dense cap; W/√n must stay in the same
        // narrow band the dense values occupy.
        let w = large_system_latency(256, 400_000, 1e-11).unwrap();
        let ratio = w / 16.0;
        assert!(ratio > 1.6 && ratio < 2.0, "W/sqrt(n) = {ratio}");
    }
}
