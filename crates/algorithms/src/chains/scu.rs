//! Exact chains for the scan-validate component `SCU(0, 1)`
//! (paper, Section 6.1.1, Lemmas 3–7).
//!
//! Chains are built **sparse-first**: the CSR constructions
//! ([`sparse_individual_chain`], [`sparse_system_chain`]) are the
//! primary representation, and the dense variants are thin
//! [`SparseChain::to_dense`] conversions kept for the small-`n`
//! direct-solve oracle. Beyond the exhaustive range, the lifting of
//! Lemma 5 is verified by the symmetry-reduced kernel check
//! ([`verify_lifting_by_symmetry`]), which needs only the `Θ(n²)`
//! system chain and `O(n)` work per symmetry class — no `3ⁿ − 1`
//! enumeration.

use pwf_markov::chain::{ChainError, MarkovChain};
use pwf_markov::solve::{Metrics, PowerOptions, SolveStats};
use pwf_markov::sparse::{SparseChain, SparseChainBuilder};
use pwf_markov::stationary::{stationary_distribution, StationaryError};
use pwf_rng::{Rng, SeedableRng};

use super::latency_from_success_probabilities;

/// Extended local state of one process (paper, Section 6.1.1): the
/// state is defined *from the viewpoint of the entire system* — a
/// pending CAS is `CCas` or `OldCas` depending on whether it would
/// currently succeed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PState {
    /// About to CAS with an old (invalid) value of `R`.
    OldCas,
    /// About to read `R`.
    Read,
    /// About to CAS with the current value of `R`.
    CCas,
}

/// A state of the individual chain: the extended local state of every
/// process.
pub type IndividualState = Vec<PState>;

/// A state `(a, b)` of the system chain: `a` processes about to read,
/// `b` processes about to CAS with an old value (and `n − a − b` about
/// to CAS with the current value).
pub type SystemState = (usize, usize);

/// Maximum `n` for which the *dense* individual chain (`3ⁿ − 1`
/// states) is built; beyond this the `(3ⁿ − 1)²` matrix is
/// impractical.
pub const MAX_INDIVIDUAL_N: usize = 7;

/// Maximum `n` for the *sparse* individual chain: `3ⁿ − 1` states
/// with `n` transitions each is memory-feasible a bit further than
/// the dense matrix, but still exponential.
pub const MAX_SPARSE_INDIVIDUAL_N: usize = 12;

/// Maximum `n` for the system chain: it has `Θ(n²)` states and the
/// solver is dense, so `n = 128` (≈ 8.4k states) is the practical
/// ceiling. For larger `n` use the step-equivalent balls-into-bins
/// game in `pwf-ballsbins`, which estimates the same latency in
/// `O(phases · √n)` time.
pub const MAX_SYSTEM_N: usize = 128;

/// The lifting map `f` of Definition 2: counts processes in `Read`
/// and `OldCas`.
pub fn lift(state: &IndividualState) -> SystemState {
    let a = state.iter().filter(|&&p| p == PState::Read).count();
    let b = state.iter().filter(|&&p| p == PState::OldCas).count();
    (a, b)
}

fn enumerate_individual_states(n: usize) -> Vec<IndividualState> {
    // All vectors over {OldCas, Read, CCas}^n except all-OldCas.
    let mut states = Vec::with_capacity(3usize.pow(n as u32) - 1);
    let mut current = vec![PState::OldCas; n];
    loop {
        if current.iter().any(|&p| p != PState::OldCas) {
            states.push(current.clone());
        }
        // Increment base-3 counter.
        let mut i = 0;
        loop {
            current[i] = match current[i] {
                PState::OldCas => PState::Read,
                PState::Read => PState::CCas,
                PState::CCas => {
                    current[i] = PState::OldCas;
                    i += 1;
                    if i == n {
                        return states;
                    }
                    continue;
                }
            };
            break;
        }
    }
}

/// One scheduled step of process `i` from an individual-chain state:
/// returns the successor state and whether the step was a successful
/// CAS. This is the paper's prose dynamics verbatim and the single
/// source of truth for every SCU chain construction and for the
/// symmetry-reduced lifting check.
pub fn individual_successor(state: &IndividualState, i: usize) -> (IndividualState, bool) {
    let mut next = state.clone();
    match state[i] {
        PState::Read => {
            next[i] = PState::CCas;
            (next, false)
        }
        PState::OldCas => {
            next[i] = PState::Read;
            (next, false)
        }
        PState::CCas => {
            // Success: winner returns to reading, every other current
            // CAS becomes stale.
            for (j, p) in next.iter_mut().enumerate() {
                if j != i && *p == PState::CCas {
                    *p = PState::OldCas;
                }
            }
            next[i] = PState::Read;
            (next, true)
        }
    }
}

/// Builds the individual chain for `SCU(0, 1)` on `n` processes in
/// sparse (CSR) form: `3ⁿ − 1` states with `n` transitions each,
/// uniform scheduling (each process steps with probability `1/n`).
///
/// # Errors
///
/// Propagates chain-validation errors (none occur for valid `n`).
///
/// # Panics
///
/// Panics if `n == 0` or `n > MAX_SPARSE_INDIVIDUAL_N`.
pub fn sparse_individual_chain(n: usize) -> Result<SparseChain<IndividualState>, ChainError> {
    assert!(n >= 1, "need at least one process");
    assert!(
        n <= MAX_SPARSE_INDIVIDUAL_N,
        "individual chain has 3^n - 1 states even in sparse form; \
         n must be at most {MAX_SPARSE_INDIVIDUAL_N}"
    );
    let states = enumerate_individual_states(n);
    let p = 1.0 / n as f64;
    let mut b = SparseChainBuilder::new();
    for s in &states {
        b.state(s.clone());
    }
    for s in &states {
        for i in 0..n {
            let (next, _) = individual_successor(s, i);
            b.transition(s.clone(), next, p);
        }
    }
    b.build()
}

/// Builds the dense individual chain — a [`SparseChain::to_dense`]
/// conversion of [`sparse_individual_chain`], kept as the direct-solve
/// oracle.
///
/// # Errors
///
/// Propagates chain-validation errors (none occur for valid `n`).
///
/// # Panics
///
/// Panics if `n == 0` or `n > MAX_INDIVIDUAL_N`.
pub fn individual_chain(n: usize) -> Result<MarkovChain<IndividualState>, ChainError> {
    assert!(
        n <= MAX_INDIVIDUAL_N,
        "individual chain has 3^n - 1 states; n must be at most {MAX_INDIVIDUAL_N}"
    );
    sparse_individual_chain(n)?.to_dense()
}

/// Builds the dense system chain — a [`SparseChain::to_dense`]
/// conversion of [`sparse_system_chain`], kept as the direct-solve
/// oracle for small `n`.
///
/// # Errors
///
/// Propagates chain-validation errors (none occur for valid `n`).
///
/// # Panics
///
/// Panics if `n == 0` or `n > MAX_SYSTEM_N`.
pub fn system_chain(n: usize) -> Result<MarkovChain<SystemState>, ChainError> {
    assert!(
        n <= MAX_SYSTEM_N,
        "system chain has Θ(n²) states; n must be at most {MAX_SYSTEM_N} \
         (use pwf-ballsbins for Monte-Carlo estimates at larger n)"
    );
    sparse_system_chain(n)?.to_dense()
}

/// Builds the system chain in sparse (CSR) form — the primary
/// representation, usable far beyond [`MAX_SYSTEM_N`] (the chain has
/// `Θ(n²)` states but only ≤ 3 transitions per state).
///
/// # Errors
///
/// Propagates chain-validation errors (none occur for valid `n`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn sparse_system_chain(n: usize) -> Result<SparseChain<SystemState>, ChainError> {
    assert!(n >= 1, "need at least one process");
    let nf = n as f64;
    let mut b = SparseChainBuilder::new();
    for a in 0..=n {
        for bb in 0..=(n - a) {
            if (a, bb) != (0, n) {
                b.state((a, bb));
            }
        }
    }
    for a in 0..=n {
        for bb in 0..=(n - a) {
            if (a, bb) == (0, n) {
                continue;
            }
            let c = n - a - bb;
            if a > 0 {
                b.transition((a, bb), (a - 1, bb), a as f64 / nf);
            }
            if bb > 0 {
                b.transition((a, bb), (a + 1, bb - 1), bb as f64 / nf);
            }
            if c > 0 {
                b.transition((a, bb), (a + 1, n - a - 1), c as f64 / nf);
            }
        }
    }
    b.build()
}

/// System latency for large `n` via the sparse chain and adaptive lazy
/// power iteration — the scalable counterpart of
/// [`exact_system_latency`]. Returns the latency together with the
/// solver's work statistics; an optional metrics registry receives the
/// solver's counters and gauges.
///
/// # Errors
///
/// Propagates sparse-solver convergence failures.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn large_system_latency_with(
    n: usize,
    opts: &PowerOptions,
    metrics: Option<&Metrics>,
) -> Result<(f64, SolveStats), LatencyError> {
    let chain = sparse_system_chain(n)?;
    let solve = chain
        .stationary_with(opts, metrics)
        .map_err(LatencyError::Stationary)?;
    let succ: Vec<f64> = chain
        .states()
        .iter()
        .map(|&(a, b)| (n - a - b) as f64 / n as f64)
        .collect();
    Ok((
        latency_from_success_probabilities(&solve.pi, &succ),
        solve.stats,
    ))
}

/// System latency for large `n` — [`large_system_latency_with`] with
/// adaptive stopping at the given budget/tolerance and no metrics.
///
/// # Errors
///
/// Propagates sparse-solver convergence failures.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn large_system_latency(n: usize, max_iters: usize, tol: f64) -> Result<f64, LatencyError> {
    large_system_latency_with(n, &PowerOptions::new(max_iters, tol), None).map(|(w, _)| w)
}

/// Result of the symmetry-reduced kernel check of Lemma 5's lifting
/// (see [`verify_lifting_by_symmetry`]).
#[derive(Debug, Clone, Copy)]
pub struct SymmetryLiftingReport {
    /// Number of processes.
    pub n: usize,
    /// Symmetry classes checked — one per system-chain state `(a, b)`,
    /// i.e. `(n+1)(n+2)/2 − 1`.
    pub classes: usize,
    /// Individual states whose rows were checked (canonical
    /// representative plus sampled permutations, per class).
    pub states_checked: usize,
    /// Worst violation of the kernel condition
    /// `Σ_{y : f(y) = j} P'(x, y) = P(f(x), j)` over all checked rows.
    pub kernel_residual: f64,
}

/// Verifies Lemma 5's lifting for `SCU(0, 1)` at sizes where the
/// `3ⁿ − 1`-state individual chain cannot be enumerated, via *strong
/// lumpability*: the kernel condition
/// `Σ_{y : f(y) = j} P'(x, y) = P(f(x), j)` for every individual state
/// `x` implies the ergodic-flow homomorphism of Definition 2 for
/// whatever stationary distribution the chains have, so checking it
/// row-by-row needs no solves and no full enumeration.
///
/// The check is symmetry-reduced: the lifting map and the dynamics are
/// invariant under permuting process indices, so the kernel condition
/// holds for every `x` in a permutation orbit iff it holds for one
/// member. Each system state `(a, b)` is one orbit; the check visits
/// its canonical representative (`a`×`Read`, `b`×`OldCas`, rest
/// `CCas`) and, to guard the symmetry argument itself, an extra
/// `samples_per_class` seeded random permutations of it. Total work is
/// `O(n³ · samples)` for the `Θ(n²)` classes — at `n = 20` that is 230
/// classes against 3²⁰ − 1 ≈ 3.5 · 10⁹ individual states.
///
/// # Errors
///
/// Propagates system-chain construction errors.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn verify_lifting_by_symmetry(
    n: usize,
    samples_per_class: usize,
    seed: u64,
) -> Result<SymmetryLiftingReport, LatencyError> {
    let sys = sparse_system_chain(n)?;
    let mut rng = pwf_rng::rngs::StdRng::seed_from_u64(seed);
    let inv_n = 1.0 / n as f64;
    let mut worst: f64 = 0.0;
    let mut states_checked = 0usize;
    let mut collapsed: Vec<(SystemState, f64)> = Vec::with_capacity(4);
    for (idx, &(a, b)) in sys.states().iter().enumerate() {
        let c = n - a - b;
        let mut rep = vec![PState::Read; a];
        rep.extend(std::iter::repeat(PState::OldCas).take(b));
        rep.extend(std::iter::repeat(PState::CCas).take(c));
        for sample in 0..=samples_per_class {
            let mut x = rep.clone();
            if sample > 0 {
                rng.shuffle(&mut x);
            }
            debug_assert_eq!(lift(&x), (a, b));
            // Collapsed row: Σ_{y : f(y) = j} P'(x, y), at most 4
            // distinct targets (one per scheduled-process kind, plus
            // coincidences).
            collapsed.clear();
            for i in 0..n {
                let (next, _) = individual_successor(&x, i);
                let target = lift(&next);
                match collapsed.iter_mut().find(|(t, _)| *t == target) {
                    Some((_, p)) => *p += inv_n,
                    None => collapsed.push((target, inv_n)),
                }
            }
            // Compare against the system row P((a, b), ·) over the
            // union of supports.
            for &(t, p) in &collapsed {
                let j = sys
                    .state_index(&t)
                    .expect("lifted successor must be a system state");
                worst = worst.max((p - sys.prob(idx, j)).abs());
            }
            for (j, p) in sys.row(idx) {
                let t = sys.state(j as usize);
                if !collapsed.iter().any(|(tt, _)| tt == t) {
                    worst = worst.max(p.abs());
                }
            }
            states_checked += 1;
        }
    }
    Ok(SymmetryLiftingReport {
        n,
        classes: sys.len(),
        states_checked,
        kernel_residual: worst,
    })
}

/// Per-state success probability in the system chain: a step from
/// `(a, b)` is a success iff a `CCAS` process is scheduled, i.e. with
/// probability `(n − a − b)/n`.
pub fn system_success_probabilities(chain: &MarkovChain<SystemState>, n: usize) -> Vec<f64> {
    chain
        .states()
        .iter()
        .map(|&(a, b)| (n - a - b) as f64 / n as f64)
        .collect()
}

/// Exact system latency `W` of `SCU(0, 1)` on `n` processes, from the
/// stationary distribution of the system chain (the quantity bounded
/// by `O(√n)` in Theorem 5).
///
/// # Errors
///
/// Propagates chain and stationary-distribution errors.
pub fn exact_system_latency(n: usize) -> Result<f64, LatencyError> {
    let chain = system_chain(n)?;
    let pi = stationary_distribution(&chain)?;
    let succ = system_success_probabilities(&chain, n);
    Ok(latency_from_success_probabilities(&pi, &succ))
}

/// Exact individual latency `W_i` of process `i` in `SCU(0, 1)` on `n`
/// processes, from the individual chain (Lemma 7 asserts this equals
/// `n · W`; tests verify it).
///
/// # Errors
///
/// Propagates chain and stationary-distribution errors.
///
/// # Panics
///
/// Panics if `i >= n` or `n > MAX_INDIVIDUAL_N`.
pub fn exact_individual_latency(n: usize, i: usize) -> Result<f64, LatencyError> {
    assert!(i < n, "process index out of range");
    let chain = individual_chain(n)?;
    let pi = stationary_distribution(&chain)?;
    // η_i = Σ_{x : x[i] = CCas} π'_x / n (Lemma 7).
    let succ: Vec<f64> = chain
        .states()
        .iter()
        .map(|s| {
            if s[i] == PState::CCas {
                1.0 / n as f64
            } else {
                0.0
            }
        })
        .collect();
    Ok(latency_from_success_probabilities(&pi, &succ))
}

/// Errors from exact-latency computations.
#[derive(Debug)]
pub enum LatencyError {
    /// Chain construction failed.
    Chain(ChainError),
    /// Stationary-distribution computation failed.
    Stationary(StationaryError),
}

impl std::fmt::Display for LatencyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LatencyError::Chain(e) => write!(f, "chain construction failed: {e}"),
            LatencyError::Stationary(e) => write!(f, "stationary computation failed: {e}"),
        }
    }
}

impl std::error::Error for LatencyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LatencyError::Chain(e) => Some(e),
            LatencyError::Stationary(e) => Some(e),
        }
    }
}

impl From<ChainError> for LatencyError {
    fn from(e: ChainError) -> Self {
        LatencyError::Chain(e)
    }
}

impl From<StationaryError> for LatencyError {
    fn from(e: StationaryError) -> Self {
        LatencyError::Stationary(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwf_markov::lifting::verify_lifting;
    use pwf_markov::structure::analyze;

    #[test]
    fn individual_chain_has_3n_minus_1_states() {
        for n in 1..=4 {
            let c = individual_chain(n).unwrap();
            assert_eq!(c.len(), 3usize.pow(n as u32) - 1, "n = {n}");
        }
    }

    #[test]
    fn system_chain_state_count() {
        // (n+1)(n+2)/2 − 1 states.
        for n in 1..=10 {
            let c = system_chain(n).unwrap();
            assert_eq!(c.len(), (n + 1) * (n + 2) / 2 - 1, "n = {n}");
        }
    }

    #[test]
    fn lemma_3_chains_are_irreducible_with_period_two() {
        // Deviation note: the paper's Lemma 3 calls both chains
        // ergodic, but every transition changes the number of `Read`
        // processes by exactly ±1, so the chains are bipartite with
        // period 2. Irreducibility — which is all Theorem 1 needs for
        // the unique stationary distribution the analysis rests on —
        // does hold, and time-average behaviour is unaffected.
        for n in 2..=4 {
            let ind = analyze(&individual_chain(n).unwrap());
            let sys = analyze(&system_chain(n).unwrap());
            assert!(ind.irreducible, "individual n={n}");
            assert_eq!(ind.period, 2, "individual n={n}");
            assert!(sys.irreducible, "system n={n}");
            assert_eq!(sys.period, 2, "system n={n}");
        }
    }

    #[test]
    fn lemma_5_system_chain_is_lifting_of_individual() {
        for n in 2..=5 {
            let ind = individual_chain(n).unwrap();
            let sys = system_chain(n).unwrap();
            let report = verify_lifting(&ind, &sys, lift, 1e-8)
                .unwrap_or_else(|e| panic!("lifting failed for n={n}: {e}"));
            assert!(report.flow_residual < 1e-9, "n = {n}");
            assert!(report.stationary_residual < 1e-9, "n = {n}");
        }
    }

    #[test]
    fn lemma_7_individual_latency_is_n_times_system() {
        for n in 2..=5 {
            let w = exact_system_latency(n).unwrap();
            let wi = exact_individual_latency(n, 0).unwrap();
            assert!(
                (wi - n as f64 * w).abs() < 1e-6,
                "n={n}: W_i={wi}, n·W={}",
                n as f64 * w
            );
        }
    }

    #[test]
    fn lemma_6_symmetric_states_have_equal_stationary_probability() {
        let n = 3;
        let chain = individual_chain(n).unwrap();
        let pi = stationary_distribution(&chain).unwrap();
        // States that are permutations of each other have equal π.
        let a = chain
            .state_index(&vec![PState::Read, PState::CCas, PState::OldCas])
            .unwrap();
        let b = chain
            .state_index(&vec![PState::OldCas, PState::Read, PState::CCas])
            .unwrap();
        assert!((pi[a] - pi[b]).abs() < 1e-12);
    }

    #[test]
    fn single_process_system_latency_is_two() {
        // n = 1: read, CAS, read, CAS … every second step succeeds.
        let w = exact_system_latency(1).unwrap();
        assert!((w - 2.0).abs() < 1e-9);
    }

    #[test]
    fn theorem_5_system_latency_is_order_sqrt_n() {
        // W/√n should be bounded and roughly flat.
        let ratios: Vec<f64> = [4, 16, 36, 64]
            .iter()
            .map(|&n| exact_system_latency(n).unwrap() / (n as f64).sqrt())
            .collect();
        for r in &ratios {
            assert!(*r > 0.5 && *r < 4.0, "ratios {ratios:?}");
        }
        // Ratio should not grow: later ratios within 50% of earlier.
        assert!(
            ratios.last().unwrap() < &(ratios.first().unwrap() * 1.5),
            "ratios {ratios:?}"
        );
    }

    #[test]
    fn lift_counts_states() {
        let s = vec![PState::Read, PState::OldCas, PState::CCas, PState::Read];
        assert_eq!(lift(&s), (2, 1));
    }

    #[test]
    fn initial_state_all_read_exists() {
        let n = 3;
        let c = individual_chain(n).unwrap();
        assert!(c.state_index(&vec![PState::Read; n]).is_some());
        // The all-OldCas state must not exist.
        assert!(c.state_index(&vec![PState::OldCas; n]).is_none());
    }

    #[test]
    #[should_panic(expected = "3^n - 1")]
    fn oversized_individual_chain_panics() {
        let _ = individual_chain(MAX_INDIVIDUAL_N + 1);
    }
}

#[cfg(test)]
mod sparse_tests {
    use super::*;

    #[test]
    fn sparse_chain_matches_dense_latency() {
        for n in [4usize, 16, 64] {
            let dense = exact_system_latency(n).unwrap();
            let sparse = large_system_latency(n, 200_000, 1e-12).unwrap();
            assert!(
                (dense - sparse).abs() / dense < 1e-6,
                "n={n}: dense {dense} vs sparse {sparse}"
            );
        }
    }

    #[test]
    fn sparse_chain_is_irreducible() {
        let c = sparse_system_chain(32).unwrap();
        assert!(c.is_irreducible());
        assert_eq!(c.len(), 33 * 34 / 2 - 1);
        // ≤ 3 transitions per state.
        assert!(c.nnz() <= 3 * c.len());
    }

    #[test]
    fn large_n_latency_continues_sqrt_trend() {
        // n = 256 is past the dense cap; W/√n must stay in the same
        // narrow band the dense values occupy.
        let w = large_system_latency(256, 400_000, 1e-11).unwrap();
        let ratio = w / 16.0;
        assert!(ratio > 1.6 && ratio < 2.0, "W/sqrt(n) = {ratio}");
    }

    #[test]
    fn latency_with_reports_solver_work() {
        let (w, stats) =
            large_system_latency_with(64, &PowerOptions::new(400_000, 1e-10), None).unwrap();
        assert!(w > 0.0);
        assert!(stats.iterations > 0);
        assert!(stats.residual.is_finite());
    }

    #[test]
    fn sparse_individual_chain_matches_dense() {
        let n = 4;
        let sparse = sparse_individual_chain(n).unwrap();
        let dense = individual_chain(n).unwrap();
        assert_eq!(sparse.len(), dense.len());
        // Distinct processes always produce distinct successors here,
        // so each row has exactly n entries.
        assert_eq!(sparse.nnz(), sparse.len() * n);
        for i in 0..sparse.len() {
            for (j, p) in sparse.row(i) {
                assert!((p - dense.prob(i, j as usize)).abs() < 1e-15);
            }
        }
    }
}

#[cfg(test)]
mod lifting_tests {
    use super::*;
    use pwf_markov::lifting::kernel_residual_sparse;

    #[test]
    fn kernel_condition_holds_exhaustively_for_small_n() {
        // The strong-lumpability (kernel) condition checked over every
        // individual state — the ground truth the symmetry-reduced
        // check must reproduce.
        for n in 2..=6 {
            let ind = sparse_individual_chain(n).unwrap();
            let sys = sparse_system_chain(n).unwrap();
            let r = kernel_residual_sparse(&ind, &sys, lift).unwrap();
            assert!(r < 1e-12, "n={n}: kernel residual {r}");
        }
    }

    #[test]
    fn symmetry_check_matches_exhaustive_kernel_check() {
        for n in 2..=6 {
            let report = verify_lifting_by_symmetry(n, 3, 0xA11CE).unwrap();
            assert!(
                report.kernel_residual < 1e-12,
                "n={n}: residual {}",
                report.kernel_residual
            );
            assert_eq!(report.classes, (n + 1) * (n + 2) / 2 - 1);
            assert_eq!(report.states_checked, report.classes * 4);
        }
    }

    #[test]
    fn symmetry_check_verifies_lifting_at_n_20() {
        // The acceptance bar for the sparse-first engine: Lemma 5
        // verified at n = 20, far past the 3ⁿ − 1 enumeration wall.
        let report = verify_lifting_by_symmetry(20, 4, 0xBEEF).unwrap();
        assert_eq!(report.classes, 21 * 22 / 2 - 1);
        assert!(
            report.kernel_residual < 1e-12,
            "residual {}",
            report.kernel_residual
        );
    }
}
