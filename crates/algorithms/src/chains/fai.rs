//! Exact chains for the fetch-and-increment counter of Section 7
//! (Lemmas 12–14, Corollary 3).
//!
//! Individual chain: states are the non-empty subsets of processes
//! holding the *current* value of the register (`2ⁿ − 1` states).
//! Global chain: states `v_1 … v_n` counting how many processes hold
//! the current value.

use pwf_markov::chain::{ChainError, MarkovChain};
use pwf_markov::hitting::{hitting_times, operator_hitting_times, sparse_hitting_times};
use pwf_markov::operator::{stationary_operator, TransitionOperator};
use pwf_markov::solve::{GaussSeidelOptions, Metrics, PowerOptions, SolveStats};
use pwf_markov::sparse::{SparseChain, SparseChainBuilder};
use pwf_markov::stationary::stationary_distribution;

use super::latency_from_success_probabilities;
use super::scu::LatencyError;

/// A state of the individual chain: bitmask of processes in the
/// `Current` extended local state (never zero).
pub type SubsetState = u32;

/// Maximum `n` for which the individual chain (`2ⁿ − 1` states) is
/// built.
pub const MAX_INDIVIDUAL_N: usize = 10;

/// The lifting map of Lemma 13: a subset maps to its cardinality.
pub fn lift(state: &SubsetState) -> usize {
    state.count_ones() as usize
}

/// Builds the individual chain on `n` processes in sparse (CSR) form:
/// from subset `S`, a step by `i ∈ S` wins and moves to `{i}`; a step
/// by `i ∉ S` fails its CAS, learns the current value, and moves to
/// `S ∪ {i}`.
///
/// # Errors
///
/// Propagates chain-validation errors (none occur for valid `n`).
///
/// # Panics
///
/// Panics if `n == 0` or `n > MAX_INDIVIDUAL_N`.
pub fn sparse_individual_chain(n: usize) -> Result<SparseChain<SubsetState>, ChainError> {
    assert!(n >= 1, "need at least one process");
    assert!(
        n <= MAX_INDIVIDUAL_N,
        "individual chain has 2^n - 1 states; n must be at most {MAX_INDIVIDUAL_N}"
    );
    let p = 1.0 / n as f64;
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let mut b = SparseChainBuilder::new();
    for s in 1..=full {
        b.state(s);
    }
    for s in 1..=full {
        for i in 0..n {
            let bit = 1u32 << i;
            let next = if s & bit != 0 { bit } else { s | bit };
            b.transition(s, next, p);
        }
    }
    b.build()
}

/// Dense individual chain — a [`SparseChain::to_dense`] conversion of
/// [`sparse_individual_chain`], kept as the direct-solve oracle.
///
/// # Errors
///
/// Propagates chain-validation errors (none occur for valid `n`).
///
/// # Panics
///
/// Panics if `n == 0` or `n > MAX_INDIVIDUAL_N`.
pub fn individual_chain(n: usize) -> Result<MarkovChain<SubsetState>, ChainError> {
    sparse_individual_chain(n)?.to_dense()
}

/// Builds the global chain in sparse (CSR) form — the primary
/// representation; the chain is `n` states with ≤ 2 transitions each,
/// so it scales to millions of processes. From `i`: to `1` with
/// probability `i/n` (a holder wins), to `i + 1` with probability
/// `1 − i/n`.
///
/// # Errors
///
/// Propagates chain-validation errors (none occur for valid `n`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn sparse_global_chain(n: usize) -> Result<SparseChain<usize>, ChainError> {
    assert!(n >= 1, "need at least one process");
    let nf = n as f64;
    let mut b = SparseChainBuilder::new();
    for i in 1..=n {
        b.state(i);
    }
    for i in 1..=n {
        b.transition(i, 1, i as f64 / nf);
        if i < n {
            b.transition(i, i + 1, 1.0 - i as f64 / nf);
        }
    }
    b.build()
}

/// Dense global chain — a [`SparseChain::to_dense`] conversion of
/// [`sparse_global_chain`], kept as the direct-solve oracle for
/// small `n`.
///
/// # Errors
///
/// Propagates chain-validation errors (none occur for valid `n`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn global_chain(n: usize) -> Result<MarkovChain<usize>, ChainError> {
    sparse_global_chain(n)?.to_dense()
}

/// The matrix-free transition operator of the FAI global chain: state
/// `v_i` (1-based, at index `i − 1`) jumps to `v_1` with probability
/// `i/n` and to `v_{i+1}` with probability `1 − i/n`. Rows reproduce
/// [`sparse_global_chain`]'s CSR rows bitwise, so operator solves are
/// bit-identical to CSR solves with zero rows resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaiGlobalOperator {
    n: usize,
}

impl FaiGlobalOperator {
    /// Operator for `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one process");
        FaiGlobalOperator { n }
    }

    /// Number of processes (also the state count).
    pub fn n(&self) -> usize {
        self.n
    }
}

impl TransitionOperator for FaiGlobalOperator {
    fn len(&self) -> usize {
        self.n
    }

    fn row_into(&self, i: usize, row: &mut Vec<(u32, f64)>) {
        assert!(i < self.n, "row {i} out of bounds ({})", self.n);
        row.clear();
        let v = i + 1;
        let nf = self.n as f64;
        row.push((0, v as f64 / nf));
        if v < self.n {
            row.push(((i + 1) as u32, 1.0 - v as f64 / nf));
        }
    }

    fn resident_rows(&self) -> usize {
        1
    }
}

/// System latency for large `n` via the matrix-free operator and
/// adaptive power iteration, with solver statistics — the scalable
/// counterpart of [`exact_system_latency`]. Bit-identical to solving
/// the CSR global chain, without materializing it.
///
/// # Errors
///
/// Propagates solver convergence failures.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn large_system_latency_with(
    n: usize,
    opts: &PowerOptions,
    metrics: Option<&Metrics>,
) -> Result<(f64, SolveStats), LatencyError> {
    let op = FaiGlobalOperator::new(n);
    let solve = stationary_operator(&op, opts, metrics).map_err(LatencyError::Stationary)?;
    let succ: Vec<f64> = (1..=n).map(|i| i as f64 / n as f64).collect();
    Ok((
        latency_from_success_probabilities(&solve.pi, &succ),
        solve.stats,
    ))
}

/// Exact system latency `W` (expected steps between wins) from the
/// global chain's stationary distribution: a step from state `i`
/// succeeds with probability `i/n`. Lemma 12 bounds this by `2√n`.
///
/// # Errors
///
/// Propagates chain and stationary errors.
pub fn exact_system_latency(n: usize) -> Result<f64, LatencyError> {
    let chain = global_chain(n)?;
    let pi = stationary_distribution(&chain)?;
    let succ: Vec<f64> = chain
        .states()
        .iter()
        .map(|&i| i as f64 / n as f64)
        .collect();
    Ok(latency_from_success_probabilities(&pi, &succ))
}

/// The expected return time of the win state `v_1` in the global
/// chain, computed by the hitting-time linear system. This equals the
/// system latency because every success lands in `v_1`.
///
/// # Errors
///
/// Propagates chain and hitting-time errors.
pub fn return_time_of_win_state(n: usize) -> Result<f64, LatencyError> {
    let chain = global_chain(n)?;
    let idx = chain.state_index(&1).expect("state 1 exists");
    Ok(hitting_times(&chain, idx)?[idx])
}

/// Expected return time of the win state via sparse Gauss–Seidel —
/// the scalable counterpart of [`return_time_of_win_state`].
///
/// # Errors
///
/// Propagates chain and solver-convergence errors.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn sparse_return_time_of_win_state(
    n: usize,
    opts: &GaussSeidelOptions,
    metrics: Option<&Metrics>,
) -> Result<f64, LatencyError> {
    let chain = sparse_global_chain(n)?;
    let idx = chain.state_index(&1).expect("state 1 exists");
    Ok(sparse_hitting_times(&chain, idx, opts, metrics)?[idx])
}

/// Expected return time of the win state via matrix-free Gauss–Seidel
/// on [`FaiGlobalOperator`] — no chain is materialized, so it runs at
/// any `n` whose hitting-time vector fits in memory. Unlike
/// [`sparse_return_time_of_win_state`] the irreducibility of the
/// global chain is assumed (it holds for every `n ≥ 1`), not checked.
///
/// # Errors
///
/// Propagates solver-convergence failures.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn operator_return_time_of_win_state(
    n: usize,
    opts: &GaussSeidelOptions,
    metrics: Option<&Metrics>,
) -> Result<f64, LatencyError> {
    let op = FaiGlobalOperator::new(n);
    // v_1 interns at index 0.
    Ok(operator_hitting_times(&op, 0, opts, metrics).map_err(LatencyError::Stationary)?[0])
}

/// Exact individual latency `W_i` from the individual chain: process
/// `i` wins from states containing `i`, with probability `1/n` each
/// step (Lemma 14 asserts `W_i = n·W`).
///
/// # Errors
///
/// Propagates chain and stationary errors.
///
/// # Panics
///
/// Panics if `i >= n` or `n > MAX_INDIVIDUAL_N`.
pub fn exact_individual_latency(n: usize, i: usize) -> Result<f64, LatencyError> {
    assert!(i < n, "process index out of range");
    let chain = individual_chain(n)?;
    let pi = stationary_distribution(&chain)?;
    let bit = 1u32 << i;
    let succ: Vec<f64> = chain
        .states()
        .iter()
        .map(|&s| if s & bit != 0 { 1.0 / n as f64 } else { 0.0 })
        .collect();
    Ok(latency_from_success_probabilities(&pi, &succ))
}

/// The recurrence of Lemma 12: `Z(0) = 1`, `Z(i) = i·Z(i−1)/n + 1`,
/// where `Z(i)` is the hitting time of the win state from the state
/// with `n − i` current-value holders. Returns `Z(0), …, Z(n−1)`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn z_recurrence(n: usize) -> Vec<f64> {
    assert!(n >= 1, "need at least one process");
    let nf = n as f64;
    let mut z = Vec::with_capacity(n);
    z.push(1.0);
    for i in 1..n {
        let prev = z[i - 1];
        z.push(i as f64 * prev / nf + 1.0);
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwf_markov::lifting::verify_lifting;
    use pwf_markov::structure::is_ergodic;

    #[test]
    fn individual_chain_has_2n_minus_1_states() {
        for n in 1..=6 {
            let c = individual_chain(n).unwrap();
            assert_eq!(c.len(), (1usize << n) - 1, "n = {n}");
        }
    }

    #[test]
    fn global_chain_has_n_states() {
        for n in 1..=20 {
            assert_eq!(global_chain(n).unwrap().len(), n);
        }
    }

    #[test]
    fn lemma_13_chains_are_ergodic_and_lifting_holds() {
        for n in 2..=6 {
            let ind = individual_chain(n).unwrap();
            let glob = global_chain(n).unwrap();
            assert!(is_ergodic(&ind), "individual n={n}");
            assert!(is_ergodic(&glob), "global n={n}");
            let report = verify_lifting(&ind, &glob, lift, 1e-8)
                .unwrap_or_else(|e| panic!("lifting failed for n={n}: {e}"));
            assert!(report.flow_residual < 1e-9);
            assert!(report.stationary_residual < 1e-9);
        }
    }

    #[test]
    fn lemma_14_individual_latency_is_n_times_system() {
        for n in 2..=6 {
            let w = exact_system_latency(n).unwrap();
            let wi = exact_individual_latency(n, 1).unwrap();
            assert!(
                (wi - n as f64 * w).abs() < 1e-6,
                "n={n}: W_i={wi}, n·W={}",
                n as f64 * w
            );
        }
    }

    #[test]
    fn lemma_12_return_time_at_most_2_sqrt_n() {
        for n in [2, 4, 9, 16, 25, 64, 100] {
            let w = return_time_of_win_state(n).unwrap();
            assert!(
                w <= 2.0 * (n as f64).sqrt() + 1e-9,
                "n={n}: W={w} > 2√n={}",
                2.0 * (n as f64).sqrt()
            );
        }
    }

    #[test]
    fn return_time_matches_success_rate_latency() {
        for n in [3, 7, 12] {
            let a = return_time_of_win_state(n).unwrap();
            let b = exact_system_latency(n).unwrap();
            assert!((a - b).abs() < 1e-8, "n={n}: {a} vs {b}");
        }
    }

    #[test]
    fn z_recurrence_matches_hitting_times() {
        // Z(i) is the hitting time of v1 from v_{n−i}.
        let n = 8;
        let chain = global_chain(n).unwrap();
        let target = chain.state_index(&1).unwrap();
        let h = hitting_times(&chain, target).unwrap();
        let z = z_recurrence(n);
        #[allow(clippy::needless_range_loop)] // index loop is clearer here
        for i in 0..n {
            let from_state = n - i; // v_{n-i}
            if from_state == 1 {
                continue; // h[target] is the return time, not Z(n−1).
            }
            let idx = chain.state_index(&from_state).unwrap();
            assert!(
                (z[i] - h[idx]).abs() < 1e-9,
                "Z({i})={} vs hitting from v_{from_state}={}",
                z[i],
                h[idx]
            );
        }
    }

    #[test]
    fn z_asymptotics_ramanujan() {
        // Z(n−1) → √(πn/2): check the ratio approaches 1 from n=100 up.
        for n in [100usize, 400, 1600] {
            let z = z_recurrence(n);
            let asym = (std::f64::consts::PI * n as f64 / 2.0).sqrt();
            let ratio = z[n - 1] / asym;
            assert!(
                (ratio - 1.0).abs() < 0.1,
                "n={n}: Z(n-1)={}, asym={asym}",
                z[n - 1]
            );
        }
    }

    #[test]
    fn corollary_3_scaling() {
        // W_i = n·W = O(n√n): for n=6 check W_i/(n√n) is order 1.
        let n = 6;
        let wi = exact_individual_latency(n, 0).unwrap();
        let norm = wi / (n as f64 * (n as f64).sqrt());
        assert!(norm > 0.3 && norm < 3.0, "normalized W_i = {norm}");
    }

    #[test]
    fn single_process_always_wins() {
        let w = exact_system_latency(1).unwrap();
        assert!((w - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lift_is_popcount() {
        assert_eq!(lift(&0b1011), 3);
        assert_eq!(lift(&0b1), 1);
    }

    #[test]
    fn kernel_condition_holds_on_sparse_chains() {
        use pwf_markov::lifting::kernel_residual_sparse;
        for n in 2..=8 {
            let ind = sparse_individual_chain(n).unwrap();
            let glob = sparse_global_chain(n).unwrap();
            let map = |s: &SubsetState| lift(s);
            let r = kernel_residual_sparse(&ind, &glob, map).unwrap();
            assert!(r < 1e-12, "n={n}: kernel residual {r}");
        }
    }

    #[test]
    fn sparse_latency_matches_dense() {
        for n in [4usize, 16, 64] {
            let dense = exact_system_latency(n).unwrap();
            let (sparse, stats) =
                large_system_latency_with(n, &PowerOptions::new(400_000, 1e-12), None).unwrap();
            assert!(
                (dense - sparse).abs() / dense < 1e-6,
                "n={n}: dense {dense} vs sparse {sparse}"
            );
            assert!(stats.iterations > 0);
        }
    }

    #[test]
    fn operator_rows_are_bitwise_identical_to_csr_rows() {
        for n in [1usize, 2, 7, 64] {
            let op = FaiGlobalOperator::new(n);
            let chain = sparse_global_chain(n).unwrap();
            assert_eq!(op.len(), chain.len(), "n={n}");
            let mut row = Vec::new();
            for i in 0..chain.len() {
                op.row_into(i, &mut row);
                let want: Vec<(u32, f64)> = chain.row(i).collect();
                assert_eq!(row, want, "n={n} row {i}");
            }
        }
    }

    #[test]
    fn operator_latency_is_bit_exact_vs_csr_solve() {
        let opts = PowerOptions::new(400_000, 1e-12);
        for n in [5usize, 64, 500] {
            let chain = sparse_global_chain(n).unwrap();
            let solve = chain.stationary_with(&opts, None).unwrap();
            let succ: Vec<f64> = chain
                .states()
                .iter()
                .map(|&i| i as f64 / n as f64)
                .collect();
            let want = latency_from_success_probabilities(&solve.pi, &succ);
            let (got, stats) = large_system_latency_with(n, &opts, None).unwrap();
            assert_eq!(got.to_bits(), want.to_bits(), "n={n}");
            assert_eq!(stats.iterations, solve.stats.iterations, "n={n}");
        }
    }

    #[test]
    fn operator_return_time_matches_sparse_gauss_seidel() {
        let opts = GaussSeidelOptions::default();
        for n in [3usize, 16, 100, 4096] {
            let sparse = sparse_return_time_of_win_state(n, &opts, None).unwrap();
            let op = operator_return_time_of_win_state(n, &opts, None).unwrap();
            assert_eq!(op.to_bits(), sparse.to_bits(), "n={n}");
        }
        assert_eq!(FaiGlobalOperator::new(9).resident_rows(), 1);
    }

    #[test]
    fn sparse_return_time_matches_dense_and_scales() {
        let opts = GaussSeidelOptions::default();
        for n in [4usize, 16, 64] {
            let dense = return_time_of_win_state(n).unwrap();
            let sparse = sparse_return_time_of_win_state(n, &opts, None).unwrap();
            assert!(
                (dense - sparse).abs() < 1e-7,
                "n={n}: dense {dense} vs sparse {sparse}"
            );
        }
        // Far past any dense solve: Lemma 12's 2√n bound must hold.
        let w = sparse_return_time_of_win_state(10_000, &opts, None).unwrap();
        assert!(w <= 2.0 * 100.0 + 1e-6, "W = {w}");
        assert!(w > 100.0, "W = {w} suspiciously small");
    }
}
