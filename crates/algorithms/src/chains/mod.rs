//! Exact Markov-chain constructions for the paper's algorithms
//! (Sections 6.1.1, 6.2, 7.1).
//!
//! Each submodule builds, for small `n`, both the *individual* chain
//! (states = vectors of per-process extended local states) and the
//! *system* chain (states = anonymous counts), together with the
//! lifting map between them. These are the objects Lemmas 3–7, 10–11,
//! and 13–14 are about; the workspace verifies every lifting
//! numerically via [`pwf_markov::lifting`].
//!
//! State-space sizes are exponential in `n` for individual chains
//! (`3ⁿ − 1` for SCU, `2ⁿ − 1` for fetch-and-increment, `qⁿ` for
//! parallel code), so constructions enforce small-`n` limits; the
//! system chains scale comfortably to hundreds of processes.
//!
//! The system chains are **operator-first**: each family exposes a
//! matrix-free [`pwf_markov::operator::TransitionOperator`]
//! ([`scu::ScuSystemOperator`], [`fai::FaiGlobalOperator`],
//! [`lock::LockSystemOperator`], [`scan::ScanSystemOperator`]) whose
//! rows are generated on demand from the state encoding in the exact
//! float schedule of the CSR construction, so operator solves are
//! bit-identical to solving the stored chain. The CSR builders (via
//! [`pwf_markov::sparse::SparseChainBuilder`]) are retained as the
//! small-`n` oracles, and the dense variants are
//! [`pwf_markov::sparse::SparseChain::to_dense`] conversions of those.
//! Past the enumeration wall, the SCU lifting is verified by the
//! symmetry-reduced, matrix-free kernel check
//! ([`scu::verify_lifting_by_symmetry`], chunked for parallel fan-out
//! by [`scu::orbit_chunks`]) and latencies come from the adaptive
//! iterative solvers.
//!
//! ## A note on the paper's printed transition probabilities
//!
//! The arXiv version's list of system-chain transitions in
//! Section 6.1.1 does not sum to 1 (an apparent typo). The transitions
//! implemented in [`scu`] are derived directly from the individual
//! chain's dynamics — from state `(a, b)` with `c = n − a − b`
//! processes holding a current CAS:
//!
//! * a `Read` process steps (probability `a/n`): it now holds a
//!   current CAS → `(a−1, b)`;
//! * an `OldCAS` process steps (probability `b/n`): its CAS fails and
//!   it returns to reading → `(a+1, b−1)`;
//! * a `CCAS` process steps (probability `c/n`): it **succeeds**; the
//!   winner returns to reading and every other current CAS becomes
//!   stale → `(a+1, n−a−1)`.
//!
//! The verified lifting from the individual chain (which follows the
//! paper's prose exactly) confirms this correction.

pub mod fai;
pub mod lock;
pub mod parallel;
pub mod scan;
pub mod scu;

/// Expected steps between successes given per-state success
/// probabilities and a stationary distribution: `W = 1 / Σ π_x μ_x`.
///
/// # Panics
///
/// Panics if the slices differ in length or the aggregate success
/// probability is zero.
pub fn latency_from_success_probabilities(pi: &[f64], success: &[f64]) -> f64 {
    assert_eq!(pi.len(), success.len(), "length mismatch");
    let mu: f64 = pi.iter().zip(success).map(|(p, s)| p * s).sum();
    assert!(mu > 0.0, "success probability is zero in stationarity");
    1.0 / mu
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_reciprocal_success_rate() {
        let w = latency_from_success_probabilities(&[0.5, 0.5], &[0.2, 0.6]);
        assert!((w - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero")]
    fn zero_success_panics() {
        let _ = latency_from_success_probabilities(&[1.0], &[0.0]);
    }
}
