//! Exact system chain for the full scan region `SCU(0, s)` with
//! honest *mid-scan invalidation* — an extension beyond the paper.
//!
//! Corollary 1 handles `s > 1` by multiplying the `s = 1` bounds by
//! `s`, arguing that a process's extended local state only changes
//! when it is "about to perform a CAS". Strictly, a process *mid-scan*
//! is also invalidated the moment another process's CAS succeeds (its
//! eventual CAS will fail because it read `R` before the change).
//! This module builds the exact chain for that finer model:
//!
//! Per-process extended state (``2s + 1`` cells):
//!
//! * `Pos(0)` — about to read `R` (a fresh scan);
//! * `Pos(j, valid)` for `1 ≤ j < s` — about to take scan step `j`,
//!   where `valid` records whether `R` is unchanged since its step-0
//!   read;
//! * `Cas(valid)` — about to CAS; succeeds iff `valid`.
//!
//! On a success every *valid* mid-scan or pending-CAS process becomes
//! invalid. The system chain tracks occupancy counts of the cells and
//! is built sparsely over the reachable set only.

use pwf_markov::chain::ChainError;
use pwf_markov::operator::{stationary_operator, TransitionOperator};
use pwf_markov::solve::{Metrics, PowerOptions, SolveStats};
use pwf_markov::sparse::{SparseChain, SparseChainBuilder};

use super::latency_from_success_probabilities;
use super::scu::LatencyError;

/// Occupancy state: counts per cell, length `2s + 1`, in the order
/// `[Pos0, Pos1V, Pos1I, …, Pos(s−1)V, Pos(s−1)I, CasV, CasI]`.
pub type ScanState = Vec<u16>;

/// Cell layout helper for `SCU(0, s)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellLayout {
    /// Scan length `s ≥ 1`.
    pub s: usize,
}

impl CellLayout {
    /// Number of cells `2s + 1`.
    pub fn cells(&self) -> usize {
        2 * self.s + 1
    }

    /// Index of `Pos(0)`.
    pub fn pos0(&self) -> usize {
        0
    }

    /// Index of `Pos(j, valid?)` for `1 ≤ j < s`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn pos(&self, j: usize, valid: bool) -> usize {
        assert!((1..self.s).contains(&j), "scan position out of range");
        1 + 2 * (j - 1) + usize::from(!valid)
    }

    /// Index of `Cas(valid?)`.
    pub fn cas(&self, valid: bool) -> usize {
        2 * (self.s - 1) + 1 + usize::from(!valid)
    }

    /// The cell a process moves to after taking a step from `cell`,
    /// ignoring success side-effects (`None` marks "successful CAS",
    /// which needs global handling).
    fn advance(&self, cell: usize) -> Option<usize> {
        if cell == self.pos0() {
            // Fresh read of R: the view is valid.
            return Some(if self.s == 1 {
                self.cas(true)
            } else {
                self.pos(1, true)
            });
        }
        if cell == self.cas(true) {
            return None; // success
        }
        if cell == self.cas(false) {
            return Some(self.pos0()); // failed CAS, restart
        }
        // Mid-scan cell: advance preserving validity.
        let j = 1 + (cell - 1) / 2;
        let valid = (cell - 1) % 2 == 0;
        Some(if j + 1 < self.s {
            self.pos(j + 1, valid)
        } else {
            self.cas(valid)
        })
    }
}

/// The successor occupancy when a process in `cell` is scheduled —
/// the single source of truth shared by the CSR builder and the
/// matrix-free operator.
fn successor(layout: &CellLayout, state: &ScanState, cell: usize) -> ScanState {
    match layout.advance(cell) {
        Some(target) => {
            let mut next = state.clone();
            next[cell] -= 1;
            next[target] += 1;
            next
        }
        None => {
            // Success by a Cas(valid) process: winner → Pos0,
            // every other valid process becomes invalid.
            let s = layout.s;
            let mut next = state.clone();
            next[layout.cas(true)] -= 1;
            next[layout.pos0()] += 1;
            for j in 1..s {
                let v = layout.pos(j, true);
                let i = layout.pos(j, false);
                next[i] += next[v];
                next[v] = 0;
            }
            let (cv, ci) = (layout.cas(true), layout.cas(false));
            next[ci] += next[cv];
            next[cv] = 0;
            next
        }
    }
}

/// Builds the reachable system chain for `SCU(0, s)` on `n` processes
/// under the uniform scheduler, with mid-scan invalidation.
///
/// # Errors
///
/// Propagates chain-validation errors (none occur for valid inputs).
///
/// # Panics
///
/// Panics if `n == 0`, `s == 0`, or `n > u16::MAX as usize`.
pub fn system_chain(n: usize, s: usize) -> Result<SparseChain<ScanState>, ChainError> {
    assert!(n >= 1, "need at least one process");
    assert!(s >= 1, "scan region must be non-empty");
    assert!(n <= u16::MAX as usize, "n must fit in u16 counts");
    let layout = CellLayout { s };
    let cells = layout.cells();
    let nf = n as f64;

    // BFS over reachable occupancy states from the all-Pos0 start.
    let mut initial = vec![0u16; cells];
    initial[layout.pos0()] = n as u16;

    let mut builder = SparseChainBuilder::new();
    let mut frontier = vec![initial.clone()];
    let mut seen = std::collections::HashSet::new();
    seen.insert(initial.clone());
    builder.state(initial);

    while let Some(state) = frontier.pop() {
        for cell in 0..cells {
            if state[cell] == 0 {
                continue;
            }
            let p = state[cell] as f64 / nf;
            let next = successor(&layout, &state, cell);
            if seen.insert(next.clone()) {
                frontier.push(next.clone());
            }
            builder.transition(state.clone(), next, p);
        }
    }
    builder.build()
}

/// The matrix-free transition operator of the scan system chain: the
/// reachable state *labels* are enumerated once (same traversal and
/// interning order as [`system_chain`]), but transition rows are
/// regenerated on demand from the occupancy dynamics — `O(states·s)`
/// label memory instead of `O(nnz)` matrix entries, with rows
/// bit-identical to the CSR construction (same insertion order, same
/// sort, same duplicate merge).
#[derive(Debug, Clone)]
pub struct ScanSystemOperator {
    n: usize,
    layout: CellLayout,
    states: Vec<ScanState>,
    index: std::collections::HashMap<ScanState, usize>,
}

impl ScanSystemOperator {
    /// Enumerates the reachable states for `n` processes and scan
    /// length `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `s == 0`, or `n > u16::MAX as usize`.
    pub fn new(n: usize, s: usize) -> Self {
        assert!(n >= 1, "need at least one process");
        assert!(s >= 1, "scan region must be non-empty");
        assert!(n <= u16::MAX as usize, "n must fit in u16 counts");
        let layout = CellLayout { s };
        let cells = layout.cells();
        let mut initial = vec![0u16; cells];
        initial[layout.pos0()] = n as u16;

        // Identical traversal to system_chain: interning on first
        // transition target preserves the builder's index order.
        let mut states = vec![initial.clone()];
        let mut index = std::collections::HashMap::new();
        index.insert(initial.clone(), 0usize);
        let mut frontier = vec![initial.clone()];
        let mut seen = std::collections::HashSet::new();
        seen.insert(initial);
        while let Some(state) = frontier.pop() {
            for cell in 0..cells {
                if state[cell] == 0 {
                    continue;
                }
                let next = successor(&layout, &state, cell);
                if seen.insert(next.clone()) {
                    frontier.push(next.clone());
                }
                if !index.contains_key(&next) {
                    index.insert(next.clone(), states.len());
                    states.push(next);
                }
            }
        }
        ScanSystemOperator {
            n,
            layout,
            states,
            index,
        }
    }

    /// The reachable states, in index order.
    pub fn states(&self) -> &[ScanState] {
        &self.states
    }

    /// The cell layout in use.
    pub fn layout(&self) -> CellLayout {
        self.layout
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }
}

impl TransitionOperator for ScanSystemOperator {
    fn len(&self) -> usize {
        self.states.len()
    }

    fn row_into(&self, i: usize, row: &mut Vec<(u32, f64)>) {
        row.clear();
        let state = &self.states[i];
        let nf = self.n as f64;
        for cell in 0..self.layout.cells() {
            if state[cell] == 0 {
                continue;
            }
            let next = successor(&self.layout, state, cell);
            let j = self.index[&next];
            row.push((j as u32, state[cell] as f64 / nf));
        }
        // Canonicalize exactly as SparseChainBuilder::build does:
        // sort by target, then merge duplicates by summing in order.
        row.sort_unstable_by_key(|&(j, _)| j);
        let mut w = 0;
        let mut k = 0;
        while k < row.len() {
            let (j, mut p) = row[k];
            k += 1;
            while k < row.len() && row[k].0 == j {
                p += row[k].1;
                k += 1;
            }
            row[w] = (j, p);
            w += 1;
        }
        row.truncate(w);
    }

    fn resident_rows(&self) -> usize {
        1
    }
}

/// Exact system latency of `SCU(0, s)` with mid-scan invalidation,
/// via the adaptive sparse solver, with solver statistics and optional
/// metrics publication.
///
/// # Errors
///
/// Propagates chain construction and solver-convergence errors.
pub fn exact_system_latency_with(
    n: usize,
    s: usize,
    opts: &PowerOptions,
    metrics: Option<&Metrics>,
) -> Result<(f64, SolveStats), LatencyError> {
    let layout = CellLayout { s };
    let chain = system_chain(n, s)?;
    let solve = chain
        .stationary_with(opts, metrics)
        .map_err(LatencyError::Stationary)?;
    let succ: Vec<f64> = chain
        .states()
        .iter()
        .map(|state| state[layout.cas(true)] as f64 / n as f64)
        .collect();
    Ok((
        latency_from_success_probabilities(&solve.pi, &succ),
        solve.stats,
    ))
}

/// Exact system latency of `SCU(0, s)` with mid-scan invalidation.
///
/// # Errors
///
/// Propagates chain construction and solver-convergence errors.
pub fn exact_system_latency(n: usize, s: usize) -> Result<f64, LatencyError> {
    exact_system_latency_with(n, s, &PowerOptions::new(500_000, 1e-12), None).map(|(w, _)| w)
}

/// Matrix-free counterpart of [`exact_system_latency_with`]: solves on
/// [`ScanSystemOperator`], regenerating rows each sweep instead of
/// storing the CSR matrix. Bit-identical to the CSR solve.
///
/// # Errors
///
/// Propagates solver-convergence errors.
///
/// # Panics
///
/// Panics on the construction bounds of [`ScanSystemOperator::new`].
pub fn operator_system_latency_with(
    n: usize,
    s: usize,
    opts: &PowerOptions,
    metrics: Option<&Metrics>,
) -> Result<(f64, SolveStats), LatencyError> {
    let op = ScanSystemOperator::new(n, s);
    let solve = stationary_operator(&op, opts, metrics).map_err(LatencyError::Stationary)?;
    let cas_v = op.layout().cas(true);
    let succ: Vec<f64> = op
        .states()
        .iter()
        .map(|state| state[cas_v] as f64 / n as f64)
        .collect();
    Ok((
        latency_from_success_probabilities(&solve.pi, &succ),
        solve.stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chains::scu;

    #[test]
    fn layout_indices_are_disjoint_and_dense() {
        for s in 1..5 {
            let l = CellLayout { s };
            let mut seen = vec![false; l.cells()];
            seen[l.pos0()] = true;
            for j in 1..s {
                for valid in [true, false] {
                    let i = l.pos(j, valid);
                    assert!(!seen[i], "collision at s={s}, j={j}");
                    seen[i] = true;
                }
            }
            for valid in [true, false] {
                let i = l.cas(valid);
                assert!(!seen[i], "collision at cas s={s}");
                seen[i] = true;
            }
            assert!(seen.iter().all(|&b| b), "gap in layout s={s}");
        }
    }

    #[test]
    fn s_equals_one_reproduces_the_paper_chain() {
        for n in [2usize, 4, 8, 16] {
            let fine = exact_system_latency(n, 1).unwrap();
            let paper = scu::exact_system_latency(n).unwrap();
            assert!(
                (fine - paper).abs() / paper < 1e-7,
                "n={n}: fine {fine} vs paper {paper}"
            );
        }
    }

    #[test]
    fn reachable_chain_is_irreducible() {
        for (n, s) in [(3usize, 2usize), (4, 2), (3, 3)] {
            let c = system_chain(n, s).unwrap();
            assert!(c.is_irreducible(), "n={n} s={s}");
        }
    }

    #[test]
    fn corollary_1_latency_scales_multiplicatively_in_s() {
        // W(s) for fixed n should grow close to ×s (the paper's
        // Corollary 1 claims O(s√n)).
        let n = 8;
        let w1 = exact_system_latency(n, 1).unwrap();
        let w2 = exact_system_latency(n, 2).unwrap();
        let w4 = exact_system_latency(n, 4).unwrap();
        let r2 = w2 / w1;
        let r4 = w4 / w1;
        assert!(r2 > 1.6 && r2 < 2.8, "W(2)/W(1) = {r2}");
        assert!(r4 > 3.0 && r4 < 6.5, "W(4)/W(1) = {r4}");
    }

    #[test]
    fn fine_model_matches_simulation() {
        // The honest chain should match the simulated SCU(0, s) —
        // closing the gap Corollary 1 papers over with a constant.
        use pwf_core_free_check::sim_latency;
        for (n, s) in [(4usize, 2usize), (4, 3), (8, 2)] {
            let chain = exact_system_latency(n, s).unwrap();
            let sim = sim_latency(n, s);
            assert!(
                (chain - sim).abs() / sim < 0.03,
                "n={n}, s={s}: chain {chain} vs sim {sim}"
            );
        }
    }

    /// Minimal local simulation helper (kept here to avoid a circular
    /// dev-dependency on pwf-core).
    mod pwf_core_free_check {
        use crate::scu::{ScuObject, ScuProcess};
        use pwf_sim::executor::{run, RunConfig};
        use pwf_sim::memory::SharedMemory;
        use pwf_sim::process::{Process, ProcessId};
        use pwf_sim::scheduler::UniformScheduler;
        use pwf_sim::stats::system_latency;

        pub fn sim_latency(n: usize, s: usize) -> f64 {
            let mut mem = SharedMemory::new();
            let obj = ScuObject::alloc(&mut mem, s);
            let mut ps: Vec<Box<dyn Process>> = (0..n)
                .map(|i| {
                    Box::new(ScuProcess::new(ProcessId::new(i), obj.clone(), 0, s))
                        as Box<dyn Process>
                })
                .collect();
            let exec = run(
                &mut ps,
                &mut UniformScheduler::new(),
                &mut mem,
                &RunConfig::new(600_000).seed(500),
            );
            system_latency(&exec).expect("completions").mean
        }
    }

    #[test]
    fn operator_reproduces_csr_interning_and_rows_bitwise() {
        for (n, s) in [(2usize, 1usize), (4, 2), (3, 3), (8, 2)] {
            let op = ScanSystemOperator::new(n, s);
            let chain = system_chain(n, s).unwrap();
            assert_eq!(op.len(), chain.len(), "n={n} s={s}");
            assert_eq!(op.states(), chain.states(), "n={n} s={s}");
            let mut row = Vec::new();
            for i in 0..chain.len() {
                op.row_into(i, &mut row);
                let want: Vec<(u32, f64)> = chain.row(i).collect();
                assert_eq!(row, want, "n={n} s={s} row {i}");
            }
        }
        assert_eq!(ScanSystemOperator::new(4, 2).resident_rows(), 1);
    }

    #[test]
    fn operator_latency_is_bit_exact_vs_csr_solve() {
        let opts = PowerOptions::new(500_000, 1e-12);
        for (n, s) in [(4usize, 2usize), (8, 2), (6, 3)] {
            let (want, want_stats) = exact_system_latency_with(n, s, &opts, None).unwrap();
            let (got, stats) = operator_system_latency_with(n, s, &opts, None).unwrap();
            assert_eq!(got.to_bits(), want.to_bits(), "n={n} s={s}");
            assert_eq!(stats.iterations, want_stats.iterations, "n={n} s={s}");
        }
    }

    #[test]
    fn state_count_grows_with_s() {
        let c1 = system_chain(4, 1).unwrap();
        let c2 = system_chain(4, 2).unwrap();
        assert!(c2.len() > c1.len());
    }
}
