//! A simulated Treiber stack (reference \[21\] in the paper) — the
//! canonical `SCU(q, 1)`-shaped data structure: each push/pop scans
//! the head register and validates with a single CAS.
//!
//! Nodes live in per-process pools; head values pack `(tag, slot)`
//! with a monotonically increasing tag so node reuse cannot cause ABA.
//! A sequential shadow stack is threaded through the simulation (the
//! simulator executes one atomic step at a time, so successful CASes
//! are linearization points) and every pop is checked against it.

use std::cell::RefCell;
use std::rc::Rc;

use pwf_sim::memory::{RegisterId, SharedMemory};
use pwf_sim::process::{Process, ProcessId, StepOutcome};

/// Sentinel head value for the empty stack.
const EMPTY: u64 = 0;

fn pack(tag: u32, slot: u32) -> u64 {
    ((tag as u64) << 32) | slot as u64
}

fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

/// Bookkeeping shared by all handles of one stack: the shadow model,
/// the free-slot pool, and the global ABA tag counter.
///
/// Slot allocation models local memory management (`malloc`/`free`),
/// which the paper's cost model treats as free local computation; the
/// *shared-memory* protocol is untouched by it. Tags come from a
/// single rising counter, so a recycled slot always re-enters the
/// stack under a head value that was never used before — ruling out
/// ABA by construction.
#[derive(Debug)]
struct StackMeta {
    shadow: Vec<u64>,
    free_slots: Vec<u32>,
    next_tag: u32,
}

/// The shared registers of a simulated Treiber stack: a head register
/// plus one `next` register and one `value` register per node slot.
#[derive(Debug, Clone)]
pub struct SimStack {
    head: RegisterId,
    next: Vec<RegisterId>,
    value: Vec<RegisterId>,
    meta: Rc<RefCell<StackMeta>>,
}

impl SimStack {
    /// Allocates a stack with `slots` node slots (slot 0 is reserved
    /// as the null sentinel). The pool must be large enough for the
    /// peak number of live plus in-flight nodes; with `n` processes
    /// alternating push/pop, `2n + 1` slots always suffice.
    ///
    /// # Panics
    ///
    /// Panics if `slots < 2`.
    pub fn alloc(mem: &mut SharedMemory, slots: usize) -> Self {
        assert!(slots >= 2, "need at least one usable slot");
        let head = mem.alloc(EMPTY);
        let next = (0..slots).map(|_| mem.alloc(EMPTY)).collect();
        let value = (0..slots).map(|_| mem.alloc(0)).collect();
        SimStack {
            head,
            next,
            value,
            meta: Rc::new(RefCell::new(StackMeta {
                shadow: Vec::new(),
                free_slots: (1..slots as u32).rev().collect(),
                next_tag: 0,
            })),
        }
    }

    /// The abstract stack contents according to the shadow model
    /// (bottom to top).
    pub fn shadow_contents(&self) -> Vec<u64> {
        self.meta.borrow().shadow.clone()
    }

    /// Number of node slots.
    pub fn slots(&self) -> usize {
        self.next.len()
    }

    fn take_slot(&self) -> u64 {
        let mut meta = self.meta.borrow_mut();
        let slot = meta
            .free_slots
            .pop()
            .expect("slot pool exhausted: allocate the stack with more slots");
        meta.next_tag += 1;
        pack(meta.next_tag, slot)
    }

    fn release_slot(&self, slot: u32) {
        self.meta.borrow_mut().free_slots.push(slot);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Push,
    Pop,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Read the head register (scan).
    ReadHead,
    /// Push, first attempt only: initialize the new node's value
    /// (the preamble of the operation in `SCU` terms).
    InitNode,
    /// Push only: write the new node's `next` pointer.
    WriteNext,
    /// Pop only: read the head node's `next` pointer.
    ReadNext,
    /// CAS the head register (validate).
    Cas,
}

/// A process alternating push and pop operations on a [`SimStack`].
///
/// Nodes are drawn from the stack's shared slot pool with globally
/// unique tags, so the stack runs indefinitely in bounded memory
/// without ABA.
#[derive(Debug, Clone)]
pub struct StackProcess {
    id: ProcessId,
    stack: SimStack,
    op: Op,
    phase: Phase,
    /// Head value observed by the scan.
    observed: u64,
    /// For push: the packed node being linked in.
    pending_node: u64,
    /// For push: the value stored in the pending node.
    pending_value: u64,
    /// Whether the pending node has been initialized (survives failed
    /// CAS retries, like a real allocated node).
    node_ready: bool,
    /// For pop: the observed head's successor.
    successor: u64,
    /// Monotone counter making pushed values unique per process.
    push_seq: u64,
    /// Completed (op, value) log for verification.
    log: Vec<(bool, u64)>,
}

impl StackProcess {
    /// Creates a stack process.
    pub fn new(id: ProcessId, stack: SimStack) -> Self {
        StackProcess {
            id,
            stack,
            op: Op::Push,
            phase: Phase::ReadHead,
            observed: EMPTY,
            pending_node: EMPTY,
            pending_value: 0,
            node_ready: false,
            successor: EMPTY,
            push_seq: 0,
            log: Vec::new(),
        }
    }

    /// The completed operations `(is_push, value)` of this process.
    pub fn log(&self) -> &[(bool, u64)] {
        &self.log
    }

    fn begin_next_op(&mut self) {
        self.op = match self.op {
            Op::Push => Op::Pop,
            Op::Pop => Op::Push,
        };
        self.phase = Phase::ReadHead;
    }
}

impl Process for StackProcess {
    fn step(&mut self, mem: &mut SharedMemory) -> StepOutcome {
        match (self.op, self.phase) {
            (_, Phase::ReadHead) => {
                self.observed = mem.read(self.stack.head);
                self.phase = match self.op {
                    Op::Push if !self.node_ready => Phase::InitNode,
                    Op::Push => Phase::WriteNext,
                    Op::Pop if self.observed == EMPTY => {
                        // Empty pop: reading an empty head completes
                        // the operation (returns "empty").
                        self.log.push((false, u64::MAX));
                        self.begin_next_op();
                        return StepOutcome::Completed;
                    }
                    Op::Pop => Phase::ReadNext,
                };
                StepOutcome::Ongoing
            }
            (Op::Push, Phase::InitNode) => {
                self.pending_node = self.stack.take_slot();
                self.pending_value = ((self.id.index() as u64) << 48) | self.push_seq;
                self.push_seq += 1;
                let (_, slot) = unpack(self.pending_node);
                mem.write(self.stack.value[slot as usize], self.pending_value);
                self.node_ready = true;
                self.phase = Phase::WriteNext;
                StepOutcome::Ongoing
            }
            (Op::Push, Phase::WriteNext) => {
                let (_, slot) = unpack(self.pending_node);
                mem.write(self.stack.next[slot as usize], self.observed);
                self.phase = Phase::Cas;
                StepOutcome::Ongoing
            }
            (Op::Pop, Phase::ReadNext) => {
                let (_, slot) = unpack(self.observed);
                self.successor = mem.read(self.stack.next[slot as usize]);
                self.phase = Phase::Cas;
                StepOutcome::Ongoing
            }
            (Op::Push, Phase::Cas) => {
                if mem.cas(self.stack.head, self.observed, self.pending_node) {
                    self.node_ready = false;
                    self.stack.meta.borrow_mut().shadow.push(self.pending_value);
                    self.log.push((true, self.pending_value));
                    self.begin_next_op();
                    StepOutcome::Completed
                } else {
                    self.phase = Phase::ReadHead;
                    StepOutcome::Ongoing
                }
            }
            (Op::Pop, Phase::Cas) => {
                if mem.cas(self.stack.head, self.observed, self.successor) {
                    let (_, slot) = unpack(self.observed);
                    let value = mem.peek(self.stack.value[slot as usize]);
                    self.stack.release_slot(slot);
                    let expected = self
                        .stack
                        .meta
                        .borrow_mut()
                        .shadow
                        .pop()
                        .expect("shadow stack must not be empty at a successful pop");
                    assert_eq!(
                        value, expected,
                        "linearizability violation: popped {value}, shadow had {expected}"
                    );
                    self.log.push((false, value));
                    self.begin_next_op();
                    StepOutcome::Completed
                } else {
                    self.phase = Phase::ReadHead;
                    StepOutcome::Ongoing
                }
            }
            (op, phase) => unreachable!("invalid state {op:?}/{phase:?}"),
        }
    }

    fn name(&self) -> &'static str {
        "treiber-stack"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwf_sim::executor::{run, RunConfig};
    use pwf_sim::scheduler::{AdversarialScheduler, UniformScheduler};

    fn fleet(mem: &mut SharedMemory, n: usize) -> (SimStack, Vec<Box<dyn Process>>) {
        let stack = SimStack::alloc(mem, 1 + 4 * n);
        let ps: Vec<Box<dyn Process>> = (0..n)
            .map(|i| {
                Box::new(StackProcess::new(ProcessId::new(i), stack.clone())) as Box<dyn Process>
            })
            .collect();
        (stack, ps)
    }

    #[test]
    fn solo_push_pop_alternation() {
        let mut mem = SharedMemory::new();
        let (stack, mut ps) = fleet(&mut mem, 1);
        let exec = run(
            &mut ps,
            &mut AdversarialScheduler::solo(ProcessId::new(0)),
            &mut mem,
            &RunConfig::new(1_000),
        );
        // Push = 4 steps, pop of non-empty = 3 steps; alternating.
        assert!(exec.total_completions() >= 250);
        assert!(stack.shadow_contents().len() <= 1);
    }

    #[test]
    fn concurrent_stack_is_linearizable_under_uniform() {
        // The shadow assertions inside StackProcess fire on any
        // linearizability violation; surviving a long contended run is
        // the test.
        let mut mem = SharedMemory::new();
        let (_, mut ps) = fleet(&mut mem, 6);
        let exec = run(
            &mut ps,
            &mut UniformScheduler::new(),
            &mut mem,
            &RunConfig::new(200_000).seed(37),
        );
        assert!(exec.total_completions() > 10_000);
    }

    #[test]
    fn all_processes_progress() {
        let mut mem = SharedMemory::new();
        let (_, mut ps) = fleet(&mut mem, 4);
        let exec = run(
            &mut ps,
            &mut UniformScheduler::new(),
            &mut mem,
            &RunConfig::new(100_000).seed(41),
        );
        for i in 0..4 {
            assert!(exec.process_completions[i] > 100, "process {i} starved");
        }
    }

    #[test]
    fn aba_tags_prevent_stale_cas() {
        // Regression-style check: run long enough that every slot is
        // recycled many times; shadow assertions catch ABA corruption.
        let mut mem = SharedMemory::new();
        let (stack, mut ps) = fleet(&mut mem, 2);
        let exec = run(
            &mut ps,
            &mut UniformScheduler::new(),
            &mut mem,
            &RunConfig::new(300_000).seed(43),
        );
        assert!(exec.total_completions() as usize > 10 * stack.slots());
    }

    #[test]
    #[should_panic(expected = "slot pool exhausted")]
    fn exhausted_slot_pool_panics() {
        // 2 slots (1 usable) but two processes mid-push.
        let mut mem = SharedMemory::new();
        let stack = SimStack::alloc(&mut mem, 2);
        let mut a = StackProcess::new(ProcessId::new(0), stack.clone());
        let mut b = StackProcess::new(ProcessId::new(1), stack);
        // Both read head, then both try to init a node.
        a.step(&mut mem);
        b.step(&mut mem);
        a.step(&mut mem);
        b.step(&mut mem);
    }

    #[test]
    fn slots_are_recycled() {
        let mut mem = SharedMemory::new();
        let (stack, mut ps) = fleet(&mut mem, 1);
        let exec = run(
            &mut ps,
            &mut AdversarialScheduler::solo(ProcessId::new(0)),
            &mut mem,
            &RunConfig::new(7_000),
        );
        // ~1000 pushes through a 5-slot pool: heavy recycling, and the
        // shadow assertions confirm no ABA corruption.
        assert!(exec.total_completions() > 1_500);
        assert!(stack.slots() == 5);
    }
}
