//! Fully parallel target (paper, Algorithm 4): each process works on
//! its own register only, so *every* pair of steps from distinct
//! processes is independent and partial-order reduction collapses the
//! whole schedule tree to a single execution — the yardstick for the
//! reported reduction ratio.

use pwf_sim::memory::{fnv1a, RegisterId, SharedMemory};
use pwf_sim::process::{Process, StepOutcome};

use crate::op::OpRecord;
use crate::spec::Spec;
use crate::target::{CheckConfig, CheckProcess, CheckTarget, Progress};

/// A process performing `q`-step operations on its own register:
/// `q − 1` reads followed by a write publishing a fresh value. Checked
/// against the single-writer snapshot spec (updates are always legal;
/// the point of this target is the schedule *count*, not the object).
pub struct OwnRegisterWriter {
    reg: RegisterId,
    writer: usize,
    q: usize,
    pos: usize,
    count: u64,
}

impl OwnRegisterWriter {
    /// Creates writer `writer` doing `q`-step operations on `reg`.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`.
    pub fn new(reg: RegisterId, writer: usize, q: usize) -> Self {
        assert!(q > 0, "operations need at least one step");
        OwnRegisterWriter {
            reg,
            writer,
            q,
            pos: 0,
            count: 0,
        }
    }
}

impl Process for OwnRegisterWriter {
    fn step(&mut self, mem: &mut SharedMemory) -> StepOutcome {
        if self.pos + 1 < self.q {
            let _ = mem.read(self.reg);
            self.pos += 1;
            StepOutcome::Ongoing
        } else {
            self.count += 1;
            mem.write(self.reg, self.count);
            self.pos = 0;
            StepOutcome::Completed
        }
    }

    fn name(&self) -> &'static str {
        "own-register-writer"
    }
}

impl CheckProcess for OwnRegisterWriter {
    fn last_op(&self) -> OpRecord {
        OpRecord {
            name: "update",
            input: Some(Spec::pack_update(self.writer, self.count)),
            output: None,
        }
    }

    fn local_fingerprint(&self) -> u64 {
        fnv1a(0x243F_6A88, &[self.pos as u64, self.count])
    }
}

fn build_parallel() -> CheckConfig {
    let n = 2;
    let q = 3;
    let mut mem = SharedMemory::new();
    let procs: Vec<Box<dyn CheckProcess>> = (0..n)
        .map(|i| {
            let reg = mem.alloc(0);
            Box::new(OwnRegisterWriter::new(reg, i, q)) as Box<dyn CheckProcess>
        })
        .collect();
    CheckConfig {
        mem,
        procs,
        spec: Spec::snapshot(n),
        budgets: vec![2; n],
    }
}

/// Disjoint-register parallel work, 2 processes × 2 three-step ops.
pub const PARALLEL: CheckTarget = CheckTarget {
    name: "parallel",
    description: "disjoint registers (Algorithm 4), n=2, 2 three-step ops each",
    expect_failure: false,
    progress: Progress::LockFree,
    build: build_parallel,
};
