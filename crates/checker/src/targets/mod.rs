//! The built-in target registry: the paper's algorithms in small,
//! exhaustively checkable configurations, plus the seeded mutants the
//! checker must catch.

pub mod counter;
pub mod dedup;
pub mod parallel;
pub mod scu;
pub mod stack;

use crate::target::CheckTarget;

/// All built-in targets, correct configurations first.
pub fn registry() -> Vec<CheckTarget> {
    vec![
        counter::FAI_COUNTER,
        stack::TAGGED_STACK,
        stack::ABA_SCENARIO_TAGGED,
        stack::TAGGED_STACK_N3,
        scu::SCU_0_1,
        scu::SCU_2_2,
        scu::SCU_2_2_N3,
        parallel::PARALLEL,
        dedup::DEDUP,
        counter::RW_COUNTER_MUTANT,
        stack::ABA_MUTANT,
        counter::LIVELOCK_MUTANT,
        counter::SPINNER_PAIR_MUTANT,
        dedup::LOST_WAKEUP_MUTANT,
    ]
}

/// The subset checked by `pwf vet --fast` (counter, stack, and dedup
/// families, including their mutants — the CI smoke configuration).
pub fn fast_registry() -> Vec<CheckTarget> {
    vec![
        counter::FAI_COUNTER,
        stack::TAGGED_STACK,
        dedup::DEDUP,
        counter::RW_COUNTER_MUTANT,
        stack::ABA_MUTANT,
        dedup::LOST_WAKEUP_MUTANT,
    ]
}

/// Looks a target up by its CLI name.
pub fn find(name: &str) -> Option<CheckTarget> {
    registry().into_iter().find(|t| t.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique() {
        let mut names: Vec<&str> = registry().iter().map(|t| t.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), registry().len());
    }

    #[test]
    fn every_target_builds_consistently() {
        for target in registry() {
            let cfg = target.build();
            assert_eq!(cfg.procs.len(), cfg.budgets.len(), "{}", target.name);
            assert!(cfg.total_ops() > 0, "{}", target.name);
        }
    }

    #[test]
    fn fast_registry_is_a_subset() {
        for t in fast_registry() {
            assert!(find(t.name).is_some());
        }
    }
}
