//! Counter targets: the paper's fetch-and-increment (Algorithm 5) and
//! a deliberately non-linearizable read-then-write mutant.

use pwf_algorithms::fai::FaiProcess;
use pwf_sim::memory::{fnv1a, RegisterId, SharedMemory};
use pwf_sim::process::{Process, StepOutcome};

use crate::op::OpRecord;
use crate::spec::Spec;
use crate::target::{CheckConfig, CheckProcess, CheckTarget, Progress};

/// [`FaiProcess`] lifted into a checkable process.
pub struct FaiAdapter {
    inner: FaiProcess,
}

impl FaiAdapter {
    /// Wraps a fetch-and-increment process on `counter`.
    pub fn new(counter: RegisterId) -> Self {
        FaiAdapter {
            inner: FaiProcess::new(counter),
        }
    }
}

impl Process for FaiAdapter {
    fn step(&mut self, mem: &mut SharedMemory) -> StepOutcome {
        self.inner.step(mem)
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

impl CheckProcess for FaiAdapter {
    fn last_op(&self) -> OpRecord {
        OpRecord {
            name: "inc",
            input: None,
            output: self.inner.last_win(),
        }
    }

    fn local_fingerprint(&self) -> u64 {
        self.inner.fingerprint()
    }
}

/// The classic broken counter: `inc` *reads* the register in one step
/// and *writes* `read + 1` in the next, with no validation in between
/// — the textbook lost-update race a CAS (or fetch-and-inc) exists to
/// prevent. Two overlapping increments can both return the same value.
pub struct RwCounter {
    reg: RegisterId,
    seen: Option<u64>,
    last: u64,
}

impl RwCounter {
    /// Creates a read-then-write counter process on `reg`.
    pub fn new(reg: RegisterId) -> Self {
        RwCounter {
            reg,
            seen: None,
            last: 0,
        }
    }
}

impl Process for RwCounter {
    fn step(&mut self, mem: &mut SharedMemory) -> StepOutcome {
        match self.seen {
            None => {
                self.seen = Some(mem.read(self.reg));
                StepOutcome::Ongoing
            }
            Some(v) => {
                mem.write(self.reg, v + 1);
                self.seen = None;
                self.last = v;
                StepOutcome::Completed
            }
        }
    }

    fn name(&self) -> &'static str {
        "rw-counter"
    }
}

impl CheckProcess for RwCounter {
    fn last_op(&self) -> OpRecord {
        OpRecord {
            name: "inc",
            input: None,
            output: Some(self.last),
        }
    }

    fn local_fingerprint(&self) -> u64 {
        fnv1a(0x6A09_E667, &[self.seen.map_or(u64::MAX, |v| v)])
    }
}

/// A process that spins reading a register and never completes its
/// operation: the minimal lock-freedom violation. Any schedule
/// confining itself to spinners revisits a global state without a
/// completion, which the explorer reports as a livelock.
pub struct Spinner {
    reg: RegisterId,
}

impl Spinner {
    /// Creates a spinner on `reg`.
    pub fn new(reg: RegisterId) -> Self {
        Spinner { reg }
    }
}

impl Process for Spinner {
    fn step(&mut self, mem: &mut SharedMemory) -> StepOutcome {
        let _ = mem.read(self.reg);
        StepOutcome::Ongoing
    }

    fn name(&self) -> &'static str {
        "spinner"
    }
}

impl CheckProcess for Spinner {
    fn last_op(&self) -> OpRecord {
        unreachable!("a spinner never completes an operation")
    }

    fn local_fingerprint(&self) -> u64 {
        0
    }
}

fn build_fai() -> CheckConfig {
    let mut mem = SharedMemory::new();
    let counter = mem.alloc(0);
    CheckConfig {
        procs: (0..2)
            .map(|_| Box::new(FaiAdapter::new(counter)) as Box<dyn CheckProcess>)
            .collect(),
        mem,
        spec: Spec::counter(),
        budgets: vec![2, 2],
    }
}

fn build_rw_mutant() -> CheckConfig {
    let mut mem = SharedMemory::new();
    let reg = mem.alloc(0);
    CheckConfig {
        procs: (0..2)
            .map(|_| Box::new(RwCounter::new(reg)) as Box<dyn CheckProcess>)
            .collect(),
        mem,
        spec: Spec::counter(),
        budgets: vec![2, 2],
    }
}

fn build_spinner_pair_mutant() -> CheckConfig {
    let mut mem = SharedMemory::new();
    let counter = mem.alloc(0);
    CheckConfig {
        procs: vec![
            Box::new(Spinner::new(counter)),
            Box::new(Spinner::new(counter)),
        ],
        mem,
        spec: Spec::counter(),
        budgets: vec![1, 1],
    }
}

fn build_livelock_mutant() -> CheckConfig {
    let mut mem = SharedMemory::new();
    let counter = mem.alloc(0);
    CheckConfig {
        procs: vec![
            Box::new(FaiAdapter::new(counter)),
            Box::new(Spinner::new(counter)),
        ],
        mem,
        spec: Spec::counter(),
        budgets: vec![1, 1],
    }
}

/// Fetch-and-increment counter (Algorithm 5), 2 processes × 2 ops.
pub const FAI_COUNTER: CheckTarget = CheckTarget {
    name: "counter",
    description: "fetch-and-inc counter (Algorithm 5), n=2, 2 ops each",
    expect_failure: false,
    progress: Progress::LockFree,
    build: build_fai,
};

/// The seeded non-linearizable counter mutant.
pub const RW_COUNTER_MUTANT: CheckTarget = CheckTarget {
    name: "counter-rw-mutant",
    description: "MUTANT: read-then-write counter without CAS (lost updates)",
    expect_failure: true,
    progress: Progress::LockFree,
    build: build_rw_mutant,
};

/// The seeded lock-freedom violation: one honest incrementer plus one
/// spinner that never completes.
pub const LIVELOCK_MUTANT: CheckTarget = CheckTarget {
    name: "livelock-mutant",
    description: "MUTANT: a spinning process that never completes (livelock)",
    expect_failure: true,
    progress: Progress::LockFree,
    build: build_livelock_mutant,
};

/// The seeded *fair*-progress violation: two mutual spinners. Classed
/// [`Progress::StochasticOnly`], so within-run spinning is tolerated
/// and exploration alone reports nothing — the target exists to be
/// caught by the Theorem 3 fair-cycle audit
/// ([`crate::audit::StateGraph::fair_livelock`]): the whole reachable
/// graph is one completion-free bottom component, so even a stochastic
/// scheduler never sees an operation complete.
pub const SPINNER_PAIR_MUTANT: CheckTarget = CheckTarget {
    name: "spinner-pair-mutant",
    description: "MUTANT: mutual spinners — no fair schedule completes (Thm 3)",
    expect_failure: true,
    progress: Progress::StochasticOnly,
    build: build_spinner_pair_mutant,
};
