//! Query-deduplication (request-coalescing) targets, ported from the
//! apollo-router wait-map protocol (SNIPPETS.md, Snippet 1) — the same
//! coalescing logic `crates/serve` ships in its production
//! [`pwf_serve`-style] coalescer.
//!
//! Protocol, per process, all against one cache key:
//!
//! 1. **Claim**: CAS the `flight` register `0 → 1`. The winner is the
//!    *leader*; losers are *joiners* (they registered in the wait
//!    map).
//! 2. Leader: **compute** (one read modelling the backend fetch), then
//!    **publish** the result into `slot`, then **notify** by writing
//!    `ready = 1`, completing `get() -> 42`.
//! 3. Joiner: spin-read `ready` until it is `1`, then **fetch** `slot`
//!    and complete `get() -> v`.
//!
//! The sequential object is [`Spec::Coalesced`]: every `get` must
//! return the leader's computed value. The protocol is *blocking by
//! design* — a joiner makes no progress while the leader is parked —
//! so the target is classed [`Progress::StochasticOnly`]: spinning
//! truncates a run instead of flagging it, and liveness is judged by
//! the fair-cycle audit (every reachable bottom component of the state
//! graph completes), which this protocol passes: once the leader
//! finishes, `ready` is permanently `1` and every joiner completes.
//!
//! The seeded **lost-wakeup mutant** swaps steps 2's publish and
//! notify: the leader raises `ready` *before* writing `slot`, so a
//! joiner scheduled in between fetches the unpublished slot and
//! returns `get() -> 0` — not linearizable against the coalesced spec.
//! `pwf vet` catches it and ddmin-shrinks the witness to a replayable
//! `.sched`.

use pwf_sim::memory::{fnv1a, RegisterId, SharedMemory};
use pwf_sim::process::{Process, StepOutcome};

use crate::op::OpRecord;
use crate::spec::Spec;
use crate::target::{CheckConfig, CheckProcess, CheckTarget, Progress};

/// The value the leader's backend computation produces.
const COMPUTED: u64 = 42;

/// Where a dedup process is inside its single `get`.
#[derive(Debug, Clone, Copy)]
enum DPhase {
    /// About to CAS the flight claim.
    Claim,
    /// Leader: about to perform the backend computation (modelled as
    /// one read of the input register).
    Compute,
    /// Leader: about to write the computed value into the slot.
    Publish,
    /// Leader: about to raise the ready flag.
    Notify,
    /// Joiner: spinning on the ready flag.
    AwaitReady,
    /// Joiner: ready was observed; about to read the slot.
    Fetch,
}

impl DPhase {
    fn code(self) -> u64 {
        match self {
            DPhase::Claim => 0,
            DPhase::Compute => 1,
            DPhase::Publish => 2,
            DPhase::Notify => 3,
            DPhase::AwaitReady => 4,
            DPhase::Fetch => 5,
        }
    }
}

/// One coalescing requester: leader or joiner, decided by the claim
/// CAS. With `notify_before_publish` the leader's publish and notify
/// steps are swapped — the seeded lost-wakeup mutant.
pub struct DedupProcess {
    flight: RegisterId,
    input: RegisterId,
    slot: RegisterId,
    ready: RegisterId,
    notify_before_publish: bool,
    phase: DPhase,
    fetched: u64,
}

impl DedupProcess {
    fn complete(&mut self, value: u64) -> StepOutcome {
        self.fetched = value;
        self.phase = DPhase::Claim;
        StepOutcome::Completed
    }
}

impl Process for DedupProcess {
    fn step(&mut self, mem: &mut SharedMemory) -> StepOutcome {
        match self.phase {
            DPhase::Claim => {
                self.phase = if mem.cas(self.flight, 0, 1) {
                    DPhase::Compute
                } else {
                    DPhase::AwaitReady
                };
                StepOutcome::Ongoing
            }
            DPhase::Compute => {
                // The backend fetch: reads the request input; the
                // result is deterministic in it.
                let _ = mem.read(self.input);
                self.phase = if self.notify_before_publish {
                    DPhase::Notify
                } else {
                    DPhase::Publish
                };
                StepOutcome::Ongoing
            }
            DPhase::Publish => {
                mem.write(self.slot, COMPUTED);
                if self.notify_before_publish {
                    // Mutant: publish is the leader's last step.
                    self.complete(COMPUTED)
                } else {
                    self.phase = DPhase::Notify;
                    StepOutcome::Ongoing
                }
            }
            DPhase::Notify => {
                mem.write(self.ready, 1);
                if self.notify_before_publish {
                    self.phase = DPhase::Publish;
                    StepOutcome::Ongoing
                } else {
                    self.complete(COMPUTED)
                }
            }
            DPhase::AwaitReady => {
                if mem.read(self.ready) == 1 {
                    self.phase = DPhase::Fetch;
                }
                StepOutcome::Ongoing
            }
            DPhase::Fetch => {
                let v = mem.read(self.slot);
                self.complete(v)
            }
        }
    }

    fn name(&self) -> &'static str {
        if self.notify_before_publish {
            "dedup-lost-wakeup"
        } else {
            "dedup"
        }
    }
}

impl CheckProcess for DedupProcess {
    fn last_op(&self) -> OpRecord {
        OpRecord {
            name: "get",
            input: None,
            output: Some(self.fetched),
        }
    }

    fn local_fingerprint(&self) -> u64 {
        fnv1a(0xDED0_0DED, &[self.phase.code(), self.fetched])
    }
}

fn build_dedup_inner(notify_before_publish: bool) -> CheckConfig {
    let mut mem = SharedMemory::new();
    let flight = mem.alloc(0);
    let input = mem.alloc(7);
    let slot = mem.alloc(0);
    let ready = mem.alloc(0);
    CheckConfig {
        procs: (0..2)
            .map(|_| {
                Box::new(DedupProcess {
                    flight,
                    input,
                    slot,
                    ready,
                    notify_before_publish,
                    phase: DPhase::Claim,
                    fetched: 0,
                }) as Box<dyn CheckProcess>
            })
            .collect(),
        mem,
        spec: Spec::coalesced(COMPUTED),
        budgets: vec![1, 1],
    }
}

fn build_dedup() -> CheckConfig {
    build_dedup_inner(false)
}

fn build_lost_wakeup_mutant() -> CheckConfig {
    build_dedup_inner(true)
}

/// The correct coalescer: publish strictly before notify.
pub const DEDUP: CheckTarget = CheckTarget {
    name: "dedup",
    description: "query-dedup coalescer (apollo wait-map), n=2, 1 get each",
    expect_failure: false,
    progress: Progress::StochasticOnly,
    build: build_dedup,
};

/// The seeded lost-wakeup mutant: notify raised before the slot is
/// published, so an interleaved joiner fetches the unpublished value.
pub const LOST_WAKEUP_MUTANT: CheckTarget = CheckTarget {
    name: "dedup-lost-wakeup-mutant",
    description: "MUTANT: coalescer notifies before publishing (lost wakeup)",
    expect_failure: true,
    progress: Progress::StochasticOnly,
    build: build_lost_wakeup_mutant,
};
