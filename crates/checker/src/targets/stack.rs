//! Treiber-stack targets: a tag-protected variant (correct) and the
//! classic ABA mutant that drops the tag increment.
//!
//! The stack is array-backed: node `i` (1-based) owns a value register
//! and a next register; the `top` register packs `(node index, tag)`.
//! Each successful CAS of `top` bumps the tag in the tagged variant,
//! so a stale top observation can never match again. The mutant keeps
//! the tag constant: after a popped node is *reused* by a push, a
//! stale CAS succeeds against the bit-identical top value and splices
//! a popped node back into the stack — the ABA anomaly, surfacing as a
//! duplicate pop in the history.
//!
//! Processes run short scripted op sequences (the checker bounds
//! operations anyway), and pop/push retry loops mirror the real
//! Treiber structure: read top, read through it, validate with CAS.

use pwf_sim::memory::{fnv1a, RegisterId, SharedMemory};
use pwf_sim::process::{Process, StepOutcome};

use crate::op::OpRecord;
use crate::spec::Spec;
use crate::target::{CheckConfig, CheckProcess, CheckTarget, Progress};

/// One scripted stack operation.
#[derive(Debug, Clone, Copy)]
pub enum StackOp {
    /// Push the given value.
    Push(u64),
    /// Pop (possibly observing an empty stack).
    Pop,
}

/// Register layout of the array-backed stack.
#[derive(Debug, Clone)]
struct Layout {
    top: RegisterId,
    /// `value[i - 1]` for node `i`.
    value: Vec<RegisterId>,
    /// `next[i - 1]` for node `i` (stores a plain node index, 0 = nil).
    next: Vec<RegisterId>,
}

fn pack(idx: u64, tag: u64) -> u64 {
    (idx << 32) | (tag & 0xFFFF_FFFF)
}

fn idx_of(packed: u64) -> u64 {
    packed >> 32
}

fn tag_of(packed: u64) -> u64 {
    packed & 0xFFFF_FFFF
}

/// Where a scripted stack process is inside its current operation.
#[derive(Debug, Clone, Copy)]
enum SPhase {
    /// About to begin the next scripted op (or retry a pop from the
    /// top read).
    Start,
    /// Push: wrote the value, about to read top. `node` is ours.
    PushReadTop { node: u64, v: u64 },
    /// Push: read top `t`, about to link our node to it.
    PushWriteNext { node: u64, v: u64, t: u64 },
    /// Push: about to CAS top from `t` to our node.
    PushCas { node: u64, v: u64, t: u64 },
    /// Pop: read top `t` (non-nil), about to read its next pointer.
    PopReadNext { t: u64 },
    /// Pop: about to read the value of the node top points to.
    PopReadValue { t: u64, n: u64 },
    /// Pop: about to CAS top from `t` to `n`.
    PopCas { t: u64, n: u64, v: u64 },
}

impl SPhase {
    fn code(self) -> u64 {
        match self {
            SPhase::Start => 0,
            SPhase::PushReadTop { .. } => 1,
            SPhase::PushWriteNext { .. } => 2,
            SPhase::PushCas { .. } => 3,
            SPhase::PopReadNext { .. } => 4,
            SPhase::PopReadValue { .. } => 5,
            SPhase::PopCas { .. } => 6,
        }
    }

    fn words(self) -> [u64; 4] {
        match self {
            SPhase::Start => [0; 4],
            SPhase::PushReadTop { node, v } => [node, v, 0, 0],
            SPhase::PushWriteNext { node, v, t } => [node, v, t, 0],
            SPhase::PushCas { node, v, t } => [node, v, t, 0],
            SPhase::PopReadNext { t } => [t, 0, 0, 0],
            SPhase::PopReadValue { t, n } => [t, n, 0, 0],
            SPhase::PopCas { t, n, v } => [t, n, v, 0],
        }
    }
}

/// A process running a short script of pushes and pops against the
/// array-backed Treiber stack.
pub struct ScriptStackProcess {
    layout: Layout,
    tagged: bool,
    script: Vec<StackOp>,
    pos: usize,
    phase: SPhase,
    /// Nodes this process popped and may reuse, oldest first — FIFO
    /// reuse maximises the window for ABA in the mutant.
    recycled: Vec<u64>,
    /// A pre-allocated node for pushes that outnumber prior pops.
    spare: Option<u64>,
    last: OpRecord,
}

impl ScriptStackProcess {
    fn bump(&self, tag: u64) -> u64 {
        if self.tagged {
            tag + 1
        } else {
            tag
        }
    }

    fn complete(&mut self, record: OpRecord) -> StepOutcome {
        self.last = record;
        self.pos += 1;
        self.phase = SPhase::Start;
        StepOutcome::Completed
    }
}

impl Process for ScriptStackProcess {
    fn step(&mut self, mem: &mut SharedMemory) -> StepOutcome {
        let l = self.layout.clone();
        match self.phase {
            SPhase::Start => match self.script[self.pos] {
                StackOp::Push(v) => {
                    let node = if self.recycled.is_empty() {
                        self.spare.take().expect("push with no node available")
                    } else {
                        self.recycled.remove(0)
                    };
                    mem.write(l.value[node as usize - 1], v);
                    self.phase = SPhase::PushReadTop { node, v };
                    StepOutcome::Ongoing
                }
                StackOp::Pop => {
                    let t = mem.read(l.top);
                    if idx_of(t) == 0 {
                        self.complete(OpRecord {
                            name: "pop",
                            input: None,
                            output: None,
                        })
                    } else {
                        self.phase = SPhase::PopReadNext { t };
                        StepOutcome::Ongoing
                    }
                }
            },
            SPhase::PushReadTop { node, v } => {
                let t = mem.read(l.top);
                self.phase = SPhase::PushWriteNext { node, v, t };
                StepOutcome::Ongoing
            }
            SPhase::PushWriteNext { node, v, t } => {
                mem.write(l.next[node as usize - 1], idx_of(t));
                self.phase = SPhase::PushCas { node, v, t };
                StepOutcome::Ongoing
            }
            SPhase::PushCas { node, v, t } => {
                let new = pack(node, self.bump(tag_of(t)));
                if mem.cas(l.top, t, new) {
                    self.complete(OpRecord {
                        name: "push",
                        input: Some(v),
                        output: None,
                    })
                } else {
                    self.phase = SPhase::PushReadTop { node, v };
                    StepOutcome::Ongoing
                }
            }
            SPhase::PopReadNext { t } => {
                let n = mem.read(l.next[idx_of(t) as usize - 1]);
                self.phase = SPhase::PopReadValue { t, n };
                StepOutcome::Ongoing
            }
            SPhase::PopReadValue { t, n } => {
                let v = mem.read(l.value[idx_of(t) as usize - 1]);
                self.phase = SPhase::PopCas { t, n, v };
                StepOutcome::Ongoing
            }
            SPhase::PopCas { t, n, v } => {
                let new = pack(n, self.bump(tag_of(t)));
                if mem.cas(l.top, t, new) {
                    self.recycled.push(idx_of(t));
                    self.complete(OpRecord {
                        name: "pop",
                        input: None,
                        output: Some(v),
                    })
                } else {
                    // Retry from the top read (Start re-dispatches the
                    // same scripted pop).
                    self.phase = SPhase::Start;
                    StepOutcome::Ongoing
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        if self.tagged {
            "treiber-tagged"
        } else {
            "treiber-untagged"
        }
    }
}

impl CheckProcess for ScriptStackProcess {
    fn last_op(&self) -> OpRecord {
        self.last
    }

    fn local_fingerprint(&self) -> u64 {
        let mut words = vec![self.pos as u64, self.phase.code()];
        words.extend_from_slice(&self.phase.words());
        words.push(self.spare.map_or(0, |s| s + 1));
        words.push(self.recycled.len() as u64);
        words.extend_from_slice(&self.recycled);
        fnv1a(0xB7E1_5162, &words)
    }
}

/// Builds a stack configuration.
///
/// * `initial`: bottom-first initial stack contents (nodes `1..`).
/// * `scripts`: one op script per process.
/// * `tagged`: whether successful top-CASes bump the tag.
///
/// Each process additionally owns one spare node for pushes that
/// outnumber its pops.
fn build_stack(initial: &[u64], scripts: &[&[StackOp]], tagged: bool) -> CheckConfig {
    let mut mem = SharedMemory::new();
    let n_nodes = initial.len() + scripts.len();
    let top = mem.alloc(pack(initial.len() as u64, 0));
    let mut value = Vec::new();
    let mut next = Vec::new();
    for (i, &v) in initial.iter().enumerate() {
        value.push(mem.alloc(v));
        next.push(mem.alloc(i as u64)); // node i+1 links down to node i
    }
    for _ in initial.len()..n_nodes {
        value.push(mem.alloc(0));
        next.push(mem.alloc(0));
    }
    let layout = Layout { top, value, next };
    let procs: Vec<Box<dyn CheckProcess>> = scripts
        .iter()
        .enumerate()
        .map(|(i, script)| {
            Box::new(ScriptStackProcess {
                layout: layout.clone(),
                tagged,
                script: script.to_vec(),
                pos: 0,
                phase: SPhase::Start,
                recycled: Vec::new(),
                spare: Some((initial.len() + i + 1) as u64),
                last: OpRecord {
                    name: "pop",
                    input: None,
                    output: None,
                },
            }) as Box<dyn CheckProcess>
        })
        .collect();
    CheckConfig {
        mem,
        budgets: scripts.iter().map(|s| s.len() as u32).collect(),
        procs,
        spec: Spec::stack(initial),
    }
}

fn build_tagged() -> CheckConfig {
    build_stack(
        &[20, 10],
        &[
            &[StackOp::Pop, StackOp::Push(5)],
            &[StackOp::Pop, StackOp::Push(6)],
        ],
        true,
    )
}

fn build_tagged_n3() -> CheckConfig {
    build_stack(
        &[20, 10],
        &[
            &[StackOp::Pop, StackOp::Push(5)],
            &[StackOp::Pop, StackOp::Push(6)],
            &[StackOp::Push(7)],
        ],
        true,
    )
}

fn build_aba_mutant() -> CheckConfig {
    build_stack(
        &[20, 10],
        &[
            &[StackOp::Pop],
            &[StackOp::Pop, StackOp::Pop, StackOp::Push(30)],
        ],
        false,
    )
}

fn build_aba_scenario_tagged() -> CheckConfig {
    build_stack(
        &[20, 10],
        &[
            &[StackOp::Pop],
            &[StackOp::Pop, StackOp::Pop, StackOp::Push(30)],
        ],
        true,
    )
}

/// Tag-protected Treiber stack, 2 processes × 2 ops.
pub const TAGGED_STACK: CheckTarget = CheckTarget {
    name: "stack",
    description: "tagged Treiber stack, n=2, 2 ops each (pop then push)",
    expect_failure: false,
    progress: Progress::LockFree,
    build: build_tagged,
};

/// Tag-protected Treiber stack with a third process — the other
/// deep-frontier workload for parallel exploration; CAS retry loops
/// from three contenders converge heavily on shared states.
pub const TAGGED_STACK_N3: CheckTarget = CheckTarget {
    name: "stack-n3",
    description: "tagged Treiber stack, n=3 (pop/push x2 + one push)",
    expect_failure: false,
    progress: Progress::LockFree,
    build: build_tagged_n3,
};

/// The seeded ABA mutant: tags never increment, so node reuse lets a
/// stale CAS succeed.
pub const ABA_MUTANT: CheckTarget = CheckTarget {
    name: "stack-aba-mutant",
    description: "MUTANT: Treiber stack without tag increment (ABA on node reuse)",
    expect_failure: true,
    progress: Progress::LockFree,
    build: build_aba_mutant,
};

/// The ABA scenario scripts under the *tagged* stack — must pass,
/// pinning the mutant's failure on the dropped tag increment alone.
pub const ABA_SCENARIO_TAGGED: CheckTarget = CheckTarget {
    name: "stack-aba-scenario",
    description: "ABA mutant's exact scripts on the tagged stack (must pass)",
    expect_failure: false,
    progress: Progress::LockFree,
    build: build_aba_scenario_tagged,
};
