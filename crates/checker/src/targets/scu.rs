//! `SCU(q, s)` targets (paper, Algorithm 2).
//!
//! The sequential object behind an SCU method call is a CAS register:
//! each completed call atomically swung the decision register `R` from
//! its scanned value to a fresh proposal. Linearizability is exactly
//! the chaining of `(observed, proposed)` pairs — every completed
//! call's observation must be the previous call's proposal (or the
//! initial value).

use pwf_algorithms::scu::{ScuObject, ScuProcess};
use pwf_sim::memory::SharedMemory;
use pwf_sim::process::{Process, ProcessId, StepOutcome};

use crate::op::OpRecord;
use crate::spec::Spec;
use crate::target::{CheckConfig, CheckProcess, CheckTarget, Progress};

/// [`ScuProcess`] lifted into a checkable process.
pub struct ScuAdapter {
    inner: ScuProcess,
}

impl ScuAdapter {
    /// Wraps an `SCU(q, s)` process.
    pub fn new(id: ProcessId, object: ScuObject, q: usize, s: usize) -> Self {
        ScuAdapter {
            inner: ScuProcess::new(id, object, q, s),
        }
    }
}

impl Process for ScuAdapter {
    fn step(&mut self, mem: &mut SharedMemory) -> StepOutcome {
        self.inner.step(mem)
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

impl CheckProcess for ScuAdapter {
    fn last_op(&self) -> OpRecord {
        let (observed, proposed) = self
            .inner
            .last_completed()
            .expect("last_op is only read after a completed step");
        OpRecord {
            name: "cas",
            input: Some(observed),
            output: Some(proposed),
        }
    }

    fn local_fingerprint(&self) -> u64 {
        self.inner.fingerprint()
    }
}

fn build_scu_n(q: usize, s: usize, budgets: Vec<u32>) -> CheckConfig {
    let mut mem = SharedMemory::new();
    let object = ScuObject::alloc(&mut mem, s);
    CheckConfig {
        procs: (0..budgets.len())
            .map(|i| {
                Box::new(ScuAdapter::new(ProcessId::new(i), object.clone(), q, s))
                    as Box<dyn CheckProcess>
            })
            .collect(),
        mem,
        spec: Spec::cas_register(),
        budgets,
    }
}

fn build_scu_0_1() -> CheckConfig {
    build_scu_n(0, 1, vec![2, 2])
}

fn build_scu_2_2() -> CheckConfig {
    build_scu_n(2, 2, vec![2, 2])
}

fn build_scu_2_2_n3() -> CheckConfig {
    build_scu_n(2, 2, vec![2, 1, 1])
}

/// `SCU(0, 1)` — scan is a single read of `R`, no preamble.
pub const SCU_0_1: CheckTarget = CheckTarget {
    name: "scu-0-1",
    description: "SCU(0,1) as a CAS register, n=2, 2 ops each",
    expect_failure: false,
    progress: Progress::LockFree,
    build: build_scu_0_1,
};

/// `SCU(2, 2)` — two preamble steps and a two-step scan; the
/// read-only prefix steps commute, exercising the reduction.
pub const SCU_2_2: CheckTarget = CheckTarget {
    name: "scu-2-2",
    description: "SCU(2,2) as a CAS register, n=2, 2 ops each",
    expect_failure: false,
    progress: Progress::LockFree,
    build: build_scu_2_2,
};

/// `SCU(2, 2)` with a third process — the deep-frontier workload for
/// parallel exploration. Three processes retrying multi-step scans
/// against one register create many inequivalent prefixes that
/// converge on the same reached state, which is exactly what the
/// shared state cache prunes.
pub const SCU_2_2_N3: CheckTarget = CheckTarget {
    name: "scu-2-2-n3",
    description: "SCU(2,2) as a CAS register, n=3 (2+1+1 ops)",
    expect_failure: false,
    progress: Progress::LockFree,
    build: build_scu_2_2_n3,
};
