//! Wing–Gong linearizability checking.
//!
//! Given the complete operations of one explored execution (as
//! [`TimedOp`]s) and a sequential [`Spec`], search for a
//! *linearization*: a total order of the operations that (a) respects
//! real-time precedence — if `a` responded before `b` was invoked, `a`
//! comes first — and (b) is legal for the spec, each operation
//! returning what the sequential object returns at its place in the
//! order.
//!
//! The search is the classic Wing–Gong recursion: repeatedly pick a
//! *minimal* remaining operation (one invoked no later than every
//! remaining response — nothing remaining is forced before it), apply
//! it to the spec, recurse, backtrack. Failed `(remaining-set,
//! spec-state)` pairs are memoized, the refinement due to Lowe's
//! just-in-time linearizability checker. Operation counts here are
//! tiny (≤ 64 by construction), so a `u64` bitmask encodes the
//! remaining set.

use std::collections::HashSet;

use pwf_sim::memory::fnv1a;

use crate::op::TimedOp;
use crate::spec::Spec;

/// Outcome of a linearizability check.
#[derive(Debug, Clone)]
pub enum LinResult {
    /// A legal linearization exists; the witness lists indices into the
    /// input slice in linearization order.
    Linearizable {
        /// Indices into the checked ops, in linearization order.
        witness: Vec<usize>,
    },
    /// No legal linearization exists.
    NotLinearizable,
}

impl LinResult {
    /// Whether the history linearized.
    pub fn is_linearizable(&self) -> bool {
        matches!(self, LinResult::Linearizable { .. })
    }
}

/// Checks whether `ops` (the completed operations of one execution)
/// linearize against `spec`.
///
/// # Panics
///
/// Panics if more than 64 operations are supplied; checker
/// configurations are bounded far below that.
pub fn check(spec: &Spec, ops: &[TimedOp]) -> LinResult {
    assert!(ops.len() <= 64, "op count exceeds bitmask capacity");
    let full: u64 = if ops.len() == 64 {
        u64::MAX
    } else {
        (1u64 << ops.len()) - 1
    };
    let mut failed: HashSet<(u64, u64)> = HashSet::new();
    let mut witness = Vec::with_capacity(ops.len());
    let mut spec = spec.clone();
    if dfs(&mut spec, ops, full, &mut failed, &mut witness) {
        LinResult::Linearizable { witness }
    } else {
        LinResult::NotLinearizable
    }
}

/// Tries to linearize the operations in `remaining` (bitmask over
/// `ops`) starting from `spec`; on success `witness` holds the order.
fn dfs(
    spec: &mut Spec,
    ops: &[TimedOp],
    remaining: u64,
    failed: &mut HashSet<(u64, u64)>,
    witness: &mut Vec<usize>,
) -> bool {
    if remaining == 0 {
        return true;
    }
    let key = (remaining, spec.fingerprint());
    if failed.contains(&key) {
        return false;
    }
    // An op is minimal iff no remaining op's response precedes its
    // invocation — equivalently, invoke ≤ min remaining response.
    let min_response = iter_bits(remaining)
        .map(|i| ops[i].response)
        .min()
        .expect("remaining is non-empty");
    for i in iter_bits(remaining) {
        if ops[i].invoke > min_response {
            continue;
        }
        let mut child = spec.clone();
        if child.apply(&ops[i].record) {
            witness.push(i);
            if dfs(&mut child, ops, remaining & !(1 << i), failed, witness) {
                *spec = child;
                return true;
            }
            witness.pop();
        }
    }
    failed.insert(key);
    false
}

/// Iterates the set bit positions of a mask, lowest first.
fn iter_bits(mask: u64) -> impl Iterator<Item = usize> {
    let mut m = mask;
    std::iter::from_fn(move || {
        if m == 0 {
            None
        } else {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            Some(i)
        }
    })
}

/// Fingerprint of a set of operations (order-sensitive over the slice),
/// used by tests to confirm replayed executions reproduce histories.
pub fn ops_fingerprint(ops: &[TimedOp]) -> u64 {
    let mut h = 0x1000_0001u64;
    for op in ops {
        let name_words: Vec<u64> = op.record.name.bytes().map(u64::from).collect();
        let name_hash = fnv1a(0, &name_words);
        h = fnv1a(
            h,
            &[
                op.process.index() as u64,
                op.invoke,
                op.response,
                name_hash,
                op.record.input.map_or(u64::MAX, |v| v),
                op.record.output.map_or(u64::MAX, |v| v),
            ],
        );
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpRecord;
    use pwf_sim::process::ProcessId;

    fn op(
        p: usize,
        invoke: u64,
        response: u64,
        name: &'static str,
        input: Option<u64>,
        output: Option<u64>,
    ) -> TimedOp {
        TimedOp {
            process: ProcessId::new(p),
            invoke,
            response,
            record: OpRecord {
                name,
                input,
                output,
            },
        }
    }

    #[test]
    fn sequential_counter_history_linearizes() {
        let ops = vec![
            op(0, 1, 2, "inc", None, Some(0)),
            op(1, 3, 4, "inc", None, Some(1)),
        ];
        assert!(check(&Spec::counter(), &ops).is_linearizable());
    }

    #[test]
    fn duplicate_counter_values_do_not_linearize() {
        // Two increments both returning 0: the lost-update anomaly.
        let ops = vec![
            op(0, 1, 3, "inc", None, Some(0)),
            op(1, 2, 4, "inc", None, Some(0)),
        ];
        assert!(!check(&Spec::counter(), &ops).is_linearizable());
    }

    #[test]
    fn overlap_permits_reordering_but_real_time_is_respected() {
        // p1's inc returned 0 *after* p0's inc returned 1 — legal only
        // because they overlap.
        let ops = vec![
            op(0, 2, 3, "inc", None, Some(1)),
            op(1, 1, 4, "inc", None, Some(0)),
        ];
        let res = check(&Spec::counter(), &ops);
        match res {
            LinResult::Linearizable { witness } => assert_eq!(witness, vec![1, 0]),
            LinResult::NotLinearizable => panic!("should linearize by reordering"),
        }
        // Same values without overlap: p0 strictly precedes p1, so the
        // reorder is illegal.
        let ops = vec![
            op(0, 1, 2, "inc", None, Some(1)),
            op(1, 3, 4, "inc", None, Some(0)),
        ];
        assert!(!check(&Spec::counter(), &ops).is_linearizable());
    }

    #[test]
    fn stack_duplicate_pop_is_caught() {
        // ABA symptom: both pops return the same element of a
        // two-element stack.
        let ops = vec![
            op(0, 1, 5, "pop", None, Some(9)),
            op(1, 2, 6, "pop", None, Some(9)),
        ];
        assert!(!check(&Spec::stack(&[5, 9]), &ops).is_linearizable());
        // Distinct pops are fine.
        let ops = vec![
            op(0, 1, 5, "pop", None, Some(9)),
            op(1, 2, 6, "pop", None, Some(5)),
        ];
        assert!(check(&Spec::stack(&[5, 9]), &ops).is_linearizable());
    }

    #[test]
    fn empty_history_is_trivially_linearizable() {
        assert!(check(&Spec::counter(), &[]).is_linearizable());
    }

    #[test]
    fn ops_fingerprint_is_order_sensitive() {
        let a = op(0, 1, 2, "inc", None, Some(0));
        let b = op(1, 3, 4, "inc", None, Some(1));
        assert_ne!(ops_fingerprint(&[a, b]), ops_fingerprint(&[b, a]));
        assert_eq!(ops_fingerprint(&[a, b]), ops_fingerprint(&[a, b]));
    }
}
