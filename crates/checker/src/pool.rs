//! A tiny fork-join pool with work-stealing, used to drain one chunk
//! of the exploration frontier.
//!
//! The chunk's units are split into per-worker *shards* of contiguous
//! indices, each drained through an atomic cursor. A worker that
//! exhausts its own shard becomes a thief: it walks the other shards
//! and claims leftover indices through the victims' cursors (the same
//! fetch-add, so claims stay unique without any hand-off protocol).
//! Stealing keeps all workers busy when unit costs are skewed — one
//! deep replay does not idle the rest of the pool.
//!
//! Results land in per-index slots, so the returned vector is in input
//! order regardless of which worker computed what — the same
//! input-order guarantee `pwf_runner::parallel_map` gives, and the
//! property the deterministic merge pass builds on. The steal count is
//! returned for telemetry only; it is inherently racy and must never
//! feed deterministic output.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item using up to `jobs` workers with
/// work-stealing; returns the results in input order plus the number
/// of stolen items. `jobs <= 1` (or a single item) runs inline on the
/// caller's thread with zero spawns.
pub fn drain_chunk<T, R, F>(jobs: usize, items: &[T], f: F) -> (Vec<R>, u64)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if jobs <= 1 || n <= 1 {
        return (items.iter().map(&f).collect(), 0);
    }
    let workers = jobs.min(n);
    // Shard w owns indices [w*n/workers, (w+1)*n/workers).
    let cursors: Vec<AtomicUsize> = (0..workers)
        .map(|w| AtomicUsize::new(w * n / workers))
        .collect();
    let ends: Vec<usize> = (0..workers).map(|w| (w + 1) * n / workers).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let steals = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let (cursors, ends, slots, steals, f) = (&cursors, &ends, &slots, &steals, &f);
            scope.spawn(move || {
                // Own shard first (v == 0), then steal round-robin.
                for v in 0..workers {
                    let victim = (w + v) % workers;
                    loop {
                        let i = cursors[victim].fetch_add(1, Ordering::Relaxed);
                        if i >= ends[victim] {
                            break;
                        }
                        if victim != w {
                            steals.fetch_add(1, Ordering::Relaxed);
                        }
                        *slots[i].lock().expect("result slot poisoned") = Some(f(&items[i]));
                    }
                }
            });
        }
    });
    let results = slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("every index was claimed by exactly one worker")
        })
        .collect();
    (results, steals.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order_at_every_job_count() {
        let items: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 3, 8, 200] {
            let (got, _) = drain_chunk(jobs, &items, |&x| x * x);
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs_run_inline() {
        let (got, steals) = drain_chunk(8, &[] as &[u64], |&x| x);
        assert!(got.is_empty() && steals == 0);
        let (got, steals) = drain_chunk(8, &[7u64], |&x| x + 1);
        assert_eq!(got, vec![8]);
        assert_eq!(steals, 0);
    }

    #[test]
    fn skewed_costs_still_fill_every_slot() {
        // One expensive item at the front of shard 0; thieves should
        // finish the rest either way, and every slot must be filled.
        let items: Vec<u64> = (0..64).collect();
        let (got, _) = drain_chunk(4, &items, |&x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x
        });
        assert_eq!(got, items);
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        let items: Vec<u64> = (0..3).collect();
        let (got, _) = drain_chunk(16, &items, |&x| x * 10);
        assert_eq!(got, vec![0, 10, 20]);
    }
}
