//! Systematic concurrency checking for the practically-wait-free
//! workspace: `pwf vet`.
//!
//! The paper's claims are probabilistic statements about *schedules*:
//! lock-free algorithms behave wait-free because the scheduler is
//! stochastic. This crate supplies the complementary *exhaustive*
//! guarantee for small configurations — that the simulated algorithms
//! are actually correct concurrent objects in every schedule, not just
//! the likely ones:
//!
//! * [`explore`] — a loom-style stateless schedule explorer with
//!   sleep-set dynamic partial-order reduction, driving
//!   [`pwf_sim::process::Process`] implementations through every
//!   inequivalent interleaving of a bounded configuration; the
//!   frontier is drained by a work-stealing pool ([`pool`]) over a
//!   shared collision-guarded state cache ([`cache`]), with
//!   deterministic (jobs-independent) merged results;
//! * [`lin`] — Wing–Gong linearizability checking of the recorded
//!   operation histories against sequential specs ([`spec`]);
//! * [`audit`] — lock-freedom auditing: no reachable completion-free
//!   state cycle, plus the workspace's stochastic Theorem 3 audit;
//! * [`shrink`] — delta-debugging counterexample schedules down to
//!   minimal, replayable witnesses;
//! * [`targets`] — small configurations of the paper's algorithms
//!   (fetch-and-inc, Treiber stack, `SCU(q,s)`, parallel code) and
//!   seeded mutants (ABA, lost update, livelock) the checker must
//!   catch;
//! * [`cli`] — the `pwf vet` front end.
//!
//! The static atomics-ordering lint that used to live here has grown
//! into the standalone `pwf-lint` crate (`pwf lint`), which scans the
//! whole workspace; `pwf vet --orderings` remains as a compatibility
//! alias for its orderings pass.

pub mod audit;
pub mod cache;
pub mod cli;
pub mod explore;
pub mod lin;
pub mod op;
pub mod pool;
pub mod shrink;
pub mod spec;
pub mod target;
pub mod targets;
