//! Lock-freedom auditing over the explored state graph.
//!
//! The explorer ([`crate::explore`]) catches livelocks *within* one
//! execution (a repeated completion-free state). This module adds the
//! global check: in the union of all explored transitions, is there a
//! reachable cycle containing no operation completion? Such a cycle
//! can be scheduled forever, producing an infinite execution in which
//! no process completes — refuting lock-freedom even when no single
//! bounded execution repeats a state.
//!
//! A second, stochastic angle reuses the workspace's Theorem 3 audit
//! (`pwf_core::progress_audit`): long uniform-scheduler runs of the
//! *unbounded* algorithm confirm that bounded minimal progress holds
//! in the large, complementing the small-config exhaustive proof.

use std::collections::{HashMap, HashSet};

use pwf_core::progress_audit::{audit as stochastic_audit, ProgressAuditReport};
use pwf_core::spec::{AlgorithmSpec, SchedulerSpec};
use pwf_sim::crash::CrashScheduleError;

/// The explored state graph: fingerprint-keyed states, transitions
/// annotated with whether they completed an operation, and for each
/// state the first schedule prefix that reached it (a witness).
#[derive(Debug, Default)]
pub struct StateGraph {
    edges: HashMap<u64, Vec<(u64, bool)>>,
    edge_set: HashSet<(u64, u64, bool)>,
    first_prefix: HashMap<u64, Vec<usize>>,
}

impl StateGraph {
    /// Records a state and (if new) the schedule prefix reaching it.
    pub fn note_state(&mut self, fp: u64, prefix: &[usize]) {
        self.first_prefix
            .entry(fp)
            .or_insert_with(|| prefix.to_vec());
    }

    /// Records a transition; returns `true` if it was new.
    pub fn note_edge(&mut self, from: u64, to: u64, completed: bool) -> bool {
        if self.edge_set.insert((from, to, completed)) {
            self.edges.entry(from).or_default().push((to, completed));
            true
        } else {
            false
        }
    }

    /// Number of distinct states recorded.
    pub fn state_count(&self) -> usize {
        self.first_prefix.len()
    }

    /// The first schedule prefix that reached `fp`, if recorded.
    pub fn witness_prefix(&self, fp: u64) -> Option<&[usize]> {
        self.first_prefix.get(&fp).map(Vec::as_slice)
    }

    /// Searches the completion-free transition subgraph for a cycle.
    /// Returns a state on the cycle, or `None` when every cycle of the
    /// explored graph completes an operation — the explored witness of
    /// lock-freedom.
    pub fn completion_free_cycle(&self) -> Option<u64> {
        // Iterative three-colour DFS over edges with `completed ==
        // false`.
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour: HashMap<u64, Colour> = HashMap::new();
        for &root in self.first_prefix.keys() {
            if *colour.get(&root).unwrap_or(&Colour::White) != Colour::White {
                continue;
            }
            // Stack of (node, next-child-index).
            let mut stack: Vec<(u64, usize)> = vec![(root, 0)];
            colour.insert(root, Colour::Grey);
            while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
                let children = self.edges.get(&node);
                let next = children.and_then(|cs| {
                    cs.iter()
                        .skip(*idx)
                        .position(|&(_, completed)| !completed)
                        .map(|off| (*idx + off, cs[*idx + off].0))
                });
                match next {
                    Some((child_idx, child)) => {
                        *idx = child_idx + 1;
                        match *colour.get(&child).unwrap_or(&Colour::White) {
                            Colour::Grey => return Some(child),
                            Colour::White => {
                                colour.insert(child, Colour::Grey);
                                stack.push((child, 0));
                            }
                            Colour::Black => {}
                        }
                    }
                    None => {
                        colour.insert(node, Colour::Black);
                        stack.pop();
                    }
                }
            }
        }
        None
    }
}

/// Runs the workspace's stochastic Theorem 3 progress audit for one of
/// the paper's algorithm specs — the large-scale complement to the
/// exhaustive small-config exploration.
///
/// # Errors
///
/// Propagates crash-schedule validation errors from the underlying
/// experiment (none occur without crashes).
pub fn stochastic_progress(
    algorithm: AlgorithmSpec,
    n: usize,
    steps: u64,
    seed: u64,
) -> Result<ProgressAuditReport, CrashScheduleError> {
    stochastic_audit(algorithm, SchedulerSpec::Uniform, n, steps, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acyclic_graph_has_no_completion_free_cycle() {
        let mut g = StateGraph::default();
        g.note_state(1, &[]);
        g.note_state(2, &[0]);
        g.note_state(3, &[0, 1]);
        g.note_edge(1, 2, false);
        g.note_edge(2, 3, false);
        assert_eq!(g.completion_free_cycle(), None);
        assert_eq!(g.state_count(), 3);
    }

    #[test]
    fn cycle_broken_by_completion_is_accepted() {
        let mut g = StateGraph::default();
        g.note_state(1, &[]);
        g.note_state(2, &[0]);
        g.note_edge(1, 2, false);
        g.note_edge(2, 1, true); // the cycle completes an op
        assert_eq!(g.completion_free_cycle(), None);
    }

    #[test]
    fn completion_free_cycle_is_found() {
        let mut g = StateGraph::default();
        g.note_state(1, &[]);
        g.note_state(2, &[0]);
        g.note_state(3, &[0, 1]);
        g.note_edge(1, 2, false);
        g.note_edge(2, 3, false);
        g.note_edge(3, 2, false);
        let hit = g.completion_free_cycle().expect("cycle exists");
        assert!(hit == 2 || hit == 3);
        assert!(g.witness_prefix(hit).is_some());
    }

    #[test]
    fn duplicate_edges_are_not_recorded_twice() {
        let mut g = StateGraph::default();
        assert!(g.note_edge(1, 2, false));
        assert!(!g.note_edge(1, 2, false));
        assert!(g.note_edge(1, 2, true), "completion flag distinguishes");
    }

    #[test]
    fn stochastic_progress_confirms_scu_minimal_progress() {
        let report = stochastic_progress(AlgorithmSpec::Scu { q: 0, s: 1 }, 3, 50_000, 11).unwrap();
        assert!(report.minimal_bound.is_some());
    }

    #[test]
    fn self_loop_without_completion_is_a_livelock() {
        let mut g = StateGraph::default();
        g.note_state(5, &[]);
        g.note_edge(5, 5, false);
        assert_eq!(g.completion_free_cycle(), Some(5));
    }
}
