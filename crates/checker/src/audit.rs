//! Lock-freedom auditing over the explored state graph.
//!
//! The explorer ([`crate::explore`]) catches livelocks *within* one
//! execution (a repeated completion-free state). This module adds the
//! global check: in the union of all explored transitions, is there a
//! reachable cycle containing no operation completion? Such a cycle
//! can be scheduled forever, producing an infinite execution in which
//! no process completes — refuting lock-freedom even when no single
//! bounded execution repeats a state.
//!
//! The checker also verifies the paper's Theorem 3 *exhaustively*:
//! under a stochastic (fair) scheduler, progress fails precisely when
//! some reachable state can never again reach a completion — i.e. the
//! merged graph has a reachable *bottom* strongly-connected component
//! that contains a cycle but no completion edge. [`StateGraph::fair_livelock`]
//! finds such components. This is strictly weaker than
//! [`StateGraph::completion_free_cycle`]: a spin loop with an escape
//! edge refutes lock-freedom (an adversarial scheduler stays in it
//! forever) but passes the fair audit (a stochastic scheduler leaves
//! it with probability 1) — exactly the gap between the paper's
//! worst-case and practically-wait-free claims, and the standard
//! blocking-by-design targets ([`crate::target::Progress::StochasticOnly`])
//! are held to.
//!
//! A second, stochastic angle reuses the workspace's Theorem 3 audit
//! (`pwf_core::progress_audit`): long uniform-scheduler runs of the
//! *unbounded* algorithm confirm that bounded minimal progress holds
//! in the large, complementing the small-config exhaustive proof.

use std::collections::{HashMap, HashSet};

use pwf_core::progress_audit::{audit as stochastic_audit, ProgressAuditReport};
use pwf_core::spec::{AlgorithmSpec, SchedulerSpec};
use pwf_sim::crash::CrashScheduleError;

/// The explored state graph: fingerprint-keyed states, transitions
/// annotated with whether they completed an operation, and for each
/// state the first schedule prefix that reached it (a witness).
#[derive(Debug, Default)]
pub struct StateGraph {
    edges: HashMap<u64, Vec<(u64, bool)>>,
    edge_set: HashSet<(u64, u64, bool)>,
    first_prefix: HashMap<u64, Vec<usize>>,
}

impl StateGraph {
    /// Records a state and (if new) the schedule prefix reaching it.
    pub fn note_state(&mut self, fp: u64, prefix: &[usize]) {
        self.first_prefix
            .entry(fp)
            .or_insert_with(|| prefix.to_vec());
    }

    /// Records a transition; returns `true` if it was new.
    pub fn note_edge(&mut self, from: u64, to: u64, completed: bool) -> bool {
        if self.edge_set.insert((from, to, completed)) {
            self.edges.entry(from).or_default().push((to, completed));
            true
        } else {
            false
        }
    }

    /// Number of distinct states recorded.
    pub fn state_count(&self) -> usize {
        self.first_prefix.len()
    }

    /// The first schedule prefix that reached `fp`, if recorded.
    pub fn witness_prefix(&self, fp: u64) -> Option<&[usize]> {
        self.first_prefix.get(&fp).map(Vec::as_slice)
    }

    /// The fair-progress (Theorem 3) audit: finds a reachable bottom
    /// strongly-connected component that contains at least one edge
    /// but no completion edge. From any state of such a component no
    /// completion is ever reachable, so *every* scheduler — fair or
    /// not — starves the processes; its existence refutes progress
    /// under the paper's stochastic scheduler. Conversely, a
    /// completion-free cycle that can still *exit* toward a completion
    /// is left alone: a fair scheduler escapes it with probability 1.
    ///
    /// Returns the smallest state fingerprint inside a violating
    /// component (deterministic regardless of map iteration order), or
    /// `None` when every fair execution keeps completing operations.
    ///
    /// Soundness requires an *edge-complete* graph (an unpruned
    /// exploration): sleep-set reduction omits edges whose
    /// interleavings are covered from equivalent states elsewhere, and
    /// a missing escape edge can make an escapable spin state look
    /// like a bottom component. On a pruned graph, only trust a `None`
    /// (and note that [`Self::completion_free_cycle`] returning `None`
    /// already implies it: a completion-free bottom component contains
    /// a completion-free cycle).
    pub fn fair_livelock(&self) -> Option<u64> {
        // Node universe: everything noted plus every edge endpoint,
        // sorted so component numbering and the returned witness are
        // deterministic.
        let mut nodes: Vec<u64> = self.first_prefix.keys().copied().collect();
        for (&from, outs) in &self.edges {
            nodes.push(from);
            nodes.extend(outs.iter().map(|&(to, _)| to));
        }
        nodes.sort_unstable();
        nodes.dedup();
        let idx_of: HashMap<u64, usize> = nodes.iter().enumerate().map(|(i, &f)| (f, i)).collect();
        let adj: Vec<Vec<usize>> = nodes
            .iter()
            .map(|f| {
                self.edges.get(f).map_or_else(Vec::new, |outs| {
                    outs.iter().map(|&(to, _)| idx_of[&to]).collect()
                })
            })
            .collect();
        let n = nodes.len();

        // Iterative Tarjan SCC.
        let mut order = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut comp = vec![usize::MAX; n];
        let mut next_order = 0usize;
        let mut ncomps = 0usize;
        for root in 0..n {
            if order[root] != usize::MAX {
                continue;
            }
            let mut call: Vec<(usize, usize)> = vec![(root, 0)];
            order[root] = next_order;
            low[root] = next_order;
            next_order += 1;
            stack.push(root);
            on_stack[root] = true;
            while let Some(&(v, cursor)) = call.last() {
                if let Some(&w) = adj[v].get(cursor) {
                    call.last_mut().expect("frame exists").1 += 1;
                    if order[w] == usize::MAX {
                        order[w] = next_order;
                        low[w] = next_order;
                        next_order += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        call.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(order[w]);
                    }
                } else {
                    call.pop();
                    if low[v] == order[v] {
                        loop {
                            let w = stack.pop().expect("SCC stack underflow");
                            on_stack[w] = false;
                            comp[w] = ncomps;
                            if w == v {
                                break;
                            }
                        }
                        ncomps += 1;
                    }
                    if let Some(&(u, _)) = call.last() {
                        low[u] = low[u].min(low[v]);
                    }
                }
            }
        }

        // Per-component: any internal edge, any internal completion,
        // any edge out to another component.
        let mut internal = vec![false; ncomps];
        let mut completes = vec![false; ncomps];
        let mut outgoing = vec![false; ncomps];
        for (&from, outs) in &self.edges {
            let cf = comp[idx_of[&from]];
            for &(to, completed) in outs {
                let ct = comp[idx_of[&to]];
                if cf == ct {
                    internal[cf] = true;
                    if completed {
                        completes[cf] = true;
                    }
                } else {
                    outgoing[cf] = true;
                }
            }
        }
        nodes
            .iter()
            .enumerate()
            .filter(|&(i, _)| {
                let c = comp[i];
                internal[c] && !completes[c] && !outgoing[c]
            })
            .map(|(_, &fp)| fp)
            .min()
    }

    /// Searches the completion-free transition subgraph for a cycle.
    /// Returns a state on the cycle, or `None` when every cycle of the
    /// explored graph completes an operation — the explored witness of
    /// lock-freedom.
    pub fn completion_free_cycle(&self) -> Option<u64> {
        // Iterative three-colour DFS over edges with `completed ==
        // false`.
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour: HashMap<u64, Colour> = HashMap::new();
        for &root in self.first_prefix.keys() {
            if *colour.get(&root).unwrap_or(&Colour::White) != Colour::White {
                continue;
            }
            // Stack of (node, next-child-index).
            let mut stack: Vec<(u64, usize)> = vec![(root, 0)];
            colour.insert(root, Colour::Grey);
            while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
                let children = self.edges.get(&node);
                let next = children.and_then(|cs| {
                    cs.iter()
                        .skip(*idx)
                        .position(|&(_, completed)| !completed)
                        .map(|off| (*idx + off, cs[*idx + off].0))
                });
                match next {
                    Some((child_idx, child)) => {
                        *idx = child_idx + 1;
                        match *colour.get(&child).unwrap_or(&Colour::White) {
                            Colour::Grey => return Some(child),
                            Colour::White => {
                                colour.insert(child, Colour::Grey);
                                stack.push((child, 0));
                            }
                            Colour::Black => {}
                        }
                    }
                    None => {
                        colour.insert(node, Colour::Black);
                        stack.pop();
                    }
                }
            }
        }
        None
    }
}

/// Runs the workspace's stochastic Theorem 3 progress audit for one of
/// the paper's algorithm specs — the large-scale complement to the
/// exhaustive small-config exploration.
///
/// # Errors
///
/// Propagates crash-schedule validation errors from the underlying
/// experiment (none occur without crashes).
pub fn stochastic_progress(
    algorithm: AlgorithmSpec,
    n: usize,
    steps: u64,
    seed: u64,
) -> Result<ProgressAuditReport, CrashScheduleError> {
    stochastic_audit(algorithm, SchedulerSpec::Uniform, n, steps, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acyclic_graph_has_no_completion_free_cycle() {
        let mut g = StateGraph::default();
        g.note_state(1, &[]);
        g.note_state(2, &[0]);
        g.note_state(3, &[0, 1]);
        g.note_edge(1, 2, false);
        g.note_edge(2, 3, false);
        assert_eq!(g.completion_free_cycle(), None);
        assert_eq!(g.state_count(), 3);
    }

    #[test]
    fn cycle_broken_by_completion_is_accepted() {
        let mut g = StateGraph::default();
        g.note_state(1, &[]);
        g.note_state(2, &[0]);
        g.note_edge(1, 2, false);
        g.note_edge(2, 1, true); // the cycle completes an op
        assert_eq!(g.completion_free_cycle(), None);
    }

    #[test]
    fn completion_free_cycle_is_found() {
        let mut g = StateGraph::default();
        g.note_state(1, &[]);
        g.note_state(2, &[0]);
        g.note_state(3, &[0, 1]);
        g.note_edge(1, 2, false);
        g.note_edge(2, 3, false);
        g.note_edge(3, 2, false);
        let hit = g.completion_free_cycle().expect("cycle exists");
        assert!(hit == 2 || hit == 3);
        assert!(g.witness_prefix(hit).is_some());
    }

    #[test]
    fn duplicate_edges_are_not_recorded_twice() {
        let mut g = StateGraph::default();
        assert!(g.note_edge(1, 2, false));
        assert!(!g.note_edge(1, 2, false));
        assert!(g.note_edge(1, 2, true), "completion flag distinguishes");
    }

    #[test]
    fn stochastic_progress_confirms_scu_minimal_progress() {
        let report = stochastic_progress(AlgorithmSpec::Scu { q: 0, s: 1 }, 3, 50_000, 11).unwrap();
        assert!(report.minimal_bound.is_some());
    }

    #[test]
    fn self_loop_without_completion_is_a_livelock() {
        let mut g = StateGraph::default();
        g.note_state(5, &[]);
        g.note_edge(5, 5, false);
        assert_eq!(g.completion_free_cycle(), Some(5));
    }

    #[test]
    fn escapable_spin_loop_fails_lock_freedom_but_passes_the_fair_audit() {
        // 1 ⇄ 2 is a completion-free cycle, but 2 → 3 completes an op:
        // an adversarial scheduler can spin forever (not lock-free),
        // while a stochastic one escapes with probability 1 (Thm 3
        // progress holds). This is exactly the gap between the two
        // audits.
        let mut g = StateGraph::default();
        g.note_state(1, &[]);
        g.note_state(2, &[0]);
        g.note_state(3, &[0, 1]);
        g.note_edge(1, 2, false);
        g.note_edge(2, 1, false);
        g.note_edge(2, 3, true);
        assert!(g.completion_free_cycle().is_some());
        assert_eq!(g.fair_livelock(), None);
    }

    #[test]
    fn completion_free_bottom_component_fails_the_fair_audit() {
        // 1 → {2 ⇄ 3} with no exit and no completion: once inside, no
        // scheduler — fair or not — ever completes an operation.
        let mut g = StateGraph::default();
        g.note_state(1, &[]);
        g.note_edge(1, 2, true);
        g.note_edge(2, 3, false);
        g.note_edge(3, 2, false);
        assert_eq!(g.fair_livelock(), Some(2), "smallest member is returned");
    }

    #[test]
    fn bottom_component_with_an_internal_completion_passes() {
        let mut g = StateGraph::default();
        g.note_state(1, &[]);
        g.note_edge(1, 2, false);
        g.note_edge(2, 1, true); // the cycle keeps completing ops
        assert_eq!(g.fair_livelock(), None);
    }

    #[test]
    fn terminal_states_are_not_fair_livelocks() {
        let mut g = StateGraph::default();
        g.note_state(1, &[]);
        g.note_state(2, &[0]);
        g.note_edge(1, 2, true);
        assert_eq!(g.fair_livelock(), None, "sinks without cycles are fine");
    }

    #[test]
    fn completion_free_self_loop_sink_fails_both_audits() {
        let mut g = StateGraph::default();
        g.note_state(7, &[]);
        g.note_edge(7, 7, false);
        assert_eq!(g.completion_free_cycle(), Some(7));
        assert_eq!(g.fair_livelock(), Some(7));
    }
}
