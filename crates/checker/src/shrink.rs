//! Counterexample shrinking and replayable schedule files.
//!
//! A violating schedule straight out of the explorer often contains
//! steps irrelevant to the failure. [`shrink`] applies a delta-debug
//! style minimisation: repeatedly delete chunks of the schedule
//! (halving chunk sizes down to single steps) and keep any candidate
//! that still reproduces the violation. Candidates are evaluated by
//! best-effort re-execution ([`crate::explore::run_schedule`]): steps
//! naming a finished process are skipped and truncated runs are
//! completed round-robin, so every candidate is a *complete* execution
//! and its linearizability verdict is sound. The schedule kept is the
//! trace that was actually executed, so the result replays
//! deterministically.
//!
//! Shrunk schedules serialise to a small text format (`# target:`
//! header plus whitespace-separated process indices) consumable by
//! `pwf vet --replay` and convertible to a
//! [`pwf_sim::replay::ReplayScheduler`] trace.

use pwf_sim::process::ProcessId;

use crate::explore::{run_schedule, ViolationKind};
use crate::lin;
use crate::target::CheckTarget;

/// Depth bound used when re-executing candidate schedules.
const SHRINK_MAX_DEPTH: usize = 4_096;

/// Re-executes `schedule` and reports whether the violation of `kind`
/// reproduces; on reproduction returns the actually executed trace.
pub fn reproduces(
    target: &CheckTarget,
    kind: ViolationKind,
    schedule: &[usize],
) -> Option<Vec<usize>> {
    let run = run_schedule(target, schedule, SHRINK_MAX_DEPTH);
    let hit = match kind {
        ViolationKind::Livelock => run.livelocked(),
        ViolationKind::NotLinearizable => {
            run.is_terminal() && !lin::check(run.spec(), run.ops()).is_linearizable()
        }
    };
    if hit {
        Some(run.trace().to_vec())
    } else {
        None
    }
}

/// Minimises a violating schedule. Returns the shrunk schedule (always
/// itself a reproducing, fully executed trace).
///
/// # Panics
///
/// Panics if `schedule` does not reproduce the violation — the input
/// is supposed to come from the explorer.
pub fn shrink(target: &CheckTarget, kind: ViolationKind, schedule: &[usize]) -> Vec<usize> {
    let mut best = reproduces(target, kind, schedule)
        .expect("the explorer-provided schedule must reproduce its violation");
    let mut chunk = (best.len() / 2).max(1);
    loop {
        let mut improved = false;
        let mut i = 0;
        while i < best.len() {
            let end = (i + chunk).min(best.len());
            let mut candidate = best[..i].to_vec();
            candidate.extend_from_slice(&best[end..]);
            match reproduces(target, kind, &candidate) {
                Some(trace) if trace.len() < best.len() => {
                    best = trace;
                    improved = true;
                    i = 0;
                }
                _ => i += chunk,
            }
        }
        if chunk == 1 && !improved {
            return best;
        }
        chunk = (chunk / 2).max(1);
    }
}

/// Serialises a schedule to the replay file format.
pub fn serialize_schedule(target_name: &str, schedule: &[usize]) -> String {
    let steps: Vec<String> = schedule.iter().map(usize::to_string).collect();
    format!(
        "# pwf-vet schedule\n# target: {target_name}\n{}\n",
        steps.join(" ")
    )
}

/// Parses the replay file format. Returns the target name from the
/// header (if present) and the schedule.
///
/// # Errors
///
/// Returns a description of the first malformed token.
pub fn parse_schedule(text: &str) -> Result<(Option<String>, Vec<usize>), String> {
    let mut target = None;
    let mut schedule = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if let Some(comment) = line.strip_prefix('#') {
            if let Some(name) = comment.trim().strip_prefix("target:") {
                target = Some(name.trim().to_string());
            }
            continue;
        }
        for token in line.split_whitespace() {
            let idx: usize = token
                .parse()
                .map_err(|_| format!("malformed schedule token {token:?}"))?;
            schedule.push(idx);
        }
    }
    Ok((target, schedule))
}

/// Converts a schedule of process indices into a replay trace for
/// [`pwf_sim::replay::ReplayScheduler`].
pub fn to_replay_trace(schedule: &[usize]) -> Vec<ProcessId> {
    schedule.iter().map(|&i| ProcessId::new(i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_files_round_trip() {
        let text = serialize_schedule("counter", &[0, 1, 1, 0, 2]);
        let (target, schedule) = parse_schedule(&text).unwrap();
        assert_eq!(target.as_deref(), Some("counter"));
        assert_eq!(schedule, vec![0, 1, 1, 0, 2]);
    }

    #[test]
    fn parse_rejects_junk() {
        assert!(parse_schedule("0 1 x 2").is_err());
    }

    #[test]
    fn parse_accepts_headerless_files() {
        let (target, schedule) = parse_schedule("0 1\n1 0\n").unwrap();
        assert_eq!(target, None);
        assert_eq!(schedule, vec![0, 1, 1, 0]);
    }

    #[test]
    fn replay_trace_preserves_order() {
        let trace = to_replay_trace(&[1, 0]);
        assert_eq!(trace, vec![ProcessId::new(1), ProcessId::new(0)]);
    }
}
