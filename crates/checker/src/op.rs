//! Operation records: what a completed method invocation *did*, with
//! its real-time interval in the explored schedule.
//!
//! The simulator's histories (`pwf_sim::history`) carry only
//! invoke/respond events; linearizability additionally needs the
//! semantic content of each operation (which method, which argument,
//! which return value). [`OpRecord`] carries that content and
//! [`TimedOp`] pins it to the invoke/response steps of one execution.

use std::fmt;

use pwf_sim::process::ProcessId;

/// The semantic content of one completed operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRecord {
    /// Method name (`"inc"`, `"push"`, `"pop"`, `"enq"`, `"deq"`,
    /// `"cas"`, …) — interpreted by the sequential spec.
    pub name: &'static str,
    /// Method argument, if any.
    pub input: Option<u64>,
    /// Return value; `None` encodes value-less returns (a push) and
    /// "empty" returns (a pop/dequeue on an empty structure), which
    /// specs disambiguate by method name.
    pub output: Option<u64>,
}

impl fmt::Display for OpRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if let Some(v) = self.input {
            write!(f, "({v})")?;
        } else {
            write!(f, "()")?;
        }
        match self.output {
            Some(v) => write!(f, " -> {v}"),
            None => write!(f, " -> ·"),
        }
    }
}

/// One operation of an explored execution, with its real-time
/// interval: invoked at its process's first step of the invocation,
/// responded at the completing step (both 1-based schedule indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedOp {
    /// The invoking process.
    pub process: ProcessId,
    /// 1-based step index of the operation's first step.
    pub invoke: u64,
    /// 1-based step index of the completing step.
    pub response: u64,
    /// What the operation did.
    pub record: OpRecord,
}

impl TimedOp {
    /// Whether this operation's response strictly precedes `other`'s
    /// invocation (the real-time precedence linearizability must
    /// respect).
    pub fn precedes(&self, other: &TimedOp) -> bool {
        self.response < other.invoke
    }
}

impl fmt::Display for TimedOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>3},{:>3}] {} {}",
            self.invoke, self.response, self.process, self.record
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(name: &'static str, invoke: u64, response: u64) -> TimedOp {
        TimedOp {
            process: ProcessId::new(0),
            invoke,
            response,
            record: OpRecord {
                name,
                input: None,
                output: None,
            },
        }
    }

    #[test]
    fn precedence_is_strict_response_before_invoke() {
        let a = op("a", 1, 3);
        let b = op("b", 4, 6);
        let c = op("c", 3, 5);
        assert!(a.precedes(&b));
        assert!(!a.precedes(&c)); // overlap at step 3
        assert!(!b.precedes(&a));
    }

    #[test]
    fn records_render_compactly() {
        let r = OpRecord {
            name: "push",
            input: Some(7),
            output: None,
        };
        assert_eq!(r.to_string(), "push(7) -> ·");
        let r = OpRecord {
            name: "pop",
            input: None,
            output: Some(7),
        };
        assert_eq!(r.to_string(), "pop() -> 7");
    }
}
