//! Checkable targets: a [`Process`] that can also *report* what each
//! completed operation did, bundled with the shared memory, sequential
//! spec, and per-process operation budgets that define one small,
//! exhaustively explorable configuration.
//!
//! Exploration is *stateless* (CHESS-style): the explorer never clones
//! a live configuration. Instead a [`CheckTarget`] carries a factory
//! closure that rebuilds the configuration from scratch, and every
//! branch of the schedule tree replays its prefix against a fresh
//! build. This sidesteps processes whose local state is not cloneable
//! (e.g. the hardware-backed ones holding `Rc<RefCell<…>>` handles).

use pwf_sim::memory::SharedMemory;
use pwf_sim::process::{Process, StepOutcome};

use crate::op::OpRecord;
use crate::spec::Spec;

/// A process the checker can drive *and* interrogate.
///
/// `last_op` must describe the operation that the most recent
/// [`Process::step`] completed; it is only read immediately after a
/// step returning [`StepOutcome::Completed`], so implementations may
/// let the value go stale between completions.
pub trait CheckProcess: Process {
    /// The operation completed by the most recent `Completed` step.
    fn last_op(&self) -> OpRecord;

    /// Fingerprint of all local state that influences future behaviour
    /// (program counter, cached reads, pending proposal, …). Together
    /// with [`SharedMemory::fingerprint`] this keys the explored-state
    /// table, so two states with equal fingerprints must behave
    /// identically from here on.
    fn local_fingerprint(&self) -> u64;
}

impl std::fmt::Debug for dyn CheckProcess + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CheckProcess({})", self.name())
    }
}

/// Adapter lifting a boxed [`CheckProcess`] into a plain
/// [`Process`], for running checker targets under the simulator's
/// executor (e.g. the replay round-trip). Rust will not coerce
/// `Box<dyn CheckProcess>` into `Box<dyn Process>` directly, hence the
/// newtype.
pub struct Shim(pub Box<dyn CheckProcess>);

impl Process for Shim {
    fn step(&mut self, mem: &mut SharedMemory) -> StepOutcome {
        self.0.step(mem)
    }

    fn name(&self) -> &'static str {
        self.0.name()
    }
}

/// One fully built configuration: shared memory, processes, the spec
/// their completed operations are checked against, and how many
/// operations each process runs before halting.
pub struct CheckConfig {
    /// Shared memory, pre-initialised (e.g. a pre-populated stack).
    pub mem: SharedMemory,
    /// The processes, index = [`pwf_sim::process::ProcessId`].
    pub procs: Vec<Box<dyn CheckProcess>>,
    /// Sequential specification for the object the processes share.
    pub spec: Spec,
    /// Operations each process performs before it halts (same order as
    /// `procs`). A process whose budget is exhausted is disabled.
    pub budgets: Vec<u32>,
}

impl CheckConfig {
    /// Number of processes.
    pub fn n(&self) -> usize {
        self.procs.len()
    }

    /// Total operation budget across all processes.
    pub fn total_ops(&self) -> u32 {
        self.budgets.iter().sum()
    }
}

/// Which progress property a target is held to.
///
/// The paper's Theorem 3 separates two liveness standards: lock-free
/// algorithms make progress under *every* scheduler, while blocking
/// protocols (a joiner waiting on a coalescer's publish) make progress
/// only under schedulers that are fair to the publisher. The checker
/// mirrors that split: `LockFree` targets must have no schedulable
/// completion-free cycle at all, and any within-run completion-free
/// state revisit is itself a violation; `StochasticOnly` targets may
/// spin, and are instead audited for *fair* progress — every bottom
/// strongly-connected component of the merged state graph must contain
/// a completion edge ([`crate::audit::StateGraph::fair_livelock`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Progress {
    /// Progress under every scheduler: no completion-free cycle.
    LockFree,
    /// Progress under fair (stochastic) schedulers only: spinning is
    /// legal, but no reachable sink component may be completion-free.
    StochasticOnly,
}

/// A named, rebuildable configuration for the checker, plus the
/// expected verdict (mutant targets are *supposed* to fail).
#[derive(Clone, Copy)]
pub struct CheckTarget {
    /// Stable identifier used on the `pwf vet` command line.
    pub name: &'static str,
    /// One-line description for `pwf vet --list` and reports.
    pub description: &'static str,
    /// `true` for seeded mutants: the target passes vetting precisely
    /// when the checker *finds* a violation.
    pub expect_failure: bool,
    /// The progress standard the target is audited against.
    pub progress: Progress,
    /// Factory: builds a fresh configuration. Called once per explored
    /// execution, so it must be deterministic.
    pub build: fn() -> CheckConfig,
}

impl CheckTarget {
    /// Builds a fresh configuration.
    pub fn build(&self) -> CheckConfig {
        (self.build)()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(pwf_sim::memory::RegisterId);

    impl Process for Fixed {
        fn step(&mut self, mem: &mut SharedMemory) -> StepOutcome {
            let _ = mem.read(self.0);
            StepOutcome::Completed
        }

        fn name(&self) -> &'static str {
            "fixed"
        }
    }

    impl CheckProcess for Fixed {
        fn last_op(&self) -> OpRecord {
            OpRecord {
                name: "read",
                input: None,
                output: Some(0),
            }
        }

        fn local_fingerprint(&self) -> u64 {
            0
        }
    }

    #[test]
    fn shim_delegates_to_the_inner_process() {
        let mut mem = SharedMemory::new();
        let r = mem.alloc(0);
        let mut shim = Shim(Box::new(Fixed(r)));
        assert_eq!(shim.name(), "fixed");
        assert!(shim.step(&mut mem).is_completed());
    }

    #[test]
    fn config_totals_budgets() {
        let mut mem = SharedMemory::new();
        let r = mem.alloc(0);
        let cfg = CheckConfig {
            mem,
            procs: vec![Box::new(Fixed(r)), Box::new(Fixed(r))],
            spec: Spec::counter(),
            budgets: vec![2, 3],
        };
        assert_eq!(cfg.n(), 2);
        assert_eq!(cfg.total_ops(), 5);
    }
}
