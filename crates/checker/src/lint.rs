//! Static atomics-ordering lint (`pwf vet --orderings`).
//!
//! Scans Rust sources for `std::sync::atomic` call sites and applies a
//! small rule set about memory orderings. The hardware crate is the
//! only place in this workspace where real atomics live; orderings
//! there are correctness-critical and easy to silently weaken in
//! review, so every site must either satisfy the rules or carry an
//! entry in a committed allowlist with a one-line justification.
//!
//! The scanner is deliberately textual (no syntax tree): it finds
//! method-call patterns (`.load(…)`, `.compare_exchange(…, …, …, …)`,
//! `.fetch_*(…)`, `.swap(…)`, `.store(…)`), extracts the argument list
//! by balanced-parenthesis matching, and attributes each site to the
//! lexically enclosing `fn`. That is precise enough for this
//! workspace's style and keeps the lint dependency-free.
//!
//! ## Rules
//!
//! * `seqcst` — any `SeqCst` ordering: almost always stronger than
//!   needed; use acquire/release and justify the exceptions.
//! * `cas-failure-order` — a compare-exchange whose failure ordering
//!   is stronger than its success ordering.
//! * `cas-no-release` — a compare-exchange whose success ordering
//!   lacks release semantics: values written before the CAS are not
//!   published to the reader that wins next.
//! * `relaxed-store` — a `Relaxed` store: publishes nothing; only
//!   correct for counters or data protected by another release edge.
//! * `relaxed-rmw` — a `Relaxed` read-modify-write (`fetch_*`/`swap`).
//! * `relaxed-load` — a `Relaxed` load: sees no writes published by a
//!   release edge; only correct for statistics or tag counters.
//!
//! An allowlist line has the form
//! `file.rs:function:rule  justification text`, and unused entries are
//! themselves reported (stale allowlists hide regressions).

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// File name (base name of the scanned file).
    pub file: String,
    /// 1-based line number of the call site.
    pub line: usize,
    /// Lexically enclosing function.
    pub function: String,
    /// Rule identifier.
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    /// The allowlist key for this finding.
    pub fn key(&self) -> String {
        format!("{}:{}:{}", self.file, self.function, self.rule)
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} ({}) [{}] {}",
            self.file, self.line, self.function, self.rule, self.message
        )
    }
}

const ORDERINGS: [(&str, u8); 5] = [
    ("SeqCst", 3),
    ("AcqRel", 2),
    ("Acquire", 1),
    ("Release", 1),
    ("Relaxed", 0),
];

fn ordering_of(arg: &str) -> Option<(&'static str, u8)> {
    ORDERINGS
        .iter()
        .find(|(name, _)| arg.contains(name))
        .map(|&(name, rank)| (name, rank))
}

/// The atomic method families the lint recognises.
const METHODS: [&str; 4] = [".load(", ".store(", ".swap(", ".compare_exchange"];

/// Strips line comments (best effort — this workspace does not put
/// `//` inside string literals in atomic code).
fn strip_comments(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Splits an argument list at top-level commas.
fn split_args(args: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in args.char_indices() {
        match c {
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(args[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    let last = args[start..].trim();
    if !last.is_empty() {
        out.push(last);
    }
    out
}

/// Extracts the balanced-parenthesis span starting at `open` (which
/// must index a `(`); returns the contents between the parens.
fn paren_span(text: &str, open: usize) -> Option<&str> {
    debug_assert_eq!(&text[open..open + 1], "(");
    let mut depth = 0usize;
    for (off, c) in text[open..].char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&text[open + 1..open + off]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Lints one source text. `file_label` is used in findings (typically
/// the file's base name).
pub fn lint_source(file_label: &str, source: &str) -> Vec<Finding> {
    // Pre-pass: byte offset → enclosing fn, via the last `fn name`
    // declared at or before the offset.
    let mut fns: Vec<(usize, String)> = Vec::new();
    let mut clean = String::with_capacity(source.len());
    for line in source.lines() {
        clean.push_str(strip_comments(line));
        clean.push('\n');
    }
    let bytes = clean.as_bytes();
    let mut i = 0;
    while let Some(pos) = clean[i..].find("fn ") {
        let at = i + pos;
        // Require a word boundary before `fn`.
        let boundary = at == 0 || !bytes[at - 1].is_ascii_alphanumeric() && bytes[at - 1] != b'_';
        if boundary {
            let rest = &clean[at + 3..];
            let name: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                fns.push((at, name));
            }
        }
        i = at + 3;
    }
    let enclosing = |offset: usize| -> String {
        fns.iter()
            .rev()
            .find(|&&(at, _)| at <= offset)
            .map(|(_, name)| name.clone())
            .unwrap_or_else(|| "<toplevel>".to_string())
    };
    let line_of = |offset: usize| -> usize { clean[..offset].matches('\n').count() + 1 };

    let mut findings = Vec::new();
    let mut push = |offset: usize, rule: &'static str, message: String| {
        findings.push(Finding {
            file: file_label.to_string(),
            line: line_of(offset),
            function: enclosing(offset),
            rule,
            message,
        });
    };

    for method in METHODS {
        let mut from = 0;
        while let Some(pos) = clean[from..].find(method) {
            let at = from + pos;
            from = at + method.len();
            // Locate the opening paren of the call.
            let open = if method.ends_with('(') {
                at + method.len() - 1
            } else {
                // `.compare_exchange` / `.compare_exchange_weak`
                match clean[at..].find('(') {
                    Some(off) => at + off,
                    None => continue,
                }
            };
            let Some(args_text) = paren_span(&clean, open) else {
                continue;
            };
            let args = split_args(args_text);
            let site_orderings: Vec<(&'static str, u8)> =
                args.iter().filter_map(|a| ordering_of(a)).collect();
            if site_orderings.is_empty() {
                continue; // not an atomic call (e.g. Vec::swap)
            }
            for &(name, _) in &site_orderings {
                if name == "SeqCst" {
                    push(
                        at,
                        "seqcst",
                        format!("{} uses SeqCst", method.trim_start_matches('.')),
                    );
                }
            }
            if method == ".compare_exchange" {
                if let [.., success, failure] = site_orderings.as_slice() {
                    if failure.1 > success.1 {
                        push(
                            at,
                            "cas-failure-order",
                            format!(
                                "failure ordering {} stronger than success ordering {}",
                                failure.0, success.0
                            ),
                        );
                    }
                    if success.0 == "Relaxed" || success.0 == "Acquire" {
                        push(
                            at,
                            "cas-no-release",
                            format!("success ordering {} lacks release semantics", success.0),
                        );
                    }
                }
            } else if let Some(&(name, _)) = site_orderings.first() {
                if name == "Relaxed" {
                    let rule = match method {
                        ".load(" => "relaxed-load",
                        ".store(" => "relaxed-store",
                        _ => "relaxed-rmw",
                    };
                    push(
                        at,
                        rule,
                        format!("Relaxed {}…)", method.trim_start_matches('.')),
                    );
                }
            }
        }
    }
    // `fetch_*` RMWs.
    let mut from = 0;
    while let Some(pos) = clean[from..].find(".fetch_") {
        let at = from + pos;
        from = at + ".fetch_".len();
        let Some(open_off) = clean[at..].find('(') else {
            continue;
        };
        let open = at + open_off;
        let Some(args_text) = paren_span(&clean, open) else {
            continue;
        };
        let orderings: Vec<(&'static str, u8)> = split_args(args_text)
            .iter()
            .filter_map(|a| ordering_of(a))
            .collect();
        match orderings.first() {
            Some(&("SeqCst", _)) => push(at, "seqcst", "fetch_* uses SeqCst".to_string()),
            Some(&("Relaxed", _)) => {
                push(at, "relaxed-rmw", "Relaxed fetch_*(…)".to_string());
            }
            _ => {}
        }
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Recursively lints every `*.rs` file under `root`.
///
/// # Errors
///
/// Propagates I/O errors from directory traversal and file reads.
pub fn lint_dir(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = fs::read_dir(&dir)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(|e| e.path());
        for entry in entries {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let label = path
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                let source = fs::read_to_string(&path)?;
                findings.extend(lint_source(&label, &source));
            }
        }
    }
    Ok(findings)
}

/// Parses an allowlist: `file.rs:function:rule  justification` per
/// line, `#` comments and blank lines ignored.
pub fn parse_allowlist(text: &str) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, justification) = match line.split_once(char::is_whitespace) {
            Some((k, j)) => (k.to_string(), j.trim().to_string()),
            None => (line.to_string(), String::new()),
        };
        map.insert(key, justification);
    }
    map
}

/// Splits findings into violations (not allowlisted) and the set of
/// allowlist keys that matched; also returns allowlist entries that
/// matched nothing (stale).
pub struct LintVerdict {
    /// Findings with no allowlist entry.
    pub violations: Vec<Finding>,
    /// Findings covered by the allowlist.
    pub allowed: Vec<Finding>,
    /// Allowlist keys that matched no finding.
    pub stale: Vec<String>,
}

/// Applies an allowlist to a set of findings.
pub fn apply_allowlist(findings: Vec<Finding>, allow: &BTreeMap<String, String>) -> LintVerdict {
    let mut used: BTreeMap<&str, bool> = allow.keys().map(|k| (k.as_str(), false)).collect();
    let mut violations = Vec::new();
    let mut allowed = Vec::new();
    for f in findings {
        let key = f.key();
        if let Some(hit) = used.get_mut(key.as_str()) {
            *hit = true;
            allowed.push(f);
        } else {
            violations.push(f);
        }
    }
    let stale = used
        .into_iter()
        .filter_map(|(k, hit)| if hit { None } else { Some(k.to_string()) })
        .collect();
    LintVerdict {
        violations,
        allowed,
        stale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn seqcst_is_flagged_everywhere() {
        let src = "fn f(a: &AtomicU64) { a.load(Ordering::SeqCst); }";
        let fs = lint_source("t.rs", src);
        assert_eq!(rules(&fs), vec!["seqcst"]);
        assert_eq!(fs[0].function, "f");
        assert_eq!(fs[0].key(), "t.rs:f:seqcst");
    }

    #[test]
    fn relaxed_rules_distinguish_load_store_rmw() {
        let src = r"
fn g(a: &AtomicU64) {
    a.load(Ordering::Relaxed);
    a.store(1, Ordering::Relaxed);
    a.fetch_add(1, Ordering::Relaxed);
    a.swap(2, Ordering::Relaxed);
}";
        let fs = lint_source("t.rs", src);
        let mut got = rules(&fs);
        got.sort_unstable();
        assert_eq!(
            got,
            vec![
                "relaxed-load",
                "relaxed-rmw",
                "relaxed-rmw",
                "relaxed-store"
            ]
        );
    }

    #[test]
    fn cas_failure_stronger_than_success_is_flagged() {
        let src = "fn h(a: &AtomicU64) { \
                   a.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Acquire); }";
        let fs = lint_source("t.rs", src);
        assert!(rules(&fs).contains(&"cas-failure-order"));
        assert!(rules(&fs).contains(&"cas-no-release"));
    }

    #[test]
    fn release_cas_with_weaker_failure_is_clean() {
        let src = "fn h(a: &AtomicU64) { \
                   a.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire); }";
        assert!(lint_source("t.rs", src).is_empty());
    }

    #[test]
    fn acquire_release_pairs_are_clean() {
        let src = r"
fn f(a: &AtomicU64) {
    a.load(Ordering::Acquire);
    a.store(1, Ordering::Release);
    a.fetch_add(1, Ordering::AcqRel);
}";
        assert!(lint_source("t.rs", src).is_empty());
    }

    #[test]
    fn comments_and_non_atomic_calls_are_ignored() {
        let src = r"
fn f(v: &mut Vec<u64>) {
    // a.load(Ordering::SeqCst);
    v.swap(0, 1);
}";
        assert!(lint_source("t.rs", src).is_empty());
    }

    #[test]
    fn allowlist_round_trip_and_staleness() {
        let src = "fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }";
        let findings = lint_source("t.rs", src);
        let allow =
            parse_allowlist("# comment\nt.rs:f:relaxed-load  stats only\nt.rs:g:seqcst  gone\n");
        let verdict = apply_allowlist(findings, &allow);
        assert!(verdict.violations.is_empty());
        assert_eq!(verdict.allowed.len(), 1);
        assert_eq!(verdict.stale, vec!["t.rs:g:seqcst".to_string()]);
    }

    #[test]
    fn compare_exchange_weak_is_recognised() {
        let src = "fn f(a: &AtomicU64) { \
                   a.compare_exchange_weak(0, 1, Ordering::Acquire, Ordering::Relaxed); }";
        let fs = lint_source("t.rs", src);
        assert_eq!(rules(&fs), vec!["cas-no-release"]);
    }
}
