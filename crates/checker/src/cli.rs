//! The `pwf vet` subcommand: systematic checking of the built-in
//! targets and schedule replay. `--orderings` survives as a
//! compatibility alias for the orderings pass of `pwf lint`.

use std::fs;
use std::path::{Path, PathBuf};

use crate::explore::{explore, run_schedule, ExploreOptions, Violation, ViolationKind};
use crate::lin;
use crate::shrink::{parse_schedule, serialize_schedule, shrink};
use crate::target::{CheckTarget, Progress};
use crate::targets::{fast_registry, find, registry};

const USAGE: &str = "\
pwf vet — systematic concurrency checking (DPOR exploration,
linearizability, lock-freedom)

USAGE:
    pwf vet [TARGET...] [OPTIONS]
        Exhaustively model-check the named targets (default: all).
        Correct targets must verify; MUTANT targets must be caught,
        with a shrunk, replayable counterexample schedule.
        --fast          check the CI smoke subset (counter + stack)
        --jobs N        drain the DPOR frontier with N worker threads
                        (default: available cores; results are
                        byte-identical at any N)
        --no-prune      disable partial-order reduction (full tree)
        --no-cache      disable the shared state-fingerprint cache
        --metrics       print vet.* counters (pwf-obs registry)
        --emit DIR      write counterexample schedules to DIR
        --list          list targets and exit

    pwf vet --replay FILE [TARGET]
        Re-execute a schedule file against its target and report the
        outcome. The target comes from the file header unless named.

    pwf vet --orderings [OPTIONS]
        Compatibility alias for the orderings pass of `pwf lint`:
        statically lint atomic call sites for memory-ordering issues.
        --root DIR       sources to scan (default crates/hardware/src)
        --allowlist FILE fingerprinted allow file (default
                         crates/hardware/lint.allow)
        Prefer `pwf lint`, which runs every pass over every crate.
";

/// Cap on naive-enumeration executions when measuring the reduction
/// ratio; past this the ratio is reported as a lower bound. `--fast`
/// uses the smaller cap to keep the CI smoke run in seconds.
const NAIVE_CAP: u64 = 200_000;
const NAIVE_CAP_FAST: u64 = 20_000;

/// Pruned-execution count past which the naive-enumeration ratio is
/// skipped: on the n=3 targets the unreduced tree runs to the cap in
/// minutes, and E25 (`exp_checker_bench`) already times them properly.
const NAIVE_SKIP: u64 = 200;

struct VetArgs {
    names: Vec<String>,
    fast: bool,
    no_prune: bool,
    no_cache: bool,
    metrics: bool,
    jobs: Option<usize>,
    list: bool,
    orderings: bool,
    root: PathBuf,
    allowlist: PathBuf,
    replay: Option<PathBuf>,
    emit: Option<PathBuf>,
}

fn parse_vet_args(argv: Vec<String>) -> Result<VetArgs, String> {
    let mut args = VetArgs {
        names: Vec::new(),
        fast: false,
        no_prune: false,
        no_cache: false,
        metrics: false,
        jobs: None,
        list: false,
        orderings: false,
        root: PathBuf::from("crates/hardware/src"),
        allowlist: PathBuf::from("crates/hardware/lint.allow"),
        replay: None,
        emit: None,
    };
    let mut it = argv.into_iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--fast" => args.fast = true,
            "--no-prune" => args.no_prune = true,
            "--no-cache" => args.no_cache = true,
            "--metrics" => args.metrics = true,
            "--jobs" => {
                let v = value_of("--jobs")?;
                args.jobs = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("--jobs needs a positive integer, got {v:?}"))?
                        .max(1),
                );
            }
            "--list" => args.list = true,
            "--orderings" => args.orderings = true,
            "--root" => args.root = PathBuf::from(value_of("--root")?),
            "--allowlist" => args.allowlist = PathBuf::from(value_of("--allowlist")?),
            "--replay" => args.replay = Some(PathBuf::from(value_of("--replay")?)),
            "--emit" => args.emit = Some(PathBuf::from(value_of("--emit")?)),
            "--help" | "-h" => return Err(String::new()),
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            name => args.names.push(name.to_string()),
        }
    }
    Ok(args)
}

/// Entry point for `pwf vet`. Returns the process exit code: 0 when
/// every target behaved as expected (and the lint ran clean), 1 on
/// failures, 2 on usage errors.
pub fn main(argv: Vec<String>) -> i32 {
    let args = match parse_vet_args(argv) {
        Ok(args) => args,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return 0;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return 2;
        }
    };
    if args.list {
        for t in registry() {
            let expect = if t.expect_failure {
                "must-fail"
            } else {
                "must-pass"
            };
            println!("{:<22} {:<9} {}", t.name, expect, t.description);
        }
        return 0;
    }
    if args.orderings {
        return cmd_orderings(&args);
    }
    if args.replay.is_some() {
        return cmd_replay(&args);
    }
    cmd_vet(&args)
}

fn select_targets(args: &VetArgs) -> Result<Vec<CheckTarget>, String> {
    if !args.names.is_empty() {
        args.names
            .iter()
            .map(|n| find(n).ok_or_else(|| format!("unknown target {n:?} (see `pwf vet --list`)")))
            .collect()
    } else if args.fast {
        Ok(fast_registry())
    } else {
        Ok(registry())
    }
}

fn cmd_vet(args: &VetArgs) -> i32 {
    let targets = match select_targets(args) {
        Ok(t) => t,
        Err(msg) => {
            eprintln!("error: {msg}");
            return 2;
        }
    };
    let jobs = args
        .jobs
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, usize::from));
    let metrics = pwf_obs::Metrics::new();
    let mut failures = 0usize;
    let mut dpor_total = 0u64;
    let mut naive_total = 0u64;
    let mut ratio_capped = false;
    for target in &targets {
        println!("== {} — {}", target.name, target.description);
        let opts = ExploreOptions {
            prune: !args.no_prune,
            jobs,
            cache: !args.no_cache,
            ..ExploreOptions::default()
        };
        let report = explore(target, &opts);
        let s = &report.stats;
        println!(
            "   explored: {} executions, {} states, {} transitions, max depth {}{}",
            s.executions,
            s.distinct_states,
            s.transitions,
            s.max_depth,
            if s.capped { " (CAPPED)" } else { "" }
        );
        // Everything printed here is jobs-independent; `steals` (the
        // one nondeterministic stat) goes to --metrics only.
        println!(
            "   frontier: {} units, cache {} hits / {} misses, {} collisions averted",
            s.units, s.cache_hits, s.cache_misses, s.collisions_averted
        );
        metrics.counter_add("vet.executions", s.executions);
        metrics.counter_add("vet.units", s.units);
        metrics.counter_add("vet.cache.hits", s.cache_hits);
        metrics.counter_add("vet.cache.misses", s.cache_misses);
        metrics.counter_add("vet.cache.collisions_averted", s.collisions_averted);
        metrics.counter_add("vet.steals", s.steals);
        metrics.counter_add("vet.targets", 1);
        // Reduction ratio: only meaningful on targets explored to
        // completion with pruning on (mutants stop at the first
        // violation in both modes). The big n=3 targets skip it — the
        // unreduced tree runs to the cap in minutes.
        if !args.no_prune && !target.expect_failure && report.violation.is_none() {
            if s.executions > NAIVE_SKIP {
                println!(
                    "   naive enumeration: skipped (large target; timed by exp_checker_bench)"
                );
            } else {
                let naive = explore(
                    target,
                    &ExploreOptions {
                        prune: false,
                        max_executions: if args.fast { NAIVE_CAP_FAST } else { NAIVE_CAP },
                        ..ExploreOptions::default()
                    },
                );
                let (n, capped) = (naive.stats.executions, naive.stats.capped);
                let ratio = n as f64 / s.executions.max(1) as f64;
                println!(
                    "   naive enumeration: {}{} executions → {:.1}x{} reduction",
                    n,
                    if capped { "+" } else { "" },
                    ratio,
                    if capped { "+" } else { "" }
                );
                dpor_total += s.executions;
                naive_total += n;
                ratio_capped |= capped;
            }
        }
        // Violation source: the exploration itself, or — for
        // blocking-by-design targets where within-run spinning is
        // legal — the Theorem 3 fair-cycle audit. The fair audit needs
        // an *edge-complete* graph: sleep-set pruning drops edges whose
        // interleavings are covered elsewhere, which can make an
        // escapable spin state look like a bottom component. Blocking
        // targets are small by design, so they get a dedicated
        // unpruned exploration; for lock-free targets a pass of the
        // completion-free-cycle audit already implies a fair pass on
        // the same graph.
        let mut violation = report.violation.clone();
        let mut fair_caught = false;
        if violation.is_none() && target.progress == Progress::StochasticOnly {
            let full = if args.no_prune {
                None
            } else {
                Some(explore(
                    target,
                    &ExploreOptions {
                        prune: false,
                        jobs,
                        cache: !args.no_cache,
                        ..ExploreOptions::default()
                    },
                ))
            };
            let graph = full.as_ref().map_or(&report.graph, |r| &r.graph);
            if let Some(state) = graph.fair_livelock() {
                let prefix = graph
                    .witness_prefix(state)
                    .map(<[usize]>::to_vec)
                    .unwrap_or_default();
                violation = Some(Violation {
                    kind: ViolationKind::Livelock,
                    schedule: prefix,
                    ops: Vec::new(),
                });
                fair_caught = true;
            }
        }
        let ok = match (&violation, target.expect_failure) {
            (None, false) => {
                let lock_free = match target.progress {
                    Progress::LockFree => {
                        if report.graph.completion_free_cycle().is_none() {
                            "yes"
                        } else {
                            "NO (completion-free cycle)"
                        }
                    }
                    Progress::StochasticOnly => "n/a (blocking by design)",
                };
                println!("   linearizable: yes   lock-free: {lock_free}   fair-progress: yes");
                target.progress == Progress::StochasticOnly
                    || report.graph.completion_free_cycle().is_none()
            }
            (None, true) => {
                println!(
                    "   MUTANT NOT CAUGHT: no violation in {} executions",
                    s.executions
                );
                false
            }
            (Some(v), expect) => {
                let kind = if fair_caught {
                    "fair livelock (Theorem 3: completion-free bottom component)"
                } else {
                    match v.kind {
                        ViolationKind::NotLinearizable => "not linearizable",
                        ViolationKind::Livelock => "livelock (completion-free cycle)",
                    }
                };
                println!("   violation: {kind} (witness {} steps)", v.schedule.len());
                let small = shrink(target, v.kind, &v.schedule);
                println!(
                    "   shrunk schedule ({} steps): {}",
                    small.len(),
                    join(&small)
                );
                let rerun = run_schedule(target, &small, 4_096);
                for op in rerun.ops() {
                    println!("     {op}");
                }
                if let Some(dir) = &args.emit {
                    let path = dir.join(format!("{}.sched", target.name));
                    if fs::create_dir_all(dir)
                        .and_then(|()| fs::write(&path, serialize_schedule(target.name, &small)))
                        .is_ok()
                    {
                        println!("   wrote {}", path.display());
                    }
                }
                expect
            }
        };
        println!(
            "   {}",
            match (ok, target.expect_failure) {
                (true, true) => "PASS (expected failure caught)",
                (true, false) => "PASS",
                (false, _) => "FAIL",
            }
        );
        if !ok {
            failures += 1;
        }
    }
    if naive_total > 0 {
        println!(
            "\naggregate DPOR reduction: {:.1}x{} (naive {}{} vs {} pruned executions)",
            naive_total as f64 / dpor_total.max(1) as f64,
            if ratio_capped { "+" } else { "" },
            naive_total,
            if ratio_capped { "+" } else { "" },
            dpor_total
        );
    }
    println!(
        "{} targets, {} passed, {} failed",
        targets.len(),
        targets.len() - failures,
        failures
    );
    if args.metrics {
        metrics.counter_add("vet.failures", failures as u64);
        for line in metrics.snapshot().render() {
            println!("{line}");
        }
    }
    i32::from(failures > 0)
}

fn join(schedule: &[usize]) -> String {
    schedule
        .iter()
        .map(usize::to_string)
        .collect::<Vec<_>>()
        .join(" ")
}

fn cmd_replay(args: &VetArgs) -> i32 {
    let path = args.replay.as_ref().expect("checked by caller");
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(err) => {
            eprintln!("error: reading {}: {err}", path.display());
            return 1;
        }
    };
    let (header_target, schedule) = match parse_schedule(&text) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("error: {msg}");
            return 1;
        }
    };
    let name = args.names.first().cloned().or(header_target);
    let Some(name) = name else {
        eprintln!("error: schedule file has no target header; name the target");
        return 2;
    };
    let Some(target) = find(&name) else {
        eprintln!("error: unknown target {name:?} (see `pwf vet --list`)");
        return 2;
    };
    println!("replaying {} steps against {}", schedule.len(), target.name);
    let run = run_schedule(&target, &schedule, 4_096);
    for op in run.ops() {
        println!("  {op}");
    }
    if run.livelocked() {
        println!("outcome: livelock (completion-free state revisited)");
    } else {
        let linearizable = lin::check(run.spec(), run.ops()).is_linearizable();
        println!(
            "outcome: terminal, linearizable: {}",
            if linearizable { "yes" } else { "NO" }
        );
    }
    0
}

/// `pwf vet --orderings`: thin alias over the orderings pass of
/// `pwf lint`, kept so existing scripts and muscle memory survive the
/// lint's move into its own crate. Pass-aware staleness in pwf-lint
/// means progress/condvar/unsafe entries in the allow file are not
/// reported stale by this orderings-only run.
fn cmd_orderings(args: &VetArgs) -> i32 {
    let name = args.root.parent().and_then(Path::file_name).map_or_else(
        || args.root.display().to_string(),
        |n| n.to_string_lossy().into_owned(),
    );
    let report = match pwf_lint::lint_tree(
        Path::new("."),
        &args.root,
        Some(&args.allowlist),
        &name,
        &[pwf_lint::Pass::Orderings],
    ) {
        Ok(r) => r,
        Err(err) => {
            eprintln!("error: scanning {}: {err}", args.root.display());
            return 1;
        }
    };
    let clean = report.clean();
    let ws = pwf_lint::WorkspaceReport {
        root: ".".to_string(),
        passes: vec!["orderings"],
        crates: vec![report],
    };
    print!("{}", ws.render_text(true));
    i32::from(!clean)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_recognises_flags() {
        let args = parse_vet_args(argv(&[
            "counter",
            "--fast",
            "--no-prune",
            "--emit",
            "out",
            "--allowlist",
            "a.allow",
        ]))
        .unwrap();
        assert_eq!(args.names, vec!["counter"]);
        assert!(args.fast && args.no_prune);
        assert_eq!(args.emit.as_deref(), Some(std::path::Path::new("out")));
        assert_eq!(args.allowlist.as_path(), std::path::Path::new("a.allow"));
    }

    #[test]
    fn parse_rejects_unknown_flags() {
        assert!(parse_vet_args(argv(&["--bogus"])).is_err());
        assert!(parse_vet_args(argv(&["--root"])).is_err());
    }

    #[test]
    fn unknown_target_is_a_usage_error() {
        assert_eq!(main(argv(&["no-such-target"])), 2);
    }

    #[test]
    fn list_exits_cleanly() {
        assert_eq!(main(argv(&["--list"])), 0);
    }
}
