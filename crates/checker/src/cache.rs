//! The shared cross-schedule state cache backing parallel exploration.
//!
//! Exploration units from *different* schedule prefixes can converge
//! on the same reached configuration; once one worker has queued (and
//! eventually expanded) a state, re-expanding an equivalent instance
//! from another prefix only re-derives the same subtree. The cache
//! records every state the explorer has committed to expanding, keyed
//! by a [`StateKey`] that captures everything the subtree below can
//! depend on — so a hit is a sound prune, not a heuristic.
//!
//! ## Collision guard
//!
//! State fingerprints are 64-bit, so distinct configurations can in
//! principle collide. A collision that *suppressed* exploration would
//! silently hide a violation, which is the one failure mode a checker
//! must not have. Every entry therefore stores, alongside the primary
//! FNV-1a fingerprint, a second hash computed by an independent
//! function (a SplitMix64-style avalanche over the same state words)
//! plus the history fingerprint, sleep-set fingerprint, and depth. A
//! lookup prunes only when *all five* components match; a primary-hash
//! match with any mismatching component is counted in
//! `collisions_averted` and treated as a miss. Forging a colliding
//! entry (see the regression test in `tests/collision_guard.rs`)
//! therefore cannot suppress a mutant's violation.
//!
//! ## Sharding
//!
//! The table is sharded into `SHARDS` independent `Mutex<HashMap>`s
//! selected by the low bits of the primary fingerprint, so concurrent
//! workers probing during a parallel drain rarely contend on the same
//! lock. During a drain the cache is *frozen* (read-only); all inserts
//! happen in the sequential merge pass between chunks, which is what
//! keeps exploration deterministic at every `--jobs` value.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Shard count; a power of two so selection is a mask.
const SHARDS: usize = 64;

/// Everything a queued exploration unit's subtree can depend on.
///
/// Two units agreeing on all five components reach configurations with
/// identical shared memory, local states, budgets, completed-operation
/// histories (including invoke/response times and pending invocation
/// times), sleep sets, and schedule depth — so their subtrees yield
/// the same verdicts, and the second is safely pruned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateKey {
    /// Primary full-state fingerprint ([`crate::explore::LiveRun`]).
    pub state: u64,
    /// Independent second hash of the same state words (collision
    /// guard).
    pub verify: u64,
    /// Fingerprint of the operation history so far, completed and
    /// pending.
    pub ops: u64,
    /// Canonical fingerprint of the unit's sleep set.
    pub sleep: u64,
    /// Schedule depth (prefix length) at which the state was reached.
    pub depth: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    verify: u64,
    ops: u64,
    sleep: u64,
    depth: u32,
}

impl Entry {
    fn matches(&self, key: &StateKey) -> bool {
        self.verify == key.verify
            && self.ops == key.ops
            && self.sleep == key.sleep
            && self.depth == key.depth
    }
}

/// Sharded concurrent state cache shared by all exploration workers.
pub struct SharedCache {
    shards: Vec<Mutex<HashMap<u64, Vec<Entry>>>>,
    collisions_averted: AtomicU64,
}

impl Default for SharedCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedCache {
    /// An empty cache.
    pub fn new() -> Self {
        SharedCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            collisions_averted: AtomicU64::new(0),
        }
    }

    fn shard(&self, state: u64) -> &Mutex<HashMap<u64, Vec<Entry>>> {
        &self.shards[(state as usize) & (SHARDS - 1)]
    }

    /// Whether `key` is present. An entry agreeing on the primary
    /// fingerprint and the full context (ops, sleep, depth) but
    /// *disagreeing* on the verify hash is a genuine 64-bit collision
    /// the guard just averted: keyed on the primary alone the lookup
    /// would have pruned a different configuration's subtree. It is
    /// counted and reported as a miss. Entries sharing a primary but
    /// differing in context are ordinary distinct keys, not collisions.
    pub fn contains(&self, key: &StateKey) -> bool {
        let shard = self.shard(key.state).lock().expect("cache shard poisoned");
        match shard.get(&key.state) {
            None => false,
            Some(entries) => {
                if entries.iter().any(|e| e.matches(key)) {
                    true
                } else {
                    if entries.iter().any(|e| {
                        e.verify != key.verify
                            && e.ops == key.ops
                            && e.sleep == key.sleep
                            && e.depth == key.depth
                    }) {
                        self.collisions_averted.fetch_add(1, Ordering::Relaxed);
                    }
                    false
                }
            }
        }
    }

    /// Inserts `key`; returns `true` if it was new. Only called from
    /// the sequential merge pass, never during a parallel drain.
    pub fn insert(&self, key: StateKey) -> bool {
        let mut shard = self.shard(key.state).lock().expect("cache shard poisoned");
        let entries = shard.entry(key.state).or_default();
        if entries.iter().any(|e| e.matches(&key)) {
            return false;
        }
        entries.push(Entry {
            verify: key.verify,
            ops: key.ops,
            sleep: key.sleep,
            depth: key.depth,
        });
        true
    }

    /// How many primary-fingerprint hits were rejected by the
    /// verification components (the collision guard firing).
    pub fn collisions_averted(&self) -> u64 {
        self.collisions_averted.load(Ordering::Relaxed)
    }

    /// Every stored key, in unspecified order (diagnostics and the
    /// collision-guard regression tests).
    pub fn keys(&self) -> Vec<StateKey> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            for (&state, entries) in shard.iter() {
                out.extend(entries.iter().map(|e| StateKey {
                    state,
                    verify: e.verify,
                    ops: e.ops,
                    sleep: e.sleep,
                    depth: e.depth,
                }));
            }
        }
        out
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("cache shard poisoned")
                    .values()
                    .map(Vec::len)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(state: u64, verify: u64) -> StateKey {
        StateKey {
            state,
            verify,
            ops: 10,
            sleep: 20,
            depth: 3,
        }
    }

    #[test]
    fn insert_then_contains_round_trips() {
        let c = SharedCache::new();
        assert!(!c.contains(&key(1, 2)));
        assert!(c.insert(key(1, 2)));
        assert!(c.contains(&key(1, 2)));
        assert!(!c.insert(key(1, 2)), "duplicate insert is rejected");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn primary_collision_with_wrong_verify_hash_is_a_miss() {
        let c = SharedCache::new();
        assert!(c.insert(key(1, 2)));
        assert!(!c.contains(&key(1, 99)), "verify hash mismatch");
        assert_eq!(c.collisions_averted(), 1);
        // Both entries can coexist under the same primary fingerprint.
        assert!(c.insert(key(1, 99)));
        assert!(c.contains(&key(1, 2)) && c.contains(&key(1, 99)));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn depth_ops_and_sleep_all_participate_in_the_match() {
        let c = SharedCache::new();
        let base = key(7, 8);
        assert!(c.insert(base));
        for wrong in [
            StateKey { ops: 11, ..base },
            StateKey { sleep: 21, ..base },
            StateKey { depth: 4, ..base },
        ] {
            assert!(!c.contains(&wrong));
        }
        // Context mismatches are distinct keys, not hash collisions.
        assert_eq!(c.collisions_averted(), 0);
    }
}
