//! Sequential specifications — the "atomic object" a concurrent
//! history is checked against.
//!
//! A [`Spec`] is a deterministic sequential state machine:
//! [`Spec::apply`] feeds it one [`OpRecord`] and answers whether the
//! recorded return value is what the sequential object would have
//! returned at this point. The Wing–Gong checker ([`crate::lin`])
//! searches over orders of applying records; cloning a spec forks the
//! search state, and [`Spec::fingerprint`] keys the memoization table.

use std::collections::VecDeque;

use pwf_sim::memory::fnv1a;

use crate::op::OpRecord;

/// A cloneable sequential specification.
///
/// Implemented as an enum rather than a trait object so the
/// linearizability search can clone states freely without boxing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Spec {
    /// Fetch-and-increment counter: `inc() -> k` returns the
    /// pre-increment value; `read() -> v` returns the current value.
    Counter {
        /// Current counter value.
        value: u64,
    },
    /// LIFO stack: `push(v)`, `pop() -> v` (or `-> ·` when empty).
    Stack {
        /// Contents, bottom first.
        items: Vec<u64>,
    },
    /// FIFO queue: `enq(v)`, `deq() -> v` (or `-> ·` when empty).
    Queue {
        /// Contents, front first.
        items: VecDeque<u64>,
    },
    /// A CAS register: `cas(observed) -> proposed` succeeds iff the
    /// register currently holds `observed`, then holds `proposed`.
    /// This is the sequential object behind `SCU(q, s)` — every
    /// completed method call atomically swung `R` from its scanned
    /// value to its proposal.
    CasRegister {
        /// Current register value.
        value: u64,
    },
    /// Single-writer snapshot memory: `update(v)` from process `i`
    /// (encoded in the input's high bits) sets segment `i`; `scan() ->
    /// h` returns an order-insensitive fingerprint of all segments.
    Snapshot {
        /// Per-process segments.
        segments: Vec<u64>,
    },
    /// A request-coalescing (query-deduplication) cache for one key:
    /// whichever process wins the in-flight claim computes `value` and
    /// publishes it; every `get() -> v` — leader's and joiners' alike
    /// — must return exactly that computed value. Returning anything
    /// else (e.g. an unpublished slot read after a premature notify)
    /// is the lost-wakeup anomaly.
    Coalesced {
        /// The value the leader computes and publishes.
        value: u64,
    },
}

impl Spec {
    /// A counter starting at zero.
    pub fn counter() -> Self {
        Spec::Counter { value: 0 }
    }

    /// A stack with the given initial contents (bottom first).
    pub fn stack(initial: &[u64]) -> Self {
        Spec::Stack {
            items: initial.to_vec(),
        }
    }

    /// An empty queue.
    pub fn queue() -> Self {
        Spec::Queue {
            items: VecDeque::new(),
        }
    }

    /// A CAS register starting at zero.
    pub fn cas_register() -> Self {
        Spec::CasRegister { value: 0 }
    }

    /// A snapshot object with `n` zeroed single-writer segments.
    pub fn snapshot(n: usize) -> Self {
        Spec::Snapshot {
            segments: vec![0; n],
        }
    }

    /// A coalescing cache whose leader computes `value`.
    pub fn coalesced(value: u64) -> Self {
        Spec::Coalesced { value }
    }

    /// Packs an `update` input for [`Spec::Snapshot`]: writer index in
    /// the high 16 bits, value below.
    pub fn pack_update(writer: usize, value: u64) -> u64 {
        ((writer as u64) << 48) | (value & 0xFFFF_FFFF_FFFF)
    }

    /// The scan fingerprint [`Spec::Snapshot`] expects for `segments`.
    pub fn scan_digest(segments: &[u64]) -> u64 {
        fnv1a(0x100, segments)
    }

    /// Applies one operation record. Returns `true` when the recorded
    /// return value matches what the sequential object returns here
    /// (mutating the spec state); `false` — leaving the state
    /// unspecified — when it does not, i.e. the record cannot be
    /// linearized at this point.
    ///
    /// # Panics
    ///
    /// Panics on a method name the spec does not understand: that is a
    /// target/spec wiring bug, not a linearizability violation.
    pub fn apply(&mut self, op: &OpRecord) -> bool {
        match self {
            Spec::Counter { value } => match op.name {
                "inc" => {
                    let expected = *value;
                    *value += 1;
                    op.output == Some(expected)
                }
                "read" => op.output == Some(*value),
                other => panic!("counter spec cannot interpret {other:?}"),
            },
            Spec::Stack { items } => match op.name {
                "push" => {
                    items.push(op.input.expect("push needs an input"));
                    true
                }
                "pop" => match items.pop() {
                    Some(top) => op.output == Some(top),
                    None => op.output.is_none(),
                },
                other => panic!("stack spec cannot interpret {other:?}"),
            },
            Spec::Queue { items } => match op.name {
                "enq" => {
                    items.push_back(op.input.expect("enq needs an input"));
                    true
                }
                "deq" => match items.pop_front() {
                    Some(front) => op.output == Some(front),
                    None => op.output.is_none(),
                },
                other => panic!("queue spec cannot interpret {other:?}"),
            },
            Spec::CasRegister { value } => match op.name {
                "cas" => {
                    let observed = op.input.expect("cas needs the observed value");
                    let proposed = op.output.expect("cas needs the proposed value");
                    if *value == observed {
                        *value = proposed;
                        true
                    } else {
                        false
                    }
                }
                other => panic!("cas-register spec cannot interpret {other:?}"),
            },
            Spec::Snapshot { segments } => match op.name {
                "update" => {
                    let packed = op.input.expect("update needs an input");
                    let writer = (packed >> 48) as usize;
                    assert!(writer < segments.len(), "writer index out of range");
                    segments[writer] = packed & 0xFFFF_FFFF_FFFF;
                    true
                }
                "scan" => op.output == Some(Self::scan_digest(segments)),
                other => panic!("snapshot spec cannot interpret {other:?}"),
            },
            Spec::Coalesced { value } => match op.name {
                "get" => op.output == Some(*value),
                other => panic!("coalesced spec cannot interpret {other:?}"),
            },
        }
    }

    /// Fingerprint of the sequential state, for search memoization.
    pub fn fingerprint(&self) -> u64 {
        match self {
            Spec::Counter { value } => fnv1a(1, &[*value]),
            Spec::Stack { items } => fnv1a(2, items),
            Spec::Queue { items } => {
                let (a, b) = items.as_slices();
                fnv1a(fnv1a(3, a), b)
            }
            Spec::CasRegister { value } => fnv1a(4, &[*value]),
            Spec::Snapshot { segments } => fnv1a(5, segments),
            Spec::Coalesced { value } => fnv1a(6, &[*value]),
        }
    }

    /// The spec's name, for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Spec::Counter { .. } => "counter",
            Spec::Stack { .. } => "stack",
            Spec::Queue { .. } => "queue",
            Spec::CasRegister { .. } => "cas-register",
            Spec::Snapshot { .. } => "snapshot",
            Spec::Coalesced { .. } => "coalesced",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &'static str, input: Option<u64>, output: Option<u64>) -> OpRecord {
        OpRecord {
            name,
            input,
            output,
        }
    }

    #[test]
    fn counter_returns_pre_increment_values() {
        let mut s = Spec::counter();
        assert!(s.apply(&rec("inc", None, Some(0))));
        assert!(s.apply(&rec("inc", None, Some(1))));
        assert!(s.apply(&rec("read", None, Some(2))));
        assert!(!s.apply(&rec("inc", None, Some(0))), "stale return value");
    }

    #[test]
    fn stack_is_lifo_with_empty_pops() {
        let mut s = Spec::stack(&[]);
        assert!(s.apply(&rec("pop", None, None)), "empty pop returns ·");
        assert!(s.apply(&rec("push", Some(1), None)));
        assert!(s.apply(&rec("push", Some(2), None)));
        assert!(s.apply(&rec("pop", None, Some(2))));
        assert!(!s.apply(&rec("pop", None, Some(2))), "2 already popped");
    }

    #[test]
    fn stack_honours_initial_contents() {
        let mut s = Spec::stack(&[10, 20]);
        assert!(s.apply(&rec("pop", None, Some(20))));
        assert!(s.apply(&rec("pop", None, Some(10))));
        assert!(s.apply(&rec("pop", None, None)));
    }

    #[test]
    fn queue_is_fifo() {
        let mut s = Spec::queue();
        assert!(s.apply(&rec("enq", Some(1), None)));
        assert!(s.apply(&rec("enq", Some(2), None)));
        assert!(s.apply(&rec("deq", None, Some(1))));
        assert!(s.apply(&rec("deq", None, Some(2))));
        assert!(s.apply(&rec("deq", None, None)));
    }

    #[test]
    fn cas_register_chains_observed_to_proposed() {
        let mut s = Spec::cas_register();
        assert!(s.apply(&rec("cas", Some(0), Some(5))));
        assert!(s.apply(&rec("cas", Some(5), Some(9))));
        assert!(!s.apply(&rec("cas", Some(5), Some(11))), "stale observe");
    }

    #[test]
    fn snapshot_scan_sees_latest_segments() {
        let mut s = Spec::snapshot(2);
        assert!(s.apply(&rec("update", Some(Spec::pack_update(1, 7)), None)));
        let digest = Spec::scan_digest(&[0, 7]);
        assert!(s.apply(&rec("scan", None, Some(digest))));
        let stale = Spec::scan_digest(&[0, 0]);
        assert!(!s.apply(&rec("scan", None, Some(stale))));
    }

    #[test]
    fn coalesced_accepts_only_the_computed_value() {
        let mut s = Spec::coalesced(42);
        assert!(s.apply(&rec("get", None, Some(42))));
        assert!(!s.apply(&rec("get", None, Some(0))), "unpublished read");
        assert!(!s.apply(&rec("get", None, None)));
    }

    #[test]
    fn fingerprints_distinguish_states() {
        let a = Spec::stack(&[1, 2]);
        let b = Spec::stack(&[2, 1]);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), Spec::stack(&[1, 2]).fingerprint());
    }
}
